"""Shared benchmark fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.core import Sentinel


@pytest.fixture
def sentinel():
    """A database-less Sentinel system, active for the benchmark."""
    system = Sentinel(adopt_class_rules=False)
    with system:
        yield system


def noop_action(ctx):
    """A do-nothing rule action shared by the micro-benchmarks."""
    return None


def false_condition(ctx):
    """A condition that never holds (measures check cost alone)."""
    return False
