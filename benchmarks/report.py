#!/usr/bin/env python
"""Regenerate the paper-comparison series as plain-text tables.

This is the standalone harness behind EXPERIMENTS.md: it reruns the
parameter sweeps of the headline experiments (E8 scaling, E9 overhead
ladder, E10 rule addition, E11 subset monitoring, E14 feature matrix,
E16 contexts) and prints one table per experiment.  Useful when you want
the series without pytest-benchmark's statistics machinery:

    python benchmarks/report.py            # all experiments
    python benchmarks/report.py E8 E14     # a selection
"""

from __future__ import annotations

import json
import os
import sys
import time

_REPO_ROOT = __file__.rsplit("/", 2)[0]
sys.path.insert(0, _REPO_ROOT)  # repo root, for `benchmarks`

from repro.core import Notifiable, Reactive, Rule, Sentinel, event_method
from repro.obs.metrics import pipeline_stats, reset_pipeline_stats
from repro.workloads import Stock, make_stocks, uniform_updates


def write_baseline(name: str, payload: dict) -> str:
    """Write a benchmark baseline JSON next to the repo root."""
    path = os.path.join(_REPO_ROOT, name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def timed(fn, *args, repeat=300):
    best = float("inf")
    for _trial in range(3):
        start = time.perf_counter()
        for _ in range(repeat):
            fn(*args)
        best = min(best, (time.perf_counter() - start) / repeat)
    return best * 1e6  # µs


def table(title, headers, rows):
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


# ----------------------------------------------------------------------
def report_e8():
    from benchmarks.test_bench_subscription import build_adam, build_sentinel

    rows = []
    with Sentinel(adopt_class_rules=False):
        for total in (10, 100, 1000):
            adam_system, adam_watched = build_adam(total)
            sentinel_watched, _ = build_sentinel(total)
            adam_us = timed(adam_system.invoke, adam_watched, "set_price", 1.0)
            sentinel_us = timed(sentinel_watched.set_price, 1.0)
            rows.append(
                (total, f"{adam_us:.1f}", f"{sentinel_us:.1f}",
                 "adam" if adam_us < sentinel_us else "sentinel")
            )
    table(
        "E8: per-update µs vs total rules (1 relevant)",
        ("total rules", "adam centralized", "sentinel subscription", "winner"),
        rows,
    )


def report_e9():
    from benchmarks.test_bench_event_overhead import (
        NullConsumer,
        PassiveCounter,
        ReactiveCounter,
    )

    with Sentinel(adopt_class_rules=False):
        passive = PassiveCounter()
        unsub = ReactiveCounter()
        sub = ReactiveCounter()
        sub.subscribe(NullConsumer())
        both = ReactiveCounter()
        both.subscribe(NullConsumer())
        rows = [
            ("passive object", f"{timed(passive.bump, repeat=3000):.2f}"),
            ("reactive, undeclared method",
             f"{timed(unsub.bump_undeclared, repeat=3000):.2f}"),
            ("reactive, unsubscribed", f"{timed(unsub.bump, repeat=3000):.2f}"),
            ("reactive, subscribed (eom)", f"{timed(sub.bump, repeat=1000):.2f}"),
            ("reactive, subscribed (bom+eom)",
             f"{timed(both.bump_both, repeat=1000):.2f}"),
        ]
    table("E9: method-call cost ladder (µs)", ("configuration", "µs/call"), rows)


def report_e10():
    from benchmarks.test_bench_rule_addition import build_ode
    from repro.baselines.ode import Constraint

    rows = []
    with Sentinel(adopt_class_rules=False):
        for population in (10, 100, 1000):
            ode = build_ode(population)
            start = time.perf_counter()
            ode.redefine_class(
                ode._bench_class,
                add_constraints=[Constraint("c", lambda o: True)],
            )
            ode_us = (time.perf_counter() - start) * 1e6
            _stocks = [Stock(f"S{i}", 1.0) for i in range(population)]

            def add_sentinel_rule():
                rule = Rule(
                    "r", "end Stock::set_price(float price)",
                    action=lambda ctx: None,
                )
                Stock._class_consumers.append(rule)
                Stock._class_consumers.pop()

            sentinel_us = timed(add_sentinel_rule, repeat=200)
            rows.append((population, f"{ode_us:.1f}", f"{sentinel_us:.1f}"))
    table(
        "E10: add one class rule (µs) vs live instances",
        ("instances", "ode redefinition", "sentinel rule object"),
        rows,
    )


def report_e11():
    from benchmarks.test_bench_instance_rules import (
        POPULATION,
        UPDATES,
        adam_workload,
        sentinel_workload,
    )

    rows = []
    with Sentinel(adopt_class_rules=False):
        for subset in (1, 50, 500):
            sentinel_run = sentinel_workload(subset)
            adam_run = adam_workload(subset)
            sentinel_ms = timed(sentinel_run, repeat=3) / 1000
            adam_ms = timed(adam_run, repeat=3) / 1000
            rows.append(
                (f"{subset}/{POPULATION}", f"{adam_ms:.2f}",
                 f"{sentinel_ms:.2f}",
                 "sentinel" if sentinel_ms < adam_ms else "adam")
            )
    table(
        f"E11: {UPDATES} uniform updates, rule on k of {POPULATION} (ms)",
        ("k/N", "adam", "sentinel", "winner"),
        rows,
    )


def report_e14():
    from benchmarks.test_bench_feature_matrix import build_matrix, render

    print("\n== E14: feature matrix (executed probes) ==")
    print(render(build_matrix()))


def report_e16():
    from benchmarks.test_bench_contexts import BURSTS, BURST_SIZE, build, bursty_stream

    stream = bursty_stream()
    rows = []
    from repro.core import ParameterContext

    for context in ParameterContext:
        event, signals = build(context.value)
        start = time.perf_counter()
        for occurrence in stream:
            event.notify(occurrence)
        elapsed_ms = (time.perf_counter() - start) * 1000
        max_size = max((len(s.constituents) for s in signals), default=0)
        rows.append(
            (context.value, f"{elapsed_ms:.2f}", len(signals), max_size)
        )
    table(
        f"E16: sequence over {BURSTS} bursts × {BURST_SIZE} (per stream)",
        ("context", "ms", "composites", "max size"),
        rows,
    )


def report_hotpath():
    """Event→rule hot path: the E9 ladder plus consumer-cache engagement.

    Writes ``BENCH_hotpath.json`` at the repo root — the committed baseline
    the perf work is gated against.
    """
    from benchmarks.test_bench_event_overhead import (
        NullConsumer,
        PassiveCounter,
        ReactiveCounter,
    )

    with Sentinel(adopt_class_rules=False):
        passive = PassiveCounter()
        unsub = ReactiveCounter()
        sub = ReactiveCounter()
        sub.subscribe(NullConsumer())

        passive_us = timed(passive.bump, repeat=3000)
        unsub_us = timed(unsub.bump, repeat=3000)
        reset_pipeline_stats()
        sub_us = timed(sub.bump, repeat=3000)
        stats = pipeline_stats.snapshot()

    overhead_us = sub_us - passive_us
    total = stats["consumer_cache_hits"] + stats["consumer_cache_misses"]
    hit_rate = stats["consumer_cache_hits"] / total if total else 0.0
    payload = {
        "passive_call_us": round(passive_us, 4),
        "reactive_unsubscribed_us": round(unsub_us, 4),
        "reactive_subscribed_us": round(sub_us, 4),
        "per_event_overhead_us": round(overhead_us, 4),
        "subscribed_over_passive": round(sub_us / passive_us, 2),
        "consumer_cache_hit_rate": round(hit_rate, 4),
        "consumer_cache_hits": stats["consumer_cache_hits"],
        "consumer_cache_misses": stats["consumer_cache_misses"],
    }
    path = write_baseline("BENCH_hotpath.json", payload)
    table(
        "HOTPATH: event pipeline baseline (µs)",
        ("metric", "value"),
        sorted(payload.items()),
    )
    print(f"wrote {path}")


def report_oodb():
    """OODB write path: bulk commit throughput with and without group commit.

    Writes ``BENCH_oodb.json`` at the repo root.
    """
    import shutil
    import tempfile

    from repro.oodb.database import Database
    from repro.oodb.schema import ClassRegistry, Persistent

    registry = ClassRegistry()

    class Item(Persistent):
        def __init__(self, n: int) -> None:
            super().__init__()
            self.n = n
            self.name = f"item-{n}"
            self.price = float(n)

    registry.register(Item)

    def best_seconds(fn, trials=7):
        results = []
        for _ in range(trials):
            start = time.perf_counter()
            fn()
            results.append(time.perf_counter() - start)
        return min(results)

    def measure(group_commit: bool) -> dict:
        directory = tempfile.mkdtemp(prefix="repro-bench-oodb-")
        db = Database(
            directory, registry=registry, sync=False, group_commit=group_commit
        )
        try:

            def create200():
                with db.transaction():
                    for i in range(200):
                        db.add(Item(i))

            create_s = best_seconds(create200)
            objs = []
            with db.transaction():
                for i in range(200):
                    obj = Item(i)
                    db.add(obj)
                    objs.append(obj)

            def update200():
                with db.transaction():
                    for obj in objs:
                        obj.price += 1.0

            update_s = best_seconds(update200)
        finally:
            db.close()
            shutil.rmtree(directory, ignore_errors=True)
        return {
            "create_commit_200_objs_per_s": round(200 / create_s),
            "update_commit_200_objs_per_s": round(200 / update_s),
        }

    reset_pipeline_stats()
    grouped = measure(group_commit=True)
    stats = pipeline_stats.snapshot()
    per_record = measure(group_commit=False)

    payload = {
        "group_commit": grouped,
        "per_record_logging": per_record,
        "group_over_per_record_create": round(
            grouped["create_commit_200_objs_per_s"]
            / per_record["create_commit_200_objs_per_s"],
            2,
        ),
        "serializer_fast_objects": stats["serializer_fast_objects"],
        "serializer_slow_objects": stats["serializer_slow_objects"],
        "group_commits": stats["group_commits"],
        "group_commit_records": stats["group_commit_records"],
        "wal_syncs": stats["wal_syncs"],
    }
    path = write_baseline("BENCH_oodb.json", payload)
    table(
        "OODB: bulk-commit throughput (objs/s, sync=False)",
        ("configuration", "create", "update"),
        [
            ("group commit", grouped["create_commit_200_objs_per_s"],
             grouped["update_commit_200_objs_per_s"]),
            ("per-record logging", per_record["create_commit_200_objs_per_s"],
             per_record["update_commit_200_objs_per_s"]),
        ],
    )
    print(f"wrote {path}")


def report_obs():
    """Observability overhead: tracer disabled vs enabled on the hot path.

    Writes ``BENCH_obs.json`` at the repo root: the disabled-mode
    regression against the committed ``BENCH_hotpath.json`` baseline (the
    ≤5% acceptance gate), the measured cost of running with tracing
    enabled (including spans produced per rule firing), and the sampled
    1-in-16 mode gated at ≤1.5× disabled.
    """
    from benchmarks.test_bench_obs import (
        SAMPLE_INTERVAL,
        load_hotpath_baseline,
        measure_firing,
        measure_pipeline,
    )
    from repro.obs import tracer

    with Sentinel(adopt_class_rules=False):
        disabled = measure_pipeline(tracing=False)
        enabled = measure_pipeline(tracing=True)
        sampled = measure_pipeline(tracing=True, sample=SAMPLE_INTERVAL)

        # Flight recorder: zero code on the fan-out path (gated in
        # test_bench_obs), one deque append per rule firing (recorded
        # here as the firing-path on/off ratio).
        firing_flight_off = measure_firing(flight_on=False)
        firing_flight_on = measure_firing(flight_on=True)

        # Spans per firing: one monitored call through a full ECA rule.
        from repro.workloads import Stock

        stock = Stock("IBM", 100.0)
        rule = Rule(
            "ObsReport",
            "end Stock::set_price(float price)",
            condition=lambda ctx: True,
            action=lambda ctx: None,
        )
        stock.subscribe(rule)
        stock.set_price(1.0)  # warm
        tracer.enable(capacity=256)
        try:
            tracer.clear()
            stock.set_price(2.0)
            spans_per_firing = len(tracer.spans())
        finally:
            tracer.disable()
            tracer.clear()

    baseline = load_hotpath_baseline()
    payload = {
        "disabled": {k: round(v, 4) for k, v in disabled.items()},
        "enabled": {k: round(v, 4) for k, v in enabled.items()},
        "sampled": {k: round(v, 4) for k, v in sampled.items()},
        "sample_interval": SAMPLE_INTERVAL,
        "enabled_over_disabled": round(
            enabled["subscribed_us"] / disabled["subscribed_us"], 2
        ),
        "sampled_over_disabled": round(
            sampled["subscribed_us"] / disabled["subscribed_us"], 2
        ),
        "disabled_ratio_vs_baseline": round(
            disabled["subscribed_over_passive"]
            / baseline["subscribed_over_passive"],
            3,
        ),
        "baseline_subscribed_over_passive": baseline["subscribed_over_passive"],
        "spans_per_rule_firing": spans_per_firing,
        "flight": {
            "firing_us_off": round(firing_flight_off, 4),
            "firing_us_on": round(firing_flight_on, 4),
            "firing_on_over_off": round(
                firing_flight_on / firing_flight_off, 3
            ),
        },
    }
    path = write_baseline("BENCH_obs.json", payload)
    table(
        "OBS: tracer overhead (µs/call)",
        ("mode", "subscribed", "overhead vs passive", "ratio"),
        [
            ("disabled", f"{disabled['subscribed_us']:.3f}",
             f"{disabled['per_event_overhead_us']:.3f}",
             f"{disabled['subscribed_over_passive']:.2f}"),
            (f"sampled 1-in-{SAMPLE_INTERVAL}", f"{sampled['subscribed_us']:.3f}",
             f"{sampled['per_event_overhead_us']:.3f}",
             f"{sampled['subscribed_over_passive']:.2f}"),
            ("enabled", f"{enabled['subscribed_us']:.3f}",
             f"{enabled['per_event_overhead_us']:.3f}",
             f"{enabled['subscribed_over_passive']:.2f}"),
        ],
    )
    table(
        "OBS: flight recorder on the firing path (µs/firing)",
        ("mode", "firing", "on/off"),
        [
            ("flight off", f"{firing_flight_off:.3f}", ""),
            ("flight on (default)", f"{firing_flight_on:.3f}",
             f"{firing_flight_on / firing_flight_off:.3f}"),
        ],
    )
    print(f"spans per rule firing: {spans_per_firing}")
    print(f"wrote {path}")


def report_tsdb():
    """Continuous telemetry: collector overhead, store throughput, reads.

    Writes ``BENCH_tsdb.json`` at the repo root: the hot-path cost with
    the background collector scraping every 0.25 s (20× the 5 s default,
    so the gate is conservative) against the committed
    ``BENCH_hotpath.json`` baseline, plus append/query/rate micro-costs
    and the on-disk bytes per sample.  Gated at ≤5% hot-path overhead in
    ``benchmarks/test_bench_tsdb.py``.
    """
    import shutil
    import tempfile

    from benchmarks.test_bench_obs import (
        load_hotpath_baseline,
        measure_pipeline,
    )
    from benchmarks.test_bench_tsdb import (
        COLLECTOR_INTERVAL_S,
        make_samples,
    )
    from repro.obs.tsdb import TimeSeriesStore, telemetry

    with Sentinel(adopt_class_rules=False):
        collector_off = measure_pipeline(tracing=False)
        directory = tempfile.mkdtemp(prefix="repro-bench-tsdb-")
        telemetry.open(directory, interval=COLLECTOR_INTERVAL_S)
        try:
            collector_on = measure_pipeline(tracing=False)
            scrapes = telemetry.collector.scrapes
            scrape_errors = telemetry.collector.scrape_errors
        finally:
            telemetry.close()
            shutil.rmtree(directory, ignore_errors=True)

    store_dir = tempfile.mkdtemp(prefix="repro-bench-tsdb-store-")
    store = TimeSeriesStore(store_dir)
    try:
        samples = make_samples(40)
        clock = [1000.0]

        def append_one():
            clock[0] += 1.0
            store.append(samples, ts=clock[0])

        append_us = timed(append_one, repeat=500)
        appended = clock[0] - 1000.0
        stats = store.stats()
        bytes_per_sample = stats["bytes"] / stats["samples"]
        query_us = timed(
            lambda: store.query("series_00", clock[0] - 300, clock[0]),
            repeat=50,
        )
        rate_us = timed(
            lambda: store.rate("series_00", 300.0, at=clock[0]), repeat=50
        )
    finally:
        store.close()
        shutil.rmtree(store_dir, ignore_errors=True)

    baseline = load_hotpath_baseline()
    payload = {
        "collector_interval_s": COLLECTOR_INTERVAL_S,
        "collector_off": {k: round(v, 4) for k, v in collector_off.items()},
        "collector_on": {k: round(v, 4) for k, v in collector_on.items()},
        "on_over_off": round(
            collector_on["subscribed_us"] / collector_off["subscribed_us"], 3
        ),
        "on_ratio_vs_baseline": round(
            collector_on["subscribed_over_passive"]
            / baseline["subscribed_over_passive"],
            3,
        ),
        "baseline_subscribed_over_passive": baseline[
            "subscribed_over_passive"
        ],
        "scrapes_during_bench": scrapes,
        "scrape_errors": scrape_errors,
        "store": {
            "series_per_frame": 40,
            "frames_appended": int(appended),
            "append_frame_us": round(append_us, 2),
            "bytes_per_sample": round(bytes_per_sample, 2),
            "query_300s_us": round(query_us, 1),
            "rate_300s_us": round(rate_us, 1),
        },
        "gates": {"collector_overhead_max": 0.05},
    }
    path = write_baseline("BENCH_tsdb.json", payload)
    table(
        "TSDB: collector on the hot path (µs/call)",
        ("mode", "subscribed", "ratio vs passive"),
        [
            ("collector off", f"{collector_off['subscribed_us']:.3f}",
             f"{collector_off['subscribed_over_passive']:.2f}"),
            (f"collector on ({COLLECTOR_INTERVAL_S:g}s interval)",
             f"{collector_on['subscribed_us']:.3f}",
             f"{collector_on['subscribed_over_passive']:.2f}"),
        ],
    )
    table(
        "TSDB: store micro-costs",
        ("metric", "value"),
        sorted(payload["store"].items()),
    )
    print(f"wrote {path}")


def report_query():
    """Read path: cost-aware planner vs the seed's scan-and-filter loop.

    Writes ``BENCH_query.json`` at the repo root: five workloads over a
    10 000-object extent, timed interleaved A/B (planner / legacy
    alternating, min of trials) so machine drift hits both sides equally.
    The legacy side reproduces the seed's execution exactly — sorted
    extent, one ``fetch`` per OID, Python-side filter, full sort, then
    limit.  Gated in CI at ≥5× for the indexed range + order_by + limit
    workload and ≥20× for the index-only count.
    """
    import operator
    import random
    import shutil
    import tempfile

    from repro.oodb.database import Database
    from repro.oodb.schema import ClassRegistry, Persistent

    registry = ClassRegistry()

    class Emp(Persistent):
        def __init__(self, n: int, salary: int, dept: str) -> None:
            super().__init__()
            self.name = f"emp{n:05d}"
            self.salary = salary
            self.dept = dept

    registry.register(Emp)
    compare = {
        "==": operator.eq, "<": operator.lt, "<=": operator.le,
        ">": operator.gt, ">=": operator.ge,
    }
    missing = object()
    rng = random.Random(0x51C2)
    depts = ("eng", "sales", "hr", "ops", "legal", "qa", "it", "pr")
    salaries = [rng.randrange(30_000, 150_000) for _ in range(10_000)]

    directory = tempfile.mkdtemp(prefix="repro-bench-query-")
    db = Database(directory, registry=registry, sync=False)
    try:
        with db.transaction():
            for n, salary in enumerate(salaries):
                db.add(Emp(n, salary, depts[n % len(depts)]))
        db.create_index(Emp, "salary")
        db.create_index(Emp, "dept")

        def legacy(filters, order=None, limit=None, count_only=False):
            """The seed read path, reproduced for the A/B baseline."""
            out = []
            for oid in sorted(db.extents.of("Emp")):
                obj = db.fetch(oid)
                for attribute, op, value in filters:
                    attr_value = getattr(obj, attribute, missing)
                    if attr_value is missing or not compare[op](attr_value, value):
                        break
                else:
                    out.append(obj)
            if order is not None:
                out.sort(key=lambda o: getattr(o, order), reverse=False)
            if limit is not None:
                out = out[:limit]
            return len(out) if count_only else out

        ordered = sorted(salaries)
        p50, p80, p95 = ordered[5_000], ordered[8_000], ordered[9_500]
        point = salaries[1_234]

        workloads = [
            (
                "point_lookup",
                db.query(Emp).where_eq("salary", point),
                lambda: legacy([("salary", "==", point)]),
            ),
            (
                "range_5pct",
                db.query(Emp).where_op("salary", ">=", p95),
                lambda: legacy([("salary", ">=", p95)]),
            ),
            (
                "multi_filter_intersect",
                db.query(Emp).where_op("salary", ">=", p80).where_eq("dept", "eng"),
                lambda: legacy([("salary", ">=", p80), ("dept", "==", "eng")]),
            ),
            (
                "range_order_by_limit",
                db.query(Emp)
                .where_op("salary", ">=", p50)
                .order_by("salary")
                .limit(10),
                lambda: legacy([("salary", ">=", p50)], order="salary", limit=10),
            ),
            (
                "index_only_count",
                db.query(Emp).where_op("salary", ">=", p50),
                lambda: legacy([("salary", ">=", p50)], count_only=True),
            ),
        ]

        legacy([])  # warm the object cache so A/B compares execution only

        results: dict[str, dict] = {}
        rows = []
        for name, query, legacy_fn in workloads:
            count_only = name == "index_only_count"
            planner_fn = query.count if count_only else query.all
            # Correctness first: both sides must agree before we time them.
            got, want = planner_fn(), legacy_fn()
            if count_only:
                assert got == want, (name, got, want)
            elif name == "range_order_by_limit":
                assert [o.name for o in got] == [o.name for o in want], name
            else:
                assert {o.name for o in got} == {o.name for o in want}, name
            planner_best = legacy_best = float("inf")
            for _trial in range(7):
                start = time.perf_counter()
                planner_fn()
                planner_best = min(planner_best, time.perf_counter() - start)
                start = time.perf_counter()
                legacy_fn()
                legacy_best = min(legacy_best, time.perf_counter() - start)
            speedup = legacy_best / planner_best
            results[name] = {
                "planner_us": round(planner_best * 1e6, 1),
                "legacy_us": round(legacy_best * 1e6, 1),
                "speedup": round(speedup, 2),
                "access_path": query.explain().access_path,
            }
            rows.append(
                (name, results[name]["access_path"],
                 f"{results[name]['planner_us']:.0f}",
                 f"{results[name]['legacy_us']:.0f}",
                 f"{speedup:.1f}x")
            )

        # Hash vs B-tree on the same point lookup.  With both kinds on
        # the unique `name` attribute, the planner's cost model prefers
        # the extendible hash's O(1) probe over the B-tree's bisect
        # descent; the timing compares the probes themselves (the
        # planner overhead around them is identical by construction).
        btree_path = db.query(Emp).where_eq("name", "x").explain().access_path
        db.create_index(Emp, "name")
        db.create_index(Emp, "name", kind="hash")
        hash_path = db.query(Emp).where_eq("name", "x").explain().access_path
        assert (btree_path, hash_path) == ("extent_scan", "hash_eq")
        assert len(db.query(Emp).where_eq("name", "emp00042").all()) == 1

        btree_index = db.indexes.lookup("Emp", "name", "btree")
        hash_index = db.indexes.lookup("Emp", "name", "hash")
        probe_names = [
            f"emp{n:05d}" for n in rng.sample(range(len(salaries)), 500)
        ]
        for probe in probe_names:
            assert btree_index.search(probe) == hash_index.search(probe)

        def probe_all(index):
            search = index.search
            for probe in probe_names:
                search(probe)

        btree_best = hash_best = float("inf")
        for _trial in range(9):  # interleaved: drift hits both sides
            start = time.perf_counter()
            probe_all(hash_index)
            hash_best = min(hash_best, time.perf_counter() - start)
            start = time.perf_counter()
            probe_all(btree_index)
            btree_best = min(btree_best, time.perf_counter() - start)

        hash_speedup = btree_best / hash_best
        per_lookup = 1e6 / len(probe_names)
        results["point_lookup_hash_vs_btree"] = {
            "btree_us": round(btree_best * per_lookup, 2),
            "hash_us": round(hash_best * per_lookup, 2),
            "speedup": round(hash_speedup, 2),
            "access_path": hash_path,
        }
        rows.append(
            ("point_lookup_hash_vs_btree", f"{hash_path} beats btree",
             f"{hash_best * per_lookup:.2f}",
             f"{btree_best * per_lookup:.2f}",
             f"{hash_speedup:.2f}x")
        )
    finally:
        db.close()
        shutil.rmtree(directory, ignore_errors=True)

    payload = {
        "objects": len(salaries),
        "workloads": results,
        "range_order_limit_speedup": results["range_order_by_limit"]["speedup"],
        "index_only_count_speedup": results["index_only_count"]["speedup"],
        "hash_point_lookup_speedup": results["point_lookup_hash_vs_btree"][
            "speedup"
        ],
        "gates": {
            "range_order_limit_min": 5.0,
            "index_only_count_min": 20.0,
            "hash_point_lookup_min": 1.5,
        },
    }
    path = write_baseline("BENCH_query.json", payload)
    table(
        "QUERY: planner vs seed scan path (10k objects, µs)",
        ("workload", "access path", "planner", "legacy", "speedup"),
        rows,
    )
    print(f"wrote {path}")


def report_codec():
    """Write/read path: struct-packed codec vs the tagged-JSON format.

    Writes ``BENCH_codec.json`` at the repo root.  Twin classes carry the
    same six attributes (int/float/bool/str/oid/datetime); one declares a
    ``_p_schema`` and packs, the other stays on the legacy JSON record
    format.  Encode is the commit-path payload build, decode is the full
    read-path materialization (payload -> record -> live instance), both
    through the real serializer.  Timed interleaved A/B (packed / JSON
    alternating, min of trials); correctness is asserted attr-for-attr
    before anything is timed.  Gated at >=2x for encode+decode combined.
    """
    import datetime as dt
    import shutil
    import tempfile

    from repro.oodb import codec
    from repro.oodb.database import Database
    from repro.oodb.oid import Oid
    from repro.oodb.schema import ClassRegistry, Persistent

    registry = ClassRegistry()

    class PackedEvt(Persistent, registry=registry):
        _p_schema = [
            ("seq", "int"),
            ("score", "float"),
            ("active", "bool"),
            ("label", "str:24"),
            ("ref", "oid"),
            ("stamp", "datetime"),
        ]

    class JsonEvt(Persistent, registry=registry):
        pass

    def populate(cls, n):
        obj = cls()
        obj.__dict__.update(
            seq=n,
            score=n * 0.5,
            active=n % 2 == 0,
            label=f"evt-{n:06d}",
            ref=Oid(n + 1),
            stamp=dt.datetime(2026, 1, 1) + dt.timedelta(seconds=n),
        )
        return obj

    count = 2_000
    directory = tempfile.mkdtemp(prefix="repro-bench-codec-")
    db = Database(directory, registry=registry, sync=False)
    try:
        ser = db.serializer
        schema = codec.schema_for(PackedEvt)
        assert schema is not None
        packed_objs = [populate(PackedEvt, n) for n in range(count)]
        json_objs = [populate(JsonEvt, n) for n in range(count)]

        def encode_packed():
            encode = ser.encode_packed_payload
            return [
                encode(n + 1, obj, schema)
                for n, obj in enumerate(packed_objs)
            ]

        def encode_json():
            encode = ser.encode_object
            to_json = ser.record_to_json
            with_oid = ser.record_with_oid
            return [
                with_oid(n + 1, to_json(encode(obj)))
                for n, obj in enumerate(json_objs)
            ]

        packed_payloads = encode_packed()
        json_payloads = encode_json()

        def decode(payloads):
            from_payload = ser.record_from_payload
            materialize = ser.decode_object
            return [materialize(from_payload(p)) for p in payloads]

        # Correctness before timing: the decoded twins must agree on
        # every attribute, type-exactly (str stays str, Oid stays Oid,
        # datetime survives to the microsecond).
        for a, b in zip(decode(packed_payloads), decode(json_payloads)):
            attrs_a = {
                k: v for k, v in vars(a).items() if not k.startswith("_p_")
            }
            attrs_b = {
                k: v for k, v in vars(b).items() if not k.startswith("_p_")
            }
            assert attrs_a == attrs_b, (attrs_a, attrs_b)
            assert all(
                type(attrs_a[k]) is type(attrs_b[k]) for k in attrs_a
            )

        sides = {
            "packed": {
                "encode": encode_packed,
                "decode": lambda: decode(packed_payloads),
            },
            "json": {
                "encode": encode_json,
                "decode": lambda: decode(json_payloads),
            },
        }
        best = {
            side: {op: float("inf") for op in ("encode", "decode")}
            for side in sides
        }
        for _trial in range(9):  # interleaved: drift hits both sides
            for side, ops in sides.items():
                for op, fn in ops.items():
                    start = time.perf_counter()
                    fn()
                    best[side][op] = min(
                        best[side][op], time.perf_counter() - start
                    )

        per_record = 1e6 / count
        encode_speedup = best["json"]["encode"] / best["packed"]["encode"]
        decode_speedup = best["json"]["decode"] / best["packed"]["decode"]
        roundtrip_speedup = (
            best["json"]["encode"] + best["json"]["decode"]
        ) / (best["packed"]["encode"] + best["packed"]["decode"])
        packed_bytes = sum(map(len, packed_payloads)) / count
        json_bytes = sum(map(len, json_payloads)) / count

        gate = 2.0
        assert roundtrip_speedup >= gate, (
            f"codec roundtrip speedup {roundtrip_speedup:.2f}x "
            f"is below the {gate}x gate"
        )

        # End-to-end: bulk commit (WAL + heap + extents) and cold
        # open + full scan, where the codec is one cost among many —
        # the win is diluted but must stay a win.
        def bulk_commit(cls):
            bulk_dir = tempfile.mkdtemp(prefix="repro-bench-codec-e2e-")
            start = time.perf_counter()
            bulk_db = Database(bulk_dir, registry=registry, sync=False)
            with bulk_db.transaction():
                for n in range(count):
                    bulk_db.add(populate(cls, n))
            elapsed = time.perf_counter() - start
            bulk_db.close()
            return bulk_dir, elapsed

        def cold_scan(bulk_dir, cls):
            start = time.perf_counter()
            scan_db = Database(bulk_dir, registry=registry, sync=False)
            got = len(scan_db.query(cls).all())
            elapsed = time.perf_counter() - start
            scan_db.close()
            assert got == count, got
            return elapsed

        e2e = {
            side: {"commit": float("inf"), "scan": float("inf")}
            for side in sides
        }
        for _trial in range(5):  # interleaved, like the microbench
            for side, cls in (("packed", PackedEvt), ("json", JsonEvt)):
                bulk_dir, commit_s = bulk_commit(cls)
                try:
                    scan_s = cold_scan(bulk_dir, cls)
                finally:
                    shutil.rmtree(bulk_dir, ignore_errors=True)
                e2e[side]["commit"] = min(e2e[side]["commit"], commit_s)
                e2e[side]["scan"] = min(e2e[side]["scan"], scan_s)
        commit_speedup = e2e["json"]["commit"] / e2e["packed"]["commit"]
        scan_speedup = e2e["json"]["scan"] / e2e["packed"]["scan"]
    finally:
        db.close()
        shutil.rmtree(directory, ignore_errors=True)

    payload = {
        "records": count,
        "encode_us": {
            side: round(best[side]["encode"] * per_record, 3)
            for side in sides
        },
        "decode_us": {
            side: round(best[side]["decode"] * per_record, 3)
            for side in sides
        },
        "bytes_per_record": {
            "packed": round(packed_bytes, 1),
            "json": round(json_bytes, 1),
        },
        "encode_speedup": round(encode_speedup, 2),
        "decode_speedup": round(decode_speedup, 2),
        "roundtrip_speedup": round(roundtrip_speedup, 2),
        "size_ratio": round(json_bytes / packed_bytes, 2),
        "bulk_commit_ms": {
            side: round(e2e[side]["commit"] * 1e3, 2) for side in sides
        },
        "cold_open_scan_ms": {
            side: round(e2e[side]["scan"] * 1e3, 2) for side in sides
        },
        "bulk_commit_speedup": round(commit_speedup, 2),
        "cold_open_scan_speedup": round(scan_speedup, 2),
        "gates": {"roundtrip_min": gate},
    }
    path = write_baseline("BENCH_codec.json", payload)
    table(
        "CODEC: packed vs JSON record format (µs per record)",
        ("op", "packed", "json", "speedup"),
        [
            ("encode",
             f"{best['packed']['encode'] * per_record:.2f}",
             f"{best['json']['encode'] * per_record:.2f}",
             f"{encode_speedup:.2f}x"),
            ("decode",
             f"{best['packed']['decode'] * per_record:.2f}",
             f"{best['json']['decode'] * per_record:.2f}",
             f"{decode_speedup:.2f}x"),
            ("roundtrip", "-", "-", f"{roundtrip_speedup:.2f}x"),
            ("bytes/record",
             f"{packed_bytes:.0f}",
             f"{json_bytes:.0f}",
             f"{json_bytes / packed_bytes:.2f}x"),
            ("bulk commit (ms)",
             f"{e2e['packed']['commit'] * 1e3:.1f}",
             f"{e2e['json']['commit'] * 1e3:.1f}",
             f"{commit_speedup:.2f}x"),
            ("cold open + scan (ms)",
             f"{e2e['packed']['scan'] * 1e3:.1f}",
             f"{e2e['json']['scan'] * 1e3:.1f}",
             f"{scan_speedup:.2f}x"),
        ],
    )
    print(f"wrote {path}")


def report_concurrency(
    *,
    per_thread_total: int = 2400,
    rounds: int = 4,
    read_ops: int = 2000,
    write_seconds: float = 1.0,
):
    """CONCURRENCY: multi-threaded mixed workload against one database.

    Three sections:

    1. *Mixed-workload clients* — k client threads (k in 1/2/4/8), each
       running read-modify-write transactions against a private slice of
       a shared accounts table (``locking=True`` engine: strict 2PL plus
       the WAL group-commit syncer thread).  Throughput and latency are
       taken per *round* — every round measures all thread counts back
       to back so the 1-thread baseline and the k-thread run see the
       same disk conditions — and the best paired round wins.
    2. *Snapshot reads vs a writer* — p50/p95 of lock-free MVCC snapshot
       reads alone, then with a concurrent writer hammering the same
       objects.  The reader's calls into ``LockManager.acquire`` are
       counted via a wrapper and must be zero.
    3. *Gates* — scaling and reader-isolation gates, recorded in
       ``BENCH_concurrency.json``.

    The scaling gate is environment-aware.  On a multi-core host the
    4-client ratio must reach 1.8x.  On a single-core host the GIL
    serializes every client's CPU and the only speedup available is
    overlapping WAL fsyncs with other clients' work; scheduler wakeup
    latency (~100us on virtualized single cores) then caps the 4-client
    ratio, so the gate becomes: peak ratio across 2/4/8 clients >= 1.8x
    and the 4-client ratio >= 1.3x.  The rule that was applied is stored
    in the baseline as ``gate_rule``.
    """
    import tempfile
    import threading

    from repro.oodb.database import Database
    from repro.oodb.schema import Persistent

    class Account(Persistent):
        def __init__(self, n: int = 0) -> None:
            super().__init__()
            self.n = n
            self.balance = 100.0

    def pctl(values, q):
        if not values:
            return 0.0
        ordered = sorted(values)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    tmp = tempfile.mkdtemp(prefix="bench-conc-")
    db = Database(os.path.join(tmp, "db"), locking=True)
    oids = []
    with db.transaction():
        for i in range(64):
            oids.append(db.add(Account(i)))

    # -- section 1: mixed-workload client scaling ----------------------
    thread_counts = (1, 2, 4, 8)

    def run_clients(k: int, total: int):
        per = total // k
        lats: list[float] = []
        lats_lock = threading.Lock()

        def worker(tid: int) -> None:
            part = oids[tid * 8:(tid + 1) * 8]
            mine = []
            for i in range(per):
                def fn():
                    acct = db.fetch(part[i % 8])
                    acct.balance += 1
                t0 = time.perf_counter()
                db.run_transaction(fn)
                mine.append(time.perf_counter() - t0)
            with lats_lock:
                lats.extend(mine)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(k)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        return per * k / wall, lats

    run_clients(4, per_thread_total // 3)  # warmup: page cache + WAL file
    best = {
        k: {"throughput": 0.0, "p50_us": 0.0, "p95_us": 0.0}
        for k in thread_counts
    }
    best_round = {"ratio4": 0.0, "peak_ratio": 0.0}
    for _round in range(rounds):
        round_thr = {}
        for k in thread_counts:
            throughput, lats = run_clients(k, per_thread_total)
            round_thr[k] = throughput
            if throughput > best[k]["throughput"]:
                best[k] = {
                    "throughput": throughput,
                    "p50_us": pctl(lats, 0.50) * 1e6,
                    "p95_us": pctl(lats, 0.95) * 1e6,
                }
        ratio4 = round_thr[4] / round_thr[1]
        peak = max(round_thr[k] / round_thr[1] for k in (2, 4, 8))
        best_round["ratio4"] = max(best_round["ratio4"], ratio4)
        best_round["peak_ratio"] = max(best_round["peak_ratio"], peak)

    # -- section 2: snapshot readers vs a concurrent writer ------------
    reader_acquires = 0
    inner_acquire = db.locks.acquire
    reader_ident: set[int] = set()

    def counting_acquire(*args, **kwargs):
        nonlocal reader_acquires
        if threading.get_ident() in reader_ident:
            reader_acquires += 1
        return inner_acquire(*args, **kwargs)

    db.locks.acquire = counting_acquire  # type: ignore[method-assign]

    def read_pass(n: int) -> list[float]:
        reader_ident.add(threading.get_ident())
        lats = []
        for i in range(n):
            t0 = time.perf_counter()
            with db.snapshot() as snap:
                snap.record(oids[i % 64])
            lats.append(time.perf_counter() - t0)
        reader_ident.discard(threading.get_ident())
        return lats

    solo_lats = read_pass(read_ops)

    stop_writer = threading.Event()
    writes_done = 0

    def writer() -> None:
        nonlocal writes_done
        i = 0
        while not stop_writer.is_set():
            def fn():
                acct = db.fetch(oids[i % 64])
                acct.balance += 1
            db.run_transaction(fn)
            writes_done += 1
            i += 1

    wt = threading.Thread(target=writer)
    wt.start()
    deadline = time.perf_counter() + write_seconds
    busy_lats: list[float] = []
    while time.perf_counter() < deadline:
        busy_lats.extend(read_pass(200))
    stop_writer.set()
    wt.join()
    db.locks.acquire = inner_acquire  # type: ignore[method-assign]
    db.close()

    solo_p95 = pctl(solo_lats, 0.95) * 1e6
    busy_p95 = pctl(busy_lats, 0.95) * 1e6

    # -- gates ---------------------------------------------------------
    cores = os.cpu_count() or 1
    ratio4 = best[4]["throughput"] / best[1]["throughput"]
    peak_ratio = max(
        best[k]["throughput"] / best[1]["throughput"] for k in (2, 4, 8)
    )
    if cores > 1:
        gate_rule = "multi_core_ratio4"
        scaling_ok = best_round["ratio4"] >= 1.8 or ratio4 >= 1.8
    else:
        gate_rule = "single_core_peak"
        scaling_ok = (
            max(best_round["peak_ratio"], peak_ratio) >= 1.8
            and max(best_round["ratio4"], ratio4) >= 1.3
        )
    # A writer must not stall snapshot readers: generous absolute slack
    # (5ms) absorbs GIL scheduling jitter, the relative bound catches
    # real blocking (a blocked reader would wait a full write txn).
    reader_ok = busy_p95 <= max(10 * solo_p95, solo_p95 + 5000.0)
    locks_ok = reader_acquires == 0

    payload = {
        "clients": {
            str(k): {
                "throughput_txn_s": round(best[k]["throughput"], 1),
                "p50_us": round(best[k]["p50_us"], 1),
                "p95_us": round(best[k]["p95_us"], 1),
                "speedup_vs_1": round(
                    best[k]["throughput"] / best[1]["throughput"], 3
                ),
            }
            for k in thread_counts
        },
        "paired_rounds": {
            "ratio4_best": round(best_round["ratio4"], 3),
            "peak_ratio_best": round(best_round["peak_ratio"], 3),
            "rounds": rounds,
        },
        "snapshot_reads": {
            "solo_p50_us": round(pctl(solo_lats, 0.50) * 1e6, 1),
            "solo_p95_us": round(solo_p95, 1),
            "with_writer_p50_us": round(pctl(busy_lats, 0.50) * 1e6, 1),
            "with_writer_p95_us": round(busy_p95, 1),
            "concurrent_writer_txns": writes_done,
            "reader_lock_acquisitions": reader_acquires,
        },
        "environment": {
            "cpu_count": cores,
            "per_thread_total": per_thread_total,
        },
        "gate_rule": gate_rule,
        "gates": {
            "scaling": bool(scaling_ok),
            "snapshot_reader_isolation": bool(reader_ok),
            "snapshot_reader_lock_free": bool(locks_ok),
        },
        "gates_green": bool(scaling_ok and reader_ok and locks_ok),
    }
    path = write_baseline("BENCH_concurrency.json", payload)

    table(
        "CONCURRENCY / mixed-workload clients (best paired round)",
        ["clients", "txn/s", "p50 us", "p95 us", "speedup"],
        [
            (
                k,
                f"{best[k]['throughput']:.0f}",
                f"{best[k]['p50_us']:.0f}",
                f"{best[k]['p95_us']:.0f}",
                f"{best[k]['throughput'] / best[1]['throughput']:.2f}x",
            )
            for k in thread_counts
        ],
    )
    table(
        "CONCURRENCY / snapshot reads",
        ["metric", "solo", "with writer"],
        [
            ("p50 (us)",
             f"{pctl(solo_lats, 0.50) * 1e6:.0f}",
             f"{pctl(busy_lats, 0.50) * 1e6:.0f}"),
            ("p95 (us)",
             f"{solo_p95:.0f}",
             f"{busy_p95:.0f}"),
            ("reader lock acquisitions", "0 required", str(reader_acquires)),
        ],
    )
    status = "green" if payload["gates_green"] else "RED"
    print(
        f"\ngates ({gate_rule}): scaling={scaling_ok} "
        f"reader_isolation={reader_ok} lock_free={locks_ok} -> {status}"
    )
    print(f"wrote {path}")
    return payload


REPORTS = {
    "E8": report_e8,
    "E9": report_e9,
    "E10": report_e10,
    "E11": report_e11,
    "E14": report_e14,
    "E16": report_e16,
    "HOTPATH": report_hotpath,
    "OODB": report_oodb,
    "OBS": report_obs,
    "TSDB": report_tsdb,
    "QUERY": report_query,
    "CODEC": report_codec,
    "CONCURRENCY": report_concurrency,
}


def main(argv: list[str]) -> None:
    selected = [a.upper() for a in argv] or list(REPORTS)
    unknown = [s for s in selected if s not in REPORTS]
    if unknown:
        raise SystemExit(f"unknown experiments {unknown}; pick from {list(REPORTS)}")
    for name in selected:
        REPORTS[name]()


if __name__ == "__main__":
    main(sys.argv[1:])
