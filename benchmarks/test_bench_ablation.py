"""Ablation benchmarks for DESIGN.md's implementation decisions.

A1 — metaclass-generated stubs vs. ``__getattribute__`` interception:
     same semantics, different place to pay.  The stub design costs only
     on declared methods; interception taxes every attribute access.

A2 — per-producer subscription vs. an indexed central dispatch table:
     with an index, a central table's *lookup* is as cheap as
     subscription, but every reactive object now has a consumer (the
     table), so every declared-method invocation generates and routes an
     occurrence even when no rule in the system watches that object.
"""

from __future__ import annotations

import time

from repro.core import Notifiable, Reactive, event_method
from repro.core.ablation import CentralDispatchTable, DynamicReactive


class StubObj(Reactive):
    def __init__(self):
        super().__init__()
        self.value = 0

    @event_method
    def bump(self, n=1):
        self.value += n

    def plain(self):
        return self.value


class DynObj(DynamicReactive):
    __dynamic_event_interface__ = {"bump": "end"}

    def __init__(self):
        super().__init__()
        self.value = 0

    def bump(self, n=1):
        self.value += n

    def plain(self):
        return self.value


class NullConsumer(Notifiable):
    def notify(self, occurrence):
        pass


# ----------------------------------------------------------------------
# A1: stub vs dynamic interception
# ----------------------------------------------------------------------
def test_a1_stub_declared_unsubscribed(benchmark):
    benchmark.group = "A1 declared method, unsubscribed"
    benchmark.name = "metaclass-stub"
    benchmark(StubObj().bump)


def test_a1_dynamic_declared_unsubscribed(benchmark):
    benchmark.group = "A1 declared method, unsubscribed"
    benchmark.name = "dynamic-interception"
    benchmark(DynObj().bump)


def test_a1_stub_undeclared_method(benchmark):
    benchmark.group = "A1 undeclared method"
    benchmark.name = "metaclass-stub"
    benchmark(StubObj().plain)


def test_a1_dynamic_undeclared_method(benchmark):
    benchmark.group = "A1 undeclared method"
    benchmark.name = "dynamic-interception"
    benchmark(DynObj().plain)


def test_a1_stub_subscribed(benchmark, sentinel):
    benchmark.group = "A1 declared method, subscribed"
    benchmark.name = "metaclass-stub"
    obj = StubObj()
    obj.subscribe(NullConsumer())
    benchmark(obj.bump)


def test_a1_dynamic_subscribed(benchmark, sentinel):
    benchmark.group = "A1 declared method, subscribed"
    benchmark.name = "dynamic-interception"
    obj = DynObj()
    obj.subscribe(NullConsumer())
    benchmark(obj.bump)


def test_a1_shape_interception_taxes_every_access(sentinel):
    """Dynamic interception is slower even on *undeclared* methods —
    the cost the metaclass design avoids paying."""

    def timed(fn, repeat=5000):
        start = time.perf_counter()
        for _ in range(repeat):
            fn()
        return time.perf_counter() - start

    stub, dynamic = StubObj(), DynObj()
    stub.plain()
    dynamic.plain()
    assert timed(dynamic.plain) > timed(stub.plain)


# ----------------------------------------------------------------------
# A2: subscription vs indexed central table
# ----------------------------------------------------------------------
def _subscription_population(watched_fraction: float, population: int = 200):
    objects = [StubObj() for _ in range(population)]
    consumer = NullConsumer()
    watched = int(population * watched_fraction)
    for obj in objects[:watched]:
        obj.subscribe(consumer)
    return objects


def _central_population(watched_fraction: float, population: int = 200):
    objects = [StubObj() for _ in range(population)]
    table = CentralDispatchTable()
    table.attach_everywhere(objects)
    consumer = NullConsumer()
    watched = int(population * watched_fraction)
    if watched:
        table.route(consumer, "bump", sources=list(objects[:watched]))
    return objects, table


def _drive(objects):
    for obj in objects:
        obj.bump()


def test_a2_subscription_sparse(benchmark, sentinel):
    benchmark.group = "A2 200 updates, 5% of objects watched"
    benchmark.name = "per-producer subscription"
    objects = _subscription_population(0.05)
    benchmark.pedantic(_drive, args=(objects,), rounds=20)


def test_a2_central_sparse(benchmark, sentinel):
    benchmark.group = "A2 200 updates, 5% of objects watched"
    benchmark.name = "central dispatch table"
    objects, _table = _central_population(0.05)
    benchmark.pedantic(_drive, args=(objects,), rounds=20)


def test_a2_subscription_full(benchmark, sentinel):
    benchmark.group = "A2 200 updates, all objects watched"
    benchmark.name = "per-producer subscription"
    objects = _subscription_population(1.0)
    benchmark.pedantic(_drive, args=(objects,), rounds=20)


def test_a2_central_full(benchmark, sentinel):
    benchmark.group = "A2 200 updates, all objects watched"
    benchmark.name = "central dispatch table"
    objects, _table = _central_population(1.0)
    benchmark.pedantic(_drive, args=(objects,), rounds=20)


def test_a2_shape_central_routes_everything(sentinel):
    """With 5% watched, the central table still routes 100% of events."""
    objects, table = _central_population(0.05)
    _drive(objects)
    assert table.routed == len(objects)
    assert table.delivered == int(len(objects) * 0.05)

    # Subscription generates occurrences only for watched objects:
    watched = _subscription_population(0.05)
    generated = sum(1 for obj in watched if obj.has_consumers())
    assert generated == int(len(watched) * 0.05)
