"""Record codec benchmarks: struct-packed format vs tagged JSON.

The timed series behind ``BENCH_codec.json`` (see ``report.py CODEC``)
plus fast shape tests asserting that schema'd classes actually take the
packed path, that both formats round-trip identically, and that packed
payloads are smaller — these run in CI with ``--benchmark-disable``.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.oodb import Database, Persistent, codec
from repro.oodb.oid import Oid
from repro.oodb.schema import ClassRegistry

registry = ClassRegistry()


class PackedEvt(Persistent, registry=registry):
    _p_schema = [
        ("seq", "int"),
        ("score", "float"),
        ("active", "bool"),
        ("label", "str:24"),
        ("ref", "oid"),
        ("stamp", "datetime"),
    ]


class JsonEvt(Persistent, registry=registry):
    pass


POPULATION = 500


def _populate(cls: type, n: int):
    obj = cls()
    obj.__dict__.update(
        seq=n,
        score=n * 0.5,
        active=n % 2 == 0,
        label=f"evt-{n:06d}",
        ref=Oid(n + 1),
        stamp=dt.datetime(2026, 1, 1) + dt.timedelta(seconds=n),
    )
    return obj


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "db"), registry=registry, sync=False)
    yield database
    database.close()


@pytest.fixture
def serializer(db):
    return db.serializer


def _payload_pairs(serializer, count=POPULATION):
    schema = codec.schema_for(PackedEvt)
    assert schema is not None
    packed = [
        serializer.encode_packed_payload(n + 1, _populate(PackedEvt, n), schema)
        for n in range(count)
    ]
    json_side = [
        serializer.record_with_oid(
            n + 1,
            serializer.record_to_json(
                serializer.encode_object(_populate(JsonEvt, n))
            ),
        )
        for n in range(count)
    ]
    return packed, json_side


def test_encode_packed(benchmark, serializer):
    benchmark.group = "CODEC write path"
    benchmark.name = f"encode packed ({POPULATION} records)"
    schema = codec.schema_for(PackedEvt)
    objs = [_populate(PackedEvt, n) for n in range(POPULATION)]

    def run():
        return [
            serializer.encode_packed_payload(n + 1, obj, schema)
            for n, obj in enumerate(objs)
        ]

    payloads = benchmark.pedantic(run, rounds=20)
    assert all(codec.is_packed(p) for p in payloads)


def test_encode_json(benchmark, serializer):
    benchmark.group = "CODEC write path"
    benchmark.name = f"encode json ({POPULATION} records)"
    objs = [_populate(JsonEvt, n) for n in range(POPULATION)]

    def run():
        return [
            serializer.record_with_oid(
                n + 1,
                serializer.record_to_json(serializer.encode_object(obj)),
            )
            for n, obj in enumerate(objs)
        ]

    payloads = benchmark.pedantic(run, rounds=20)
    assert not any(codec.is_packed(p) for p in payloads)


def test_decode_packed(benchmark, serializer):
    benchmark.group = "CODEC read path"
    benchmark.name = f"decode packed to live objects ({POPULATION} records)"
    packed, _ = _payload_pairs(serializer)

    def run():
        return [
            serializer.decode_object(serializer.record_from_payload(p))
            for p in packed
        ]

    objs = benchmark.pedantic(run, rounds=20)
    assert objs[7].seq == 7 and type(objs[7].ref) is Oid


def test_decode_json(benchmark, serializer):
    benchmark.group = "CODEC read path"
    benchmark.name = f"decode json to live objects ({POPULATION} records)"
    _, json_side = _payload_pairs(serializer)

    def run():
        return [
            serializer.decode_object(serializer.record_from_payload(p))
            for p in json_side
        ]

    objs = benchmark.pedantic(run, rounds=20)
    assert objs[7].seq == 7 and type(objs[7].ref) is Oid


def test_formats_agree(serializer):
    """Twin records decode to identical attributes, type-exactly."""
    packed, json_side = _payload_pairs(serializer, count=50)
    for pp, jp in zip(packed, json_side):
        a = serializer.decode_object(serializer.record_from_payload(pp))
        b = serializer.decode_object(serializer.record_from_payload(jp))
        attrs_a = {k: v for k, v in vars(a).items() if not k.startswith("_p_")}
        attrs_b = {k: v for k, v in vars(b).items() if not k.startswith("_p_")}
        assert attrs_a == attrs_b
        assert all(type(attrs_a[k]) is type(attrs_b[k]) for k in attrs_a)


def test_packed_is_smaller(serializer):
    packed, json_side = _payload_pairs(serializer, count=50)
    assert sum(map(len, packed)) < sum(map(len, json_side))


def test_hash_beats_btree_probe(db):
    """The planner routes point lookups to the hash index once present."""
    with db.transaction():
        for n in range(POPULATION):
            db.add(_populate(PackedEvt, n))
    db.create_index(PackedEvt, "label")
    db.create_index(PackedEvt, "label", kind="hash")
    plan = db.query(PackedEvt).where_eq("label", "evt-000007").explain()
    assert plan.access_path == "hash_eq"
    assert db.query(PackedEvt).where_eq("label", "evt-000007").all()[0].seq == 7
