"""Concurrency benchmark smoke tests.

``report.py CONCURRENCY`` is the real benchmark behind
``BENCH_concurrency.json`` (paired-round client scaling at 1/2/4/8
threads plus snapshot-reader isolation).  Running it at full size takes
minutes, so CI runs this scaled-down smoke: the report function must
complete, produce a structurally complete payload, and the two
noise-immune gates — snapshot readers acquire zero locks and are not
stalled by a writer — must hold even at toy scale.  The scaling gate is
asserted only for shape (present and boolean), because a tiny run on a
loaded single-core CI box is not a meaningful speedup measurement.
"""

from __future__ import annotations

import threading

from benchmarks.report import report_concurrency
from repro.oodb import Database, Persistent
from repro.oodb.schema import ClassRegistry


def test_report_concurrency_smoke(tmp_path, monkeypatch):
    # Divert the baseline JSON away from the repo-root BENCH file: the
    # committed baseline is the full-size run, not this toy smoke.
    import benchmarks.report as report_mod

    def diverted(name: str, payload: dict) -> str:
        path = tmp_path / name
        path.write_text(repr(payload))
        return str(path)

    monkeypatch.setattr(report_mod, "write_baseline", diverted)
    payload = report_concurrency(
        per_thread_total=160, rounds=1, read_ops=100, write_seconds=0.1
    )

    assert set(payload["clients"]) == {"1", "2", "4", "8"}
    for stats in payload["clients"].values():
        assert stats["throughput_txn_s"] > 0
        assert stats["p95_us"] >= stats["p50_us"]
    assert payload["clients"]["1"]["speedup_vs_1"] == 1.0

    reads = payload["snapshot_reads"]
    assert reads["reader_lock_acquisitions"] == 0
    assert reads["concurrent_writer_txns"] > 0
    assert payload["gates"]["snapshot_reader_lock_free"] is True
    assert payload["gates"]["snapshot_reader_isolation"] is True
    assert isinstance(payload["gates"]["scaling"], bool)
    assert payload["gate_rule"] in {"multi_core_ratio4", "single_core_peak"}


def test_concurrent_clients_preserve_every_write(tmp_path):
    """4 client threads on one locked database lose no increments."""
    registry = ClassRegistry()

    class Counter(Persistent, registry=registry):
        def __init__(self, value: int = 0) -> None:
            super().__init__()
            self.value = value

    db = Database(str(tmp_path / "db"), registry=registry, locking=True)
    try:
        with db.transaction():
            oid = db.add(Counter())
        per_thread = 25

        def worker() -> None:
            for _ in range(per_thread):
                def fn():
                    db.fetch(oid).value += 1
                db.run_transaction(fn)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with db.snapshot() as snap:
            record = snap.record(oid)
        assert record is not None
        assert record["attrs"]["value"] == 4 * per_thread
    finally:
        db.close()
