"""E16 — parameter contexts: semantics and cost on bursty streams.

The four consumption policies differ in how many constituent occurrences
they retain and how many composites they emit; on bursty streams
(many initiators per terminator) this changes both output size and cost:

* chronicle emits one composite per matched pair;
* recent keeps O(1) state;
* continuous can emit one composite per open window (multiplicative);
* cumulative folds a whole burst into a single composite.
"""

from __future__ import annotations

import pytest

from repro.core import (
    EventModifier,
    EventOccurrence,
    ParameterContext,
    Sequence,
    Primitive,
)

BURSTS = 50
BURST_SIZE = 20


def bursty_stream():
    """BURSTS groups of BURST_SIZE initiators followed by one terminator."""
    occurrences = []
    for _burst in range(BURSTS):
        for _ in range(BURST_SIZE):
            occurrences.append(
                EventOccurrence(
                    class_name="Src", method="tick",
                    modifier=EventModifier.END,
                )
            )
        occurrences.append(
            EventOccurrence(
                class_name="Src", method="flush", modifier=EventModifier.END
            )
        )
    return occurrences


def build(context):
    event = Sequence(
        Primitive("end Src::tick()"),
        Primitive("end Src::flush()"),
        context=context,
    )
    signals = []

    class Listener:
        def on_event(self, ev, occ):
            signals.append(occ)

    event.add_listener(Listener())
    return event, signals


@pytest.mark.parametrize("context", [c.value for c in ParameterContext])
def test_context_cost_on_bursty_stream(benchmark, context):
    benchmark.group = "E16 sequence detection on bursty stream"
    benchmark.name = context
    stream = bursty_stream()

    def run():
        event, _signals = build(context)
        for occurrence in stream:
            event.notify(occurrence)

    benchmark.pedantic(run, rounds=5)


def test_shape_signal_counts():
    stream = bursty_stream()
    counts = {}
    sizes = {}
    for context in ParameterContext:
        event, signals = build(context)
        for occurrence in stream:
            event.notify(occurrence)
        counts[context.value] = len(signals)
        sizes[context.value] = (
            max(len(s.constituents) for s in signals) if signals else 0
        )
    # One terminator per burst:
    assert counts["chronicle"] == BURSTS          # one pair per terminator
    assert counts["recent"] == BURSTS             # latest initiator each time
    assert counts["continuous"] == BURSTS * BURST_SIZE  # all open windows
    assert counts["cumulative"] == BURSTS         # one folded composite
    # Cumulative composites carry the whole burst:
    assert sizes["cumulative"] == BURST_SIZE + 1
    assert sizes["chronicle"] == 2
