"""E13 — coupling modes (§4.4).

Per-transaction cost of the same rule under immediate / deferred /
decoupled coupling, against a real (on-disk, fsync-off) database.

Expected shape: immediate and deferred cost about the same in total (the
work moves, it does not shrink); decoupled pays for one extra transaction
per triggering, but the triggering transaction itself returns sooner.
"""

from __future__ import annotations

import pytest

from repro.core import Sentinel
from repro.workloads import Account

COUPLINGS = ["immediate", "deferred", "decoupled"]


@pytest.fixture
def bank(tmp_path):
    system = Sentinel(path=str(tmp_path / "db"), adopt_class_rules=False)
    system.db._wal._sync = False  # measure CPU cost, not fsync latency
    with system:
        yield system
    system.close()


def make_workload(system, coupling):
    account = Account("BENCH", 1_000_000.0)
    audit_trail = []
    rule = system.create_rule(
        f"audit-{coupling}",
        "end Account::deposit(float amount)",
        action=lambda ctx: audit_trail.append(ctx.param("amount")),
        coupling=coupling,
    )
    account.subscribe(rule)

    def one_transaction():
        with system.db.transaction():
            account.deposit(1.0)

    return one_transaction


@pytest.mark.parametrize("coupling", COUPLINGS)
def test_coupling_mode_cost(benchmark, bank, coupling):
    benchmark.group = "E13 per-transaction cost by coupling mode"
    benchmark.name = coupling
    benchmark.pedantic(make_workload(bank, coupling), rounds=50, iterations=2)


def test_shape_execution_points(tmp_path):
    """Where each mode runs, verified through the scheduler counters."""
    system = Sentinel(path=str(tmp_path / "db"), adopt_class_rules=False)
    with system:
        account = Account("A", 100.0)
        seen = {"immediate": [], "deferred": [], "decoupled": []}
        for coupling in COUPLINGS:
            rule = system.create_rule(
                f"probe-{coupling}",
                "end Account::deposit(float amount)",
                action=lambda ctx, c=coupling: seen[c].append(
                    system.db.current_transaction is not None
                    and system.db.current_transaction.id
                ),
                coupling=coupling,
            )
            account.subscribe(rule)
        with system.db.transaction() as txn:
            account.deposit(5.0)
            triggering_id = txn.id
            # Immediate already ran, inside the triggering transaction.
            assert seen["immediate"] == [triggering_id]
            assert seen["deferred"] == []
            assert seen["decoupled"] == []
        # Deferred ran at commit, inside the same transaction.
        assert seen["deferred"] == [triggering_id]
        # Decoupled ran after commit, in a different transaction.
        assert len(seen["decoupled"]) == 1
        assert seen["decoupled"][0] != triggering_id
    system.close()
