"""E12 — complex-event detection cost (§4.3).

Detection cost per operator class, over a fixed synthetic occurrence
stream: primitives are O(1) per occurrence; binary operators do buffer
work; the windowed extensions (Aperiodic/Not) manage open windows.
Parameter contexts are swept separately in E16.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Aperiodic,
    Conjunction,
    Disjunction,
    EventDetector,
    EventModifier,
    EventOccurrence,
    Not,
    Primitive,
    Sequence,
)
from repro.core.events import Any as AnyEvent

STREAM_LENGTH = 2000


def make_stream(length: int):
    """Alternating a/b/c occurrences with stable sequence numbers."""
    methods = ("alpha", "beta", "gamma")
    return [
        EventOccurrence(
            class_name="Src",
            method=methods[i % 3],
            modifier=EventModifier.END,
        )
        for i in range(length)
    ]


def leaves():
    return (
        Primitive("end Src::alpha()"),
        Primitive("end Src::beta()"),
        Primitive("end Src::gamma()"),
    )


def feed_stream(event, stream):
    for occurrence in stream:
        event.notify(occurrence)
    event.reset()


EVENTS = {
    "primitive": lambda: leaves()[0],
    "disjunction": lambda: Disjunction(*leaves()),
    "conjunction": lambda: Conjunction(*leaves()),
    "sequence": lambda: Sequence(*(leaves()[:2])),
    "any-2-of-3": lambda: AnyEvent(2, *leaves()),
    "not": lambda: Not(leaves()[1], leaves()[0], leaves()[2]),
    "aperiodic": lambda: Aperiodic(leaves()[1], leaves()[0], leaves()[2]),
}


@pytest.mark.parametrize("kind", sorted(EVENTS))
def test_operator_detection_cost(benchmark, kind):
    benchmark.group = f"E12 detection cost, stream={STREAM_LENGTH}"
    benchmark.name = kind
    event = EVENTS[kind]()
    stream = make_stream(STREAM_LENGTH)
    benchmark.pedantic(feed_stream, args=(event, stream), rounds=5)


def test_detector_routing_vs_direct_feed(benchmark):
    """Ablation: detector leaf-index routing for many registered graphs."""
    benchmark.group = "E12 detector routing (20 graphs)"
    detector = EventDetector()
    for _ in range(20):
        detector.register(Conjunction(*leaves()))
    stream = make_stream(STREAM_LENGTH)

    def run():
        for occurrence in stream:
            detector.feed(occurrence)

    benchmark.pedantic(run, rounds=3)


def _nested_sequence(depth: int):
    """seq(seq(...seq(a,b)..., a), b) — a detection tree of given depth."""
    event = Sequence(
        Primitive("end Src::alpha()"), Primitive("end Src::beta()")
    )
    for i in range(depth - 1):
        next_leaf = Primitive(
            "end Src::beta()" if i % 2 == 0 else "end Src::alpha()"
        )
        event = Sequence(event, next_leaf)
    return event


@pytest.mark.parametrize("depth", [1, 4, 8, 16])
def test_tree_depth_cost(benchmark, depth):
    """Ablation: detection cost vs event-tree depth (propagation chain)."""
    benchmark.group = "E12 nested sequence depth"
    benchmark.name = f"depth-{depth}"
    event = _nested_sequence(depth)
    stream = make_stream(600)
    benchmark.pedantic(feed_stream, args=(event, stream), rounds=5)


def test_shape_depth_cost_grows_sublinearly():
    """Deep trees cost more, but per-level overhead is bounded (each
    occurrence touches each matching leaf once plus the signal chain)."""
    import time

    stream = make_stream(600)

    def timed(event):
        start = time.perf_counter()
        feed_stream(event, stream)
        return time.perf_counter() - start

    shallow = timed(_nested_sequence(1))
    deep = timed(_nested_sequence(16))
    assert deep > shallow
    assert deep < shallow * 64  # far below quadratic blow-up


def test_shape_primitive_is_cheapest():
    import time

    stream = make_stream(STREAM_LENGTH)

    def timed(event):
        start = time.perf_counter()
        feed_stream(event, stream)
        return time.perf_counter() - start

    primitive_time = timed(EVENTS["primitive"]())
    conjunction_time = timed(EVENTS["conjunction"]())
    assert primitive_time < conjunction_time


def test_shape_signal_counts_are_deterministic():
    """The operators see the same stream; their signal counts follow
    directly from the alternating pattern (a,b,c,a,b,c,...)."""
    stream = make_stream(30)  # 10 of each method
    counts = {}
    for kind, factory in EVENTS.items():
        event = factory()
        for occurrence in stream:
            event.notify(occurrence)
        counts[kind] = event.signal_count
    assert counts["primitive"] == 10          # one per alpha
    assert counts["disjunction"] == 30        # one per occurrence
    assert counts["conjunction"] == 10        # one per complete a+b+c round
    assert counts["sequence"] == 10           # a then b, each round
    assert counts["any-2-of-3"] == 15         # two signals per round (a+b, c+a)
    assert counts["not"] == 0                 # beta always falls inside
    assert counts["aperiodic"] == 10          # each beta inside an open window
