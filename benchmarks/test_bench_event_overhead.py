"""E9 — the cost of the event interface (§3.2).

The paper: "No overhead is incurred in the definition and use of
[passive] objects"; reactive objects pay only when monitored.  We measure
a method call on:

* a **passive** object (plain Persistent, no event machinery),
* a **reactive** object with the method *not* in the event interface,
* a **reactive, unsubscribed** object (stub runs, fast path exits),
* a **reactive, subscribed** object (full occurrence + delivery),
* ablation: a subscribed object with bom+eom (two events per call).

Expected shape: passive ≈ undeclared < unsubscribed ≪ subscribed.
"""

from __future__ import annotations

import time

from repro.core import Notifiable, Reactive, event_method
from repro.oodb import Persistent
from repro.obs.metrics import pipeline_stats, reset_pipeline_stats


class PassiveCounter(Persistent):
    def __init__(self):
        super().__init__()
        self.value = 0

    def bump(self, n=1):
        self.value += n


class ReactiveCounter(Reactive):
    def __init__(self):
        super().__init__()
        self.value = 0

    @event_method
    def bump(self, n=1):
        self.value += n

    @event_method(before=True, after=True)
    def bump_both(self, n=1):
        self.value += n

    def bump_undeclared(self, n=1):
        self.value += n


class NullConsumer(Notifiable):
    def notify(self, occurrence):
        pass


def test_passive_call(benchmark):
    benchmark.group = "E9 method-call cost"
    counter = PassiveCounter()
    benchmark(counter.bump)


def test_reactive_undeclared_method(benchmark):
    benchmark.group = "E9 method-call cost"
    counter = ReactiveCounter()
    benchmark(counter.bump_undeclared)


def test_reactive_unsubscribed(benchmark):
    benchmark.group = "E9 method-call cost"
    counter = ReactiveCounter()
    benchmark(counter.bump)


def test_reactive_subscribed(benchmark, sentinel):
    benchmark.group = "E9 method-call cost"
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    benchmark(counter.bump)


def test_reactive_subscribed_bom_and_eom(benchmark, sentinel):
    benchmark.group = "E9 method-call cost"
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    benchmark(counter.bump_both)


def test_shape_passive_cheapest(sentinel):
    """Assert the ordering the paper relies on."""

    def timed(callable_, repeat=3000):
        start = time.perf_counter()
        for _ in range(repeat):
            callable_()
        return time.perf_counter() - start

    passive = PassiveCounter()
    unsubscribed = ReactiveCounter()
    subscribed = ReactiveCounter()
    subscribed.subscribe(NullConsumer())

    # Warm up, then measure.
    for counter in (passive, unsubscribed, subscribed):
        counter.bump()
    time_passive = timed(passive.bump)
    time_unsubscribed = timed(unsubscribed.bump)
    time_subscribed = timed(subscribed.bump)

    # Subscribed pays for occurrence construction + delivery: clearly the
    # most expensive.  Unsubscribed adds only the has_consumers check.
    assert time_subscribed > time_unsubscribed * 2
    assert time_unsubscribed < time_subscribed
    assert time_passive < time_subscribed


def test_shape_warm_stream_served_from_consumer_cache(sentinel):
    """A steady event stream must run on the cached consumer snapshot.

    The per-event overhead number only holds if the dispatch path is not
    rebuilding the consumer list per call — pin that with the pipeline
    counters rather than a timing threshold.
    """
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    counter.bump()  # cold call builds the snapshot
    reset_pipeline_stats()
    for _ in range(100):
        counter.bump()
    assert pipeline_stats.consumer_cache_hits >= 100
    assert pipeline_stats.consumer_cache_misses == 0
