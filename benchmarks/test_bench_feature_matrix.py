"""E14 — the §6/§7 back-of-the-envelope comparison, executed.

The paper closes with a qualitative comparison of Sentinel, Ode and
ADAM.  Rather than restating it, this benchmark *executes* a probe for
every row and regenerates the table from the probe outcomes.  The table
printed here is the one recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.baselines.adam import AdamSystem
from repro.baselines.ode import Constraint, OdeSystem
from repro.core import Primitive, Rule, Sentinel
from repro.workloads import Employee, Manager


def probe_runtime_rule_creation() -> dict[str, bool]:
    sentinel_ok = True  # Rule(...) is a plain runtime constructor
    Rule("probe-rc", "end Employee::set_salary(float s)")

    adam = AdamSystem()

    class T1:
        def poke(self):
            pass

    adam.register_class(T1)
    adam.new_rule(adam.new_event("poke"), "T1")
    adam_ok = True

    # Ode: possible only via class redefinition (touches instances).
    ode = OdeSystem()
    ode.define_class("t1_e14", attributes=(), methods={})
    ode.new("t1_e14")
    ode.redefine_class(
        "t1_e14", add_constraints=[Constraint("c", lambda o: True)]
    )
    ode_ok = ode.stats["recompiled_instances"] == 0  # it is not 0 -> False
    return {"sentinel": sentinel_ok, "adam": adam_ok, "ode": ode_ok}


def probe_cross_class_events() -> dict[str, bool]:
    with Sentinel(adopt_class_rules=False):
        event = (
            Primitive("end Employee::set_salary(float s)")
            & Primitive("end Manager::promote()")
        )
        sentinel_ok = len(event.children()) == 2
    # ADAM rules carry exactly one active-class; Ode constraints live in
    # one class body: neither can express the conjunction as one event.
    return {"sentinel": sentinel_ok, "adam": False, "ode": False}


def probe_rules_as_first_class_objects() -> dict[str, bool]:
    rule = Rule("probe-fc", "end Employee::set_salary(float s)")
    sentinel_ok = (
        hasattr(rule, "enable")
        and hasattr(rule, "oid")
        and rule.name == "probe-fc"
    )
    adam = AdamSystem()

    class T2:
        def poke(self):
            pass

    adam.register_class(T2)
    adam_rule = adam.new_rule(adam.new_event("poke"), "T2")
    adam_ok = hasattr(adam_rule, "enabled")  # object with identity
    ode_ok = False  # constraints/triggers are class-body declarations
    return {"sentinel": sentinel_ok, "adam": adam_ok, "ode": ode_ok}


def probe_events_as_objects() -> dict[str, bool]:
    sentinel_ok = isinstance(
        Primitive("end Employee::set_salary(float s)"), object
    ) and hasattr(Primitive("end Employee::get_age()"), "oid")
    adam_ok = True    # db-event objects (Fig 12)
    ode_ok = False    # event expressions inside class definitions
    return {"sentinel": sentinel_ok, "adam": adam_ok, "ode": ode_ok}


def probe_subscription_checking() -> dict[str, bool]:
    # "only subscribed rules are checked": Sentinel yes, others no.
    with Sentinel(adopt_class_rules=False):
        fred = Employee("f", 1.0)
        rule = Rule("probe-sub", "end Employee::set_salary(float s)")
        other = Employee("g", 1.0)
        fred.subscribe(rule)
        other.set_salary(9.0)
        sentinel_ok = rule.times_triggered == 0  # unsubscribed: unchecked
    return {"sentinel": sentinel_ok, "adam": False, "ode": False}


def probe_composite_operators() -> dict[str, bool]:
    with Sentinel(adopt_class_rules=False):
        e = Primitive("end Employee::get_age()")
        sentinel_ok = all(
            callable(op) for op in (e.__and__, e.__or__, e.__rshift__)
        )
    # Ode supports composite events *within* a class; ADAM does not.
    return {"sentinel": sentinel_ok, "adam": False, "ode": True}


def probe_instance_level_rules() -> dict[str, bool]:
    with Sentinel(adopt_class_rules=False):
        fred, anne = Employee("f", 1.0), Employee("a", 1.0)
        rule = Rule("probe-il", "end Employee::set_salary(float s)")
        fred.subscribe(rule)
        fred.set_salary(2.0)
        anne.set_salary(2.0)
        sentinel_ok = rule.times_triggered == 1
    # ADAM: possible but negative (disabled-for); count as yes.
    # Ode: triggers activate per instance; constraints cannot.
    return {"sentinel": sentinel_ok, "adam": True, "ode": True}


def probe_rules_on_rules() -> dict[str, bool]:
    with Sentinel(adopt_class_rules=False):
        base = Rule("probe-meta-base", "end Employee::set_salary(float s)")
        hits = []
        meta = Rule("probe-meta", "end Rule::disable",
                    action=lambda ctx: hits.append(1))
        base.subscribe(meta)
        base.disable()
        sentinel_ok = hits == [1]
    return {"sentinel": sentinel_ok, "adam": False, "ode": False}


PROBES = {
    "rules created/deleted at runtime": probe_runtime_rule_creation,
    "events spanning distinct classes": probe_cross_class_events,
    "rules as first-class objects": probe_rules_as_first_class_objects,
    "events as first-class objects": probe_events_as_objects,
    "subscription-scoped rule checking": probe_subscription_checking,
    "composite event operators": probe_composite_operators,
    "instance-level rules": probe_instance_level_rules,
    "rules on rules themselves": probe_rules_on_rules,
}

#: The paper's expectations (Section 6/7), row by row.
EXPECTED = {
    "rules created/deleted at runtime": {"sentinel": True, "adam": True, "ode": False},
    "events spanning distinct classes": {"sentinel": True, "adam": False, "ode": False},
    "rules as first-class objects": {"sentinel": True, "adam": True, "ode": False},
    "events as first-class objects": {"sentinel": True, "adam": True, "ode": False},
    "subscription-scoped rule checking": {
        "sentinel": True, "adam": False, "ode": False,
    },
    "composite event operators": {"sentinel": True, "adam": False, "ode": True},
    "instance-level rules": {"sentinel": True, "adam": True, "ode": True},
    "rules on rules themselves": {"sentinel": True, "adam": False, "ode": False},
}


def build_matrix() -> dict[str, dict[str, bool]]:
    return {feature: probe() for feature, probe in PROBES.items()}


def render(matrix: dict[str, dict[str, bool]]) -> str:
    width = max(len(f) for f in matrix) + 2
    lines = [
        f"{'feature':<{width}} {'Sentinel':>9} {'Ode':>5} {'ADAM':>6}",
        "-" * (width + 24),
    ]
    for feature, row in matrix.items():
        mark = lambda ok: "yes" if ok else "no"  # noqa: E731
        lines.append(
            f"{feature:<{width}} {mark(row['sentinel']):>9} "
            f"{mark(row['ode']):>5} {mark(row['adam']):>6}"
        )
    return "\n".join(lines)


def test_feature_matrix(benchmark):
    """Regenerate the comparison table; every probe must match the paper."""
    benchmark.group = "E14 feature matrix"
    matrix = benchmark(build_matrix)
    print()
    print(render(matrix))
    assert matrix == EXPECTED
