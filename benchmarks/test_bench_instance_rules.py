"""E11 — instance-level rules on small subsets (§3.5).

The paper: with subscription, "a rule can now be applied to different
types of objects in an efficient manner", and work scales with the
monitored subset, not the class population.  Class-scoped checking (the
Ode/ADAM shape) pays on *every* instance's updates.

Workload: population N stocks, rule relevant to k of them, uniform
updates over the whole population.  Sweep k/N.
"""

from __future__ import annotations

import pytest

from repro.baselines.adam import AdamSystem
from repro.core import Rule
from repro.workloads import make_stocks, uniform_updates

POPULATION = 500
SUBSETS = [1, 50, 500]
UPDATES = 1000


class AdamStock:
    def __init__(self, symbol, price):
        self.symbol = symbol
        self.price = price

    def set_price(self, price):
        self.price = price


def sentinel_workload(subset_size: int):
    stocks = make_stocks(POPULATION)
    rule = Rule(
        "subset-watch", "end Stock::set_price(float price)",
        condition=lambda ctx: False,
    )
    for stock in stocks[:subset_size]:
        stock.subscribe(rule)

    def run():
        uniform_updates(
            stocks, UPDATES, lambda obj, rng: obj.set_price(rng.random())
        )

    return run


def adam_workload(subset_size: int):
    system = AdamSystem()
    system.register_class(AdamStock)
    stocks = [AdamStock(f"S{i}", 1.0) for i in range(POPULATION)]
    rule = system.new_rule(
        system.new_event("set_price"), "AdamStock",
        condition=lambda obj, args: False,
    )
    # ADAM scopes to instances *negatively*: every non-member is listed.
    for stock in stocks[subset_size:]:
        rule.disable_for(stock)

    def run():
        uniform_updates(
            stocks,
            UPDATES,
            lambda obj, rng: system.invoke(obj, "set_price", rng.random()),
        )

    return run


@pytest.mark.parametrize("subset", SUBSETS)
def test_sentinel_subset_rule(benchmark, sentinel, subset):
    benchmark.group = f"E11 rule on {subset}/{POPULATION} instances"
    benchmark.name = "sentinel-subscribe-subset"
    benchmark.pedantic(sentinel_workload(subset), rounds=5)


@pytest.mark.parametrize("subset", SUBSETS)
def test_adam_subset_rule(benchmark, subset):
    benchmark.group = f"E11 rule on {subset}/{POPULATION} instances"
    benchmark.name = "adam-disabled-for-lists"
    benchmark.pedantic(adam_workload(subset), rounds=5)


def test_sentinel_class_level_full_population(benchmark, sentinel):
    """When the rule really applies to *all* instances, Sentinel uses a
    class-level rule (one consumer on the class) rather than N instance
    subscriptions — this is the fair full-population comparison."""
    from repro.workloads import Stock

    benchmark.group = f"E11 rule on {POPULATION}/{POPULATION} instances"
    benchmark.name = "sentinel-class-level-rule"
    stocks = make_stocks(POPULATION)
    rule = Rule(
        "class-watch", "end Stock::set_price(float price)",
        condition=lambda ctx: False,
    )
    Stock._class_consumers.append(rule)

    def run():
        uniform_updates(
            stocks, UPDATES, lambda obj, rng: obj.set_price(rng.random())
        )

    try:
        benchmark.pedantic(run, rounds=5)
    finally:
        Stock._class_consumers.remove(rule)


def test_shape_sentinel_work_tracks_subset(sentinel):
    """Rule checks = updates hitting the subset, not the population."""
    stocks = make_stocks(POPULATION)
    rule = Rule(
        "w", "end Stock::set_price(float price)",
        condition=lambda ctx: False,
    )
    for stock in stocks[:50]:
        stock.subscribe(rule)
    uniform_updates(
        stocks, UPDATES, lambda obj, rng: obj.set_price(rng.random())
    )
    # Uniform updates: ~10% of them hit the 50/500 subset.
    assert rule.times_triggered < UPDATES * 0.25
    assert rule.times_triggered > 0


def test_shape_adam_scans_on_every_update():
    """The centralized model consults the rule for all 100% of updates."""
    system = AdamSystem()
    system.register_class(AdamStock)
    stocks = [AdamStock(f"S{i}", 1.0) for i in range(POPULATION)]
    rule = system.new_rule(
        system.new_event("set_price"), "AdamStock",
        condition=lambda obj, args: False,
    )
    for stock in stocks[50:]:
        rule.disable_for(stock)
    uniform_updates(
        stocks, UPDATES,
        lambda obj, rng: system.invoke(obj, "set_price", rng.random()),
    )
    assert system.stats["rules_scanned"] == 2 * UPDATES  # before+after
