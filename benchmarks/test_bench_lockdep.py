"""Lock-order sanitizer overhead gates.

The sanitizer is opt-in (``Database.enable_lockdep``); the contract the
concurrency benchmarks rely on is that the *disabled* path — the
default, what ``BENCH_concurrency.json`` was measured against — costs
nothing detectable: one ``is not None`` test per first-time lock
acquisition.  The gate here pins that against the committed baseline:
the single-client locked-transaction p50 must stay within 5% of
``clients["1"].p50_us``.

Absolute µs bounds don't transfer across machines, so the primary gate
is machine-normalized: the txn-p50 over snapshot-read-p50 ratio (both
sides measured in this process, reads never touch the lock manager at
all) against the same ratio from the committed baseline.  The absolute
figure is accepted as an alternative so a machine *faster* than the
baseline recorder passes trivially.  Best-of-attempts with per-side
minima: one measurement taken while the box is loaded must not fail
the gate by itself.

Enabled-mode cost is measured and printed but not gated — the sanitizer
is a debugging aid, not a production default.
"""

from __future__ import annotations

import json
import os
import time

from repro.oodb import Database, Persistent
from repro.oodb.schema import ClassRegistry

_REPO_ROOT = __file__.rsplit("/", 2)[0]

#: The acceptance bound: disabled-sanitizer regression vs the committed
#: concurrency baseline.
MAX_DISABLED_REGRESSION = 0.05

#: Gate attempts.  A µs-scale gate on a shared machine needs a retry: a
#: real regression fails every attempt, a busy scheduler only some.
GATE_ATTEMPTS = 5

TXNS_PER_ATTEMPT = 400
READS_PER_ATTEMPT = 2000


def load_concurrency_baseline() -> dict:
    with open(os.path.join(_REPO_ROOT, "BENCH_concurrency.json")) as handle:
        return json.load(handle)


def _pctl(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _build_db(tmp_path) -> tuple[Database, list, object]:
    registry = ClassRegistry()

    class Account(Persistent, registry=registry):
        def __init__(self, n: int = 0) -> None:
            super().__init__()
            self.n = n
            self.balance = 100.0

    class Ledger(Persistent, registry=registry):
        def __init__(self) -> None:
            super().__init__()
            self.balance = 0.0

    db = Database(str(tmp_path / "db"), registry=registry, locking=True)
    oids = []
    with db.transaction():
        for i in range(8):
            oids.append(db.add(Account(i)))
        ledger_oid = db.add(Ledger())
    return db, oids, ledger_oid


def _measure_txn_p50_us(db: Database, oids: list, txns: int) -> float:
    """Single-client read-modify-write p50, the baseline's 1-client shape."""
    lats: list[float] = []
    for i in range(txns):
        def fn():
            db.fetch(oids[i % 8]).balance += 1
        t0 = time.perf_counter()
        db.run_transaction(fn)
        lats.append(time.perf_counter() - t0)
    return _pctl(lats, 0.50) * 1e6


def _measure_read_p50_us(db: Database, oids: list, reads: int) -> float:
    """Solo MVCC snapshot-read p50 — never enters the lock manager, so it
    normalizes away machine speed without touching the gated code path."""
    lats: list[float] = []
    for i in range(reads):
        t0 = time.perf_counter()
        with db.snapshot() as snap:
            snap.record(oids[i % 8])
        lats.append(time.perf_counter() - t0)
    return _pctl(lats, 0.50) * 1e6


def test_gate_disabled_lockdep_within_budget(tmp_path):
    """Sanitizer detached (the default): locked txn p50 within 5% of the
    committed single-client baseline, absolute or machine-normalized."""
    baseline = load_concurrency_baseline()
    base_txn_us = baseline["clients"]["1"]["p50_us"]
    base_read_us = baseline["snapshot_reads"]["solo_p50_us"]
    absolute_bound = base_txn_us * (1 + MAX_DISABLED_REGRESSION)
    ratio_bound = (base_txn_us / base_read_us) * (
        1 + MAX_DISABLED_REGRESSION
    )

    db, oids, _ledger = _build_db(tmp_path)
    try:
        assert db.locks.lockdep is None  # the path under test is default-off
        _measure_txn_p50_us(db, oids, TXNS_PER_ATTEMPT // 2)  # warm WAL
        # Per-side minima across attempts: each min approaches the true
        # quiet-machine cost, so transient interference on one attempt
        # (or on one side of one attempt) cannot fail the gate by itself.
        txn_us = read_us = float("inf")
        for _attempt in range(GATE_ATTEMPTS):
            txn_us = min(txn_us, _measure_txn_p50_us(db, oids, TXNS_PER_ATTEMPT))
            read_us = min(
                read_us, _measure_read_p50_us(db, oids, READS_PER_ATTEMPT)
            )
            ratio = txn_us / read_us
            if txn_us <= absolute_bound or ratio <= ratio_bound:
                return
    finally:
        db.close()
    raise AssertionError(
        f"disabled-lockdep overhead regressed on all {GATE_ATTEMPTS} "
        f"attempts: txn p50 {txn_us:.1f}µs vs bound {absolute_bound:.1f}µs, "
        f"normalized ratio {ratio:.1f} vs bound {ratio_bound:.1f}"
    )


def test_shape_enabled_lockdep_measured_not_gated(tmp_path, capsys):
    """Enabled-mode cost: recorded for visibility, correctness asserted
    (edges observed, balances intact), no latency gate."""
    db, oids, ledger_oid = _build_db(tmp_path)
    try:
        recorder = db.enable_lockdep()
        _measure_txn_p50_us(db, oids, TXNS_PER_ATTEMPT // 2)  # warm WAL

        def two_lock_txn():
            # Two lock *classes* per txn — the recorder tracks order at
            # class granularity, so a single-class txn records nothing.
            def fn():
                db.fetch(oids[0]).balance += 1
                db.fetch(ledger_oid).balance += 1
            db.run_transaction(fn)

        lats = []
        for _ in range(TXNS_PER_ATTEMPT):
            t0 = time.perf_counter()
            two_lock_txn()
            lats.append(time.perf_counter() - t0)
        enabled_us = _pctl(lats, 0.50) * 1e6
        print(f"\nlockdep enabled two-lock txn p50: {enabled_us:.1f}µs")

        assert ("Account", "Ledger") in recorder.edges()
        assert recorder.inversions() == []  # single order: no false alarms
    finally:
        db.disable_lockdep()
        db.close()
