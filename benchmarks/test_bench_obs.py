"""OBS — the cost of the observability layer.

The causality tracer is wired into every hot path of the pipeline as a
single flag-guarded branch.  Two properties are pinned here:

* **disabled**: the per-event overhead of the monitored path must stay
  within 5% of the committed ``BENCH_hotpath.json`` baseline — the guard
  is one attribute load and one jump per instrumented function;
* **enabled**: one rule firing must produce the full connected span
  chain (the cost of which is recorded, not gated — tracing is a
  diagnosis mode, not a production default).

Timing comparisons use the machine-normalized ``subscribed_over_passive``
ratio (falling back to the absolute µs figure), so the gate holds across
hardware of different speeds.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.obs import tracer

from benchmarks.test_bench_event_overhead import (
    NullConsumer,
    PassiveCounter,
    ReactiveCounter,
)

_REPO_ROOT = __file__.rsplit("/", 2)[0]

#: The acceptance bound: disabled-mode regression vs the committed
#: hot-path baseline.
MAX_DISABLED_REGRESSION = 0.05


def load_hotpath_baseline() -> dict:
    with open(os.path.join(_REPO_ROOT, "BENCH_hotpath.json")) as handle:
        return json.load(handle)


def best_us_per_call(fn, repeat=20000, trials=9):
    """Min-of-trials per-call cost in µs.

    The large repeat count matters: at 3000 calls a trial lasts ~2ms and
    scheduler interference dominates (±40% run-to-run); at 20000 the
    min-of-trials is stable to a few percent.  GC is paused during the
    timed region — collection cost scales with the whole process heap
    (pytest imports, other suites), which would skew the allocating
    subscribed path relative to the allocation-free passive one.
    """
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(trials):
            start = time.perf_counter()
            for _ in range(repeat):
                fn()
            best = min(best, (time.perf_counter() - start) / repeat)
    finally:
        if was_enabled:
            gc.enable()
    return best * 1e6


def measure_pipeline(tracing: bool) -> dict:
    """Passive vs subscribed per-call cost with tracing on or off."""
    passive = PassiveCounter()
    subscribed = ReactiveCounter()
    subscribed.subscribe(NullConsumer())
    for counter in (passive, subscribed):
        counter.bump()  # warm the consumer snapshot / code paths
    tracer.disable()
    passive_us = best_us_per_call(passive.bump)
    if tracing:
        tracer.enable(capacity=256)
    try:
        subscribed_us = best_us_per_call(subscribed.bump)
    finally:
        tracer.disable()
        tracer.clear()
    return {
        "passive_us": passive_us,
        "subscribed_us": subscribed_us,
        "per_event_overhead_us": subscribed_us - passive_us,
        "subscribed_over_passive": subscribed_us / passive_us,
    }


def test_bench_disabled_dispatch(benchmark, sentinel):
    benchmark.group = "OBS tracer overhead"
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    tracer.disable()
    benchmark(counter.bump)


def test_bench_enabled_dispatch(benchmark, sentinel):
    benchmark.group = "OBS tracer overhead"
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    tracer.enable(capacity=256)
    try:
        benchmark(counter.bump)
    finally:
        tracer.disable()
        tracer.clear()


def test_shape_disabled_overhead_within_budget(sentinel):
    """Tracing off: per-event overhead within 5% of the committed baseline.

    Primary gate is the machine-normalized subscribed/passive ratio; the
    absolute µs figure is accepted as an alternative so a machine *faster*
    than the baseline recorder also passes trivially.
    """
    baseline = load_hotpath_baseline()
    measured = measure_pipeline(tracing=False)

    ratio_bound = baseline["subscribed_over_passive"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    absolute_bound = baseline["per_event_overhead_us"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    assert (
        measured["subscribed_over_passive"] <= ratio_bound
        or measured["per_event_overhead_us"] <= absolute_bound
    ), (
        f"disabled-tracing overhead regressed: "
        f"ratio {measured['subscribed_over_passive']:.2f} vs bound "
        f"{ratio_bound:.2f}, overhead {measured['per_event_overhead_us']:.3f}µs "
        f"vs bound {absolute_bound:.3f}µs"
    )


def test_shape_enabled_records_full_chain(sentinel):
    """Tracing on: every firing yields the connected method→action chain."""
    from repro.core import Rule

    counter = ReactiveCounter()
    rule = Rule(
        "ObsCheck",
        "end ReactiveCounter::bump(int n)",
        condition=lambda ctx: True,
        action=lambda ctx: None,
    )
    counter.subscribe(rule)
    counter.bump()  # warm, untraced
    tracer.enable(capacity=256)
    try:
        counter.bump()
        kinds = {span.kind for span in tracer.spans()}
    finally:
        tracer.disable()
        tracer.clear()
    assert {
        "method",
        "occurrence",
        "signal",
        "schedule",
        "rule",
        "condition",
        "action",
        "outcome",
    } <= kinds


def test_shape_disabled_records_nothing(sentinel):
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    tracer.disable()
    tracer.clear()
    counter.bump()
    assert tracer.spans() == []
