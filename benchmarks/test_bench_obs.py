"""OBS — the cost of the observability layer.

The causality tracer is wired into every hot path of the pipeline as a
single flag-guarded branch.  Two properties are pinned here:

* **disabled**: the per-event overhead of the monitored path must stay
  within 5% of the committed ``BENCH_hotpath.json`` baseline — the guard
  is one attribute load and one jump per instrumented function;
* **enabled**: one rule firing must produce the full connected span
  chain (the cost of which is recorded, not gated — tracing is a
  diagnosis mode, not a production default);
* **sampled**: with a 1-in-16 sample clock the per-call cost must stay
  within 1.5× the disabled path — the skip decision is made once per
  chain root, so 15 of every 16 chains take the untraced fast path;
* **flight recorder**: the always-on flight recorder must leave the
  per-event fan-out path within the same 5% bound — its record sites
  live on firing/txn/query *boundaries*, never on the per-occurrence
  fan-out, so the monitored bump path executes zero flight code.  The
  firing-path cost it does add is measured (``report.py OBS``) but not
  gated: one deque append per firing.

Timing comparisons use the machine-normalized ``subscribed_over_passive``
ratio (falling back to the absolute µs figure), so the gate holds across
hardware of different speeds.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.obs import tracer
from repro.obs.flight import flight_recorder

from benchmarks.test_bench_event_overhead import (
    NullConsumer,
    PassiveCounter,
    ReactiveCounter,
)

_REPO_ROOT = __file__.rsplit("/", 2)[0]

#: The acceptance bound: disabled-mode regression vs the committed
#: hot-path baseline.
MAX_DISABLED_REGRESSION = 0.05

#: The acceptance bound: 1-in-N sampled tracing vs the disabled path.
MAX_SAMPLED_OVER_DISABLED = 1.5

#: The sample interval the sampled-mode gate runs at.
SAMPLE_INTERVAL = 16

#: Gate attempts.  A µs-scale gate on a shared machine needs a retry: a
#: real regression fails every attempt, a busy scheduler only some.
GATE_ATTEMPTS = 5


def load_hotpath_baseline() -> dict:
    with open(os.path.join(_REPO_ROOT, "BENCH_hotpath.json")) as handle:
        return json.load(handle)


def best_us_per_call(fn, repeat=20000, trials=9):
    """Min-of-trials per-call cost in µs.

    The large repeat count matters: at 3000 calls a trial lasts ~2ms and
    scheduler interference dominates (±40% run-to-run); at 20000 the
    min-of-trials is stable to a few percent.  GC is paused during the
    timed region — collection cost scales with the whole process heap
    (pytest imports, other suites), which would skew the allocating
    subscribed path relative to the allocation-free passive one.
    """
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(trials):
            start = time.perf_counter()
            for _ in range(repeat):
                fn()
            best = min(best, (time.perf_counter() - start) / repeat)
    finally:
        if was_enabled:
            gc.enable()
    return best * 1e6


def measure_pipeline(tracing: bool, sample: int = 1) -> dict:
    """Passive vs subscribed per-call cost with tracing off/on/sampled."""
    passive = PassiveCounter()
    subscribed = ReactiveCounter()
    subscribed.subscribe(NullConsumer())
    for counter in (passive, subscribed):
        counter.bump()  # warm the consumer snapshot / code paths
    tracer.disable()
    passive_us = best_us_per_call(passive.bump)
    if tracing:
        tracer.enable(capacity=256, sample=sample)
    try:
        subscribed_us = best_us_per_call(subscribed.bump)
    finally:
        tracer.disable()
        tracer.clear()
        tracer.sample_interval = 1
    return {
        "passive_us": passive_us,
        "subscribed_us": subscribed_us,
        "per_event_overhead_us": subscribed_us - passive_us,
        "subscribed_over_passive": subscribed_us / passive_us,
    }


def measure_firing(flight_on: bool, repeat: int = 4000, trials: int = 7):
    """Per-call cost of a monitored bump that fires a full ECA rule.

    This is the path the flight recorder *does* touch (one tuple append
    per firing); measured for ``report.py OBS``, not gated.
    """
    from repro.core import Rule

    counter = ReactiveCounter()
    rule = Rule(
        "FlightBench",
        "end ReactiveCounter::bump(int n)",
        condition=lambda ctx: True,
        action=lambda ctx: None,
    )
    counter.subscribe(rule)
    counter.bump()  # warm
    was_enabled = flight_recorder.enabled
    flight_recorder.configure(enabled=flight_on)
    try:
        us = best_us_per_call(counter.bump, repeat=repeat, trials=trials)
    finally:
        flight_recorder.configure(enabled=was_enabled)
        flight_recorder.clear()
    return us


def test_bench_disabled_dispatch(benchmark, sentinel):
    benchmark.group = "OBS tracer overhead"
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    tracer.disable()
    benchmark(counter.bump)


def test_bench_enabled_dispatch(benchmark, sentinel):
    benchmark.group = "OBS tracer overhead"
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    tracer.enable(capacity=256)
    try:
        benchmark(counter.bump)
    finally:
        tracer.disable()
        tracer.clear()


def test_bench_sampled_dispatch(benchmark, sentinel):
    benchmark.group = "OBS tracer overhead"
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    tracer.enable(capacity=256, sample=SAMPLE_INTERVAL)
    try:
        benchmark(counter.bump)
    finally:
        tracer.disable()
        tracer.clear()
        tracer.sample_interval = 1


def test_shape_sampled_overhead_within_budget(sentinel):
    """1-in-16 sampling: per-call cost ≤1.5× the disabled path.

    Both sides are measured back-to-back in this process, so the gate is
    machine-relative and needs no committed baseline.  Best-of-attempts:
    a back-to-back pair distorted by scheduler interference retries.
    """
    best = float("inf")
    for _attempt in range(GATE_ATTEMPTS):
        disabled = measure_pipeline(tracing=False)
        sampled = measure_pipeline(tracing=True, sample=SAMPLE_INTERVAL)
        ratio = sampled["subscribed_us"] / disabled["subscribed_us"]
        best = min(best, ratio)
        if best <= MAX_SAMPLED_OVER_DISABLED:
            return
    raise AssertionError(
        f"sampled tracing too costly: best ratio over {GATE_ATTEMPTS} "
        f"attempts {best:.2f} > {MAX_SAMPLED_OVER_DISABLED}"
    )


def test_shape_disabled_overhead_within_budget(sentinel):
    """Tracing off: per-event overhead within 5% of the committed baseline.

    Primary gate is the machine-normalized subscribed/passive ratio; the
    absolute µs figure is accepted as an alternative so a machine *faster*
    than the baseline recorder also passes trivially.  Best-of-attempts:
    the bound sits a few percent over the committed baseline, so one
    measurement taken while the machine is loaded must not fail the gate.
    """
    baseline = load_hotpath_baseline()
    ratio_bound = baseline["subscribed_over_passive"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    absolute_bound = baseline["per_event_overhead_us"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    # Per-side minima across attempts: each min approaches the true
    # quiet-machine cost, so transient interference on one attempt (or
    # on one side of one attempt) cannot fail the gate by itself.
    passive_us = subscribed_us = float("inf")
    for _attempt in range(GATE_ATTEMPTS):
        measured = measure_pipeline(tracing=False)
        passive_us = min(passive_us, measured["passive_us"])
        subscribed_us = min(subscribed_us, measured["subscribed_us"])
        ratio = subscribed_us / passive_us
        overhead_us = subscribed_us - passive_us
        if ratio <= ratio_bound or overhead_us <= absolute_bound:
            return
    raise AssertionError(
        f"disabled-tracing overhead regressed on all {GATE_ATTEMPTS} "
        f"attempts: ratio {ratio:.2f} vs bound {ratio_bound:.2f}, "
        f"overhead {overhead_us:.3f}µs vs bound {absolute_bound:.3f}µs"
    )


def test_shape_flight_on_hotpath_within_budget(sentinel):
    """Flight recorder on (the default): the monitored fan-out path must
    stay within 5% of the committed hot-path baseline.

    The recorder's hooks live on firing/txn/query boundaries, so the
    per-occurrence bump path executes no flight code at all — this gate
    pins that structural claim against the same baseline and bounds as
    the disabled-tracing gate.
    """
    assert flight_recorder.enabled, "flight recorder must be on by default"
    baseline = load_hotpath_baseline()
    ratio_bound = baseline["subscribed_over_passive"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    absolute_bound = baseline["per_event_overhead_us"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    passive_us = subscribed_us = float("inf")
    for _attempt in range(GATE_ATTEMPTS):
        measured = measure_pipeline(tracing=False)
        passive_us = min(passive_us, measured["passive_us"])
        subscribed_us = min(subscribed_us, measured["subscribed_us"])
        ratio = subscribed_us / passive_us
        overhead_us = subscribed_us - passive_us
        if ratio <= ratio_bound or overhead_us <= absolute_bound:
            return
    raise AssertionError(
        f"hot path with flight recorder on regressed on all "
        f"{GATE_ATTEMPTS} attempts: ratio {ratio:.2f} vs bound "
        f"{ratio_bound:.2f}, overhead {overhead_us:.3f}µs vs bound "
        f"{absolute_bound:.3f}µs"
    )


def test_shape_flight_records_firings_but_not_bumps(sentinel):
    """Structural half of the flight gate: a consumer-only bump records
    nothing; a rule firing records exactly one entry."""
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    flight_recorder.clear()
    counter.bump()
    assert flight_recorder.depth() == 0  # fan-out path: zero flight code

    from repro.core import Rule

    rule = Rule(
        "FlightShape",
        "end ReactiveCounter::bump(int n)",
        condition=lambda ctx: True,
        action=lambda ctx: None,
    )
    ruled = ReactiveCounter()
    ruled.subscribe(rule)
    flight_recorder.clear()
    ruled.bump()
    entries = flight_recorder.snapshot()
    assert [e["kind"] for e in entries] == ["firing"]
    flight_recorder.clear()


def test_shape_enabled_records_full_chain(sentinel):
    """Tracing on: every firing yields the connected method→action chain."""
    from repro.core import Rule

    counter = ReactiveCounter()
    rule = Rule(
        "ObsCheck",
        "end ReactiveCounter::bump(int n)",
        condition=lambda ctx: True,
        action=lambda ctx: None,
    )
    counter.subscribe(rule)
    counter.bump()  # warm, untraced
    tracer.enable(capacity=256)
    try:
        counter.bump()
        kinds = {span.kind for span in tracer.spans()}
    finally:
        tracer.disable()
        tracer.clear()
    assert {
        "method",
        "occurrence",
        "signal",
        "schedule",
        "rule",
        "condition",
        "action",
        "outcome",
    } <= kinds


def test_shape_disabled_records_nothing(sentinel):
    counter = ReactiveCounter()
    counter.subscribe(NullConsumer())
    tracer.disable()
    tracer.clear()
    counter.bump()
    assert tracer.spans() == []
