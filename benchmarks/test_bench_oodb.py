"""E15 — substrate sanity: throughput of the Zeitgeist stand-in.

Object create / fetch / update / commit / abort / recovery rates, plus
indexed vs scanned queries.  These numbers contextualize every other
benchmark (how much of a rule's cost is the store vs the rule machinery).
"""

from __future__ import annotations

import pytest

from repro.oodb import Database, Persistent

BATCH = 100


class Record(Persistent):
    def __init__(self, key=0, payload=""):
        super().__init__()
        self.key = key
        self.payload = payload


@pytest.fixture
def disk_db(tmp_path):
    database = Database(str(tmp_path / "db"), sync=False)
    yield database
    database.close()


@pytest.fixture
def loaded_db(tmp_path):
    database = Database(str(tmp_path / "db"), sync=False)
    with database.transaction():
        for i in range(1000):
            database.add(Record(key=i, payload=f"payload-{i}"))
    yield database
    database.close()


def test_create_commit_batch(benchmark, disk_db):
    benchmark.group = "E15 object store"
    benchmark.name = f"create+commit batch of {BATCH}"

    def run():
        with disk_db.transaction():
            for i in range(BATCH):
                disk_db.add(Record(key=i, payload="x" * 50))

    benchmark.pedantic(run, rounds=10)


def test_update_commit_batch(benchmark, disk_db):
    benchmark.group = "E15 object store"
    benchmark.name = f"update+commit batch of {BATCH}"
    with disk_db.transaction():
        records = [Record(key=i) for i in range(BATCH)]
        for record in records:
            disk_db.add(record)

    def run():
        with disk_db.transaction():
            for record in records:
                record.key += 1

    benchmark.pedantic(run, rounds=10)


def test_abort_batch(benchmark, disk_db):
    benchmark.group = "E15 object store"
    benchmark.name = f"update+abort batch of {BATCH}"
    with disk_db.transaction():
        records = [Record(key=i) for i in range(BATCH)]
        for record in records:
            disk_db.add(record)

    def run():
        txn = disk_db.begin()
        for record in records:
            record.key += 1
        disk_db.txn_manager.rollback(txn)

    benchmark.pedantic(run, rounds=10)


def test_cold_fetch(benchmark, loaded_db):
    benchmark.group = "E15 object store"
    benchmark.name = "fetch 100 cold objects"
    oids = sorted(loaded_db.extents.of("Record"))[:100]

    def run():
        loaded_db.evict_cache()
        for oid in oids:
            loaded_db.fetch(oid)

    benchmark.pedantic(run, rounds=10)


def test_scan_query(benchmark, loaded_db):
    benchmark.group = "E15 object store"
    benchmark.name = "query scan (1000 objects)"
    query = lambda: loaded_db.query(Record).where_eq("key", 500).all()  # noqa: E731
    benchmark.pedantic(query, rounds=10)


def test_indexed_query(benchmark, loaded_db):
    benchmark.group = "E15 object store"
    benchmark.name = "query via B-tree (1000 objects)"
    loaded_db.create_index(Record, "key")
    query = lambda: loaded_db.query(Record).where_eq("key", 500).all()  # noqa: E731
    benchmark.pedantic(query, rounds=10)


def test_reopen_with_recovery(benchmark, tmp_path):
    benchmark.group = "E15 object store"
    benchmark.name = "restart recovery (500 logged updates)"
    path = str(tmp_path / "recdb")
    database = Database(path, sync=False)
    with database.transaction():
        for i in range(500):
            database.add(Record(key=i))
    # Crash-style close: WAL kept, no checkpoint.
    database._pool.flush_all()
    database._wal.flush(force_sync=True)
    database._wal._file.close()
    database._closed = True

    def reopen():
        reopened = Database(path, sync=False)
        count = reopened.object_count()
        reopened.close()
        return count

    result = benchmark.pedantic(reopen, rounds=3)
    assert result == 500 or result is None


def test_garbage_collection(benchmark, tmp_path):
    benchmark.group = "E15 object store"
    benchmark.name = "mark+sweep GC (1000 objects, half garbage)"

    def setup():
        import shutil

        directory = tmp_path / f"gc{setup.counter}"
        setup.counter += 1
        shutil.rmtree(directory, ignore_errors=True)
        database = Database(str(directory), sync=False)
        with database.transaction():
            previous = None
            for i in range(500):
                node = Record(key=i)
                node.link = previous
                database.add(node)
                previous = node
            database.set_root("chain", previous)
            for i in range(500):
                database.add(Record(key=-i))  # unreachable
        return (database,), {}

    setup.counter = 0

    def run(database):
        marked, swept = database.collect_garbage()
        database.close()
        return marked, swept

    marked, swept = benchmark.pedantic(run, setup=setup, rounds=5)
    assert swept == 500


def test_group_commit_batch(benchmark, tmp_path):
    benchmark.group = "E15 object store"
    benchmark.name = f"create+commit batch of {BATCH} (group commit)"
    database = Database(str(tmp_path / "db"), sync=False, group_commit=True)

    def run():
        with database.transaction():
            for i in range(BATCH):
                database.add(Record(key=i, payload="x" * 50))

    benchmark.pedantic(run, rounds=10)
    database.close()


def test_per_record_logging_batch(benchmark, tmp_path):
    benchmark.group = "E15 object store"
    benchmark.name = f"create+commit batch of {BATCH} (per-record logging)"
    database = Database(str(tmp_path / "db"), sync=False, group_commit=False)

    def run():
        with database.transaction():
            for i in range(BATCH):
                database.add(Record(key=i, payload="x" * 50))

    benchmark.pedantic(run, rounds=10)
    database.close()


def test_shape_group_commit_batches_wal_writes(tmp_path):
    """One transaction → one group commit covering every logged record."""
    from repro.obs.metrics import pipeline_stats, reset_pipeline_stats

    database = Database(str(tmp_path / "db"), sync=False, group_commit=True)
    try:
        reset_pipeline_stats()
        with database.transaction():
            for i in range(BATCH):
                database.add(Record(key=i))
        assert pipeline_stats.group_commits == 1
        # BEGIN + one update per object + COMMIT, in a single flush.
        assert pipeline_stats.group_commit_records == BATCH + 2
        assert pipeline_stats.wal_syncs <= 1
    finally:
        database.close()


def test_shape_indexed_query_beats_scan(loaded_db):
    import time

    def timed(fn, repeat=30):
        start = time.perf_counter()
        for _ in range(repeat):
            fn()
        return time.perf_counter() - start

    scan = timed(lambda: loaded_db.query(Record).where_eq("key", 500).all())
    loaded_db.create_index(Record, "key")
    indexed = timed(lambda: loaded_db.query(Record).where_eq("key", 500).all())
    assert indexed < scan
