"""Read-path benchmarks: planner access paths vs the seed scan loop.

The timed series behind ``BENCH_query.json`` (see ``report.py QUERY``)
plus fast shape tests asserting the planner picks the intended access
path and that the fast paths actually beat the scan — these run in CI
with ``--benchmark-disable``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.oodb import Database, Persistent


class Worker(Persistent):
    def __init__(self, n: int, salary: int, dept: str) -> None:
        super().__init__()
        self.name = f"w{n:05d}"
        self.salary = salary
        self.dept = dept


POPULATION = 2000
DEPTS = ("eng", "sales", "hr", "ops")


@pytest.fixture
def staffed_db(tmp_path):
    database = Database(str(tmp_path / "db"), sync=False)
    rng = random.Random(42)
    with database.transaction():
        for n in range(POPULATION):
            database.add(
                Worker(n, rng.randrange(30_000, 120_000), DEPTS[n % len(DEPTS)])
            )
    database.create_index(Worker, "salary")
    database.create_index(Worker, "dept")
    yield database
    database.close()


def test_point_lookup(benchmark, staffed_db):
    benchmark.group = "QUERY read path"
    benchmark.name = f"indexed point lookup ({POPULATION} objects)"
    target = staffed_db.query(Worker).first().salary
    query = staffed_db.query(Worker).where_eq("salary", target)
    benchmark.pedantic(query.all, rounds=20)


def test_range_query(benchmark, staffed_db):
    benchmark.group = "QUERY read path"
    benchmark.name = f"indexed range, ~5% selectivity ({POPULATION} objects)"
    query = staffed_db.query(Worker).where_op("salary", ">=", 115_000)
    benchmark.pedantic(query.all, rounds=20)


def test_order_by_limit(benchmark, staffed_db):
    benchmark.group = "QUERY read path"
    benchmark.name = "indexed order_by + limit 10"
    query = staffed_db.query(Worker).order_by("salary").limit(10)
    benchmark.pedantic(query.all, rounds=20)


def test_index_only_count(benchmark, staffed_db):
    benchmark.group = "QUERY read path"
    benchmark.name = "index-only count"
    query = staffed_db.query(Worker).where_op("salary", ">=", 60_000)
    benchmark.pedantic(query.count, rounds=20)


def test_cold_fetch_many(benchmark, staffed_db):
    benchmark.group = "QUERY read path"
    benchmark.name = "fetch_many, cold cache (500 objects)"
    oids = sorted(staffed_db.extents.of("Worker"))[:500]

    def run():
        staffed_db.evict_cache()
        staffed_db.fetch_many(oids)

    benchmark.pedantic(run, rounds=5)


# ----------------------------------------------------------------------
# Shape tests (always run; no benchmark fixture)
# ----------------------------------------------------------------------
def _timed(fn, repeat=20):
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return time.perf_counter() - start


def test_shape_access_paths(staffed_db):
    query = staffed_db.query(Worker)
    assert query.where_eq("dept", "eng").explain().access_path == "index_eq"
    ranged = staffed_db.query(Worker).where_op("salary", ">", 100_000)
    assert ranged.explain().access_path == "index_range"
    ordered = staffed_db.query(Worker).order_by("salary").limit(5)
    assert ordered.explain().access_path == "index_order"
    unindexed = staffed_db.query(Worker).where_eq("name", "w00042")
    assert unindexed.explain().access_path == "extent_scan"


def test_shape_index_only_count_beats_materializing(staffed_db):
    query = staffed_db.query(Worker).where_op("salary", ">=", 60_000)
    index_only = _timed(query.count)
    materialized = _timed(lambda: len(query.all()))
    assert query.count() == len(query.all())
    assert index_only < materialized


def test_shape_streamed_order_limit_beats_full_sort(staffed_db):
    streamed = staffed_db.query(Worker).order_by("salary").limit(10)
    assert not streamed.explain().sort_needed

    def full_sort():
        rows = staffed_db.query(Worker).all()
        rows.sort(key=lambda w: w.salary)
        return rows[:10]

    fast = _timed(streamed.all)
    slow = _timed(full_sort)
    assert [w.name for w in streamed] == [w.name for w in full_sort()]
    assert fast < slow


def test_shape_plan_results_match_scan(staffed_db):
    """The planner and a forced extent scan agree on every access path."""
    cases = [
        [("salary", ">=", 100_000)],
        [("dept", "==", "hr")],
        [("salary", "<", 50_000), ("dept", "==", "eng")],
    ]
    for filters in cases:
        planned = staffed_db.query(Worker)
        scanned = staffed_db.query(Worker)
        for attribute, op, value in filters:
            planned.where_op(attribute, op, value)
            # Route the same comparison through the residual-filter path.
            scanned.where(
                lambda w, a=attribute, o=op, v=value: _compare(w, a, o, v)
            )
        assert {w.name for w in planned} == {w.name for w in scanned}


def _compare(obj, attribute, op, value):
    actual = getattr(obj, attribute, None)
    if actual is None:
        return False
    return {
        "==": actual == value,
        "<": actual < value,
        ">=": actual >= value,
    }[op]
