"""E10 — adding a rule at runtime (§1 perf issue 1, §3.3/§3.4).

The paper: declaring rules only inside class definitions "entails
changing the class definition every time rules are added or deleted",
touching pre-existing instances.  Sentinel creates a first-class rule
object and subscribes it — independent of how many instances exist.

We sweep the live-instance population and measure the cost of adding one
rule applicable to the class:

* Sentinel: flat (create Rule object; class-level attach is O(1));
* Ode model: linear (class redefinition revisits every instance).
"""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.ode import Constraint, OdeSystem
from repro.core import Rule
from repro.workloads import Stock

POPULATIONS = [10, 100, 1000]
_unique = itertools.count()


def build_ode(population: int) -> OdeSystem:
    system = OdeSystem()
    name = f"stock_e10_{next(_unique)}"
    system.define_class(
        name,
        attributes=("symbol", "price"),
        methods={"set_price": lambda self, p: setattr(self, "price", p)},
    )
    for i in range(population):
        system.new(name, symbol=f"S{i}", price=1.0)
    system._bench_class = name  # type: ignore[attr-defined]
    return system


@pytest.mark.parametrize("population", POPULATIONS)
def test_sentinel_add_rule(benchmark, sentinel, population):
    stocks = [Stock(f"S{i}", 1.0) for i in range(population)]
    benchmark.group = f"E10 add one class rule, {population} live instances"
    benchmark.name = "sentinel-first-class-rule"

    def add_rule():
        rule = Rule(
            f"r{next(_unique)}", "end Stock::set_price(float price)",
            action=lambda ctx: None,
        )
        # Class-level attachment: applies to every instance, no per-
        # instance work.
        Stock._class_consumers.append(rule)
        Stock._class_consumers.pop()

    benchmark(add_rule)
    del stocks


@pytest.mark.parametrize("population", POPULATIONS)
def test_ode_add_rule(benchmark, population):
    benchmark.group = f"E10 add one class rule, {population} live instances"
    benchmark.name = "ode-class-redefinition"

    def setup():
        return (build_ode(population),), {}

    def add_rule(system):
        system.redefine_class(
            system._bench_class,
            add_constraints=[
                Constraint(f"c{next(_unique)}", lambda o: True)
            ],
        )

    benchmark.pedantic(add_rule, setup=setup, rounds=20)


def test_shape_ode_cost_tracks_population():
    """Deterministic shape: redefinition touches every live instance."""
    small = build_ode(10)
    big = build_ode(1000)
    small.redefine_class(
        small._bench_class, add_constraints=[Constraint("c", lambda o: True)]
    )
    big.redefine_class(
        big._bench_class, add_constraints=[Constraint("c", lambda o: True)]
    )
    assert small.stats["recompiled_instances"] == 10
    assert big.stats["recompiled_instances"] == 1000


def test_shape_sentinel_cost_population_independent(sentinel):
    """Creating and attaching a Sentinel rule does zero per-instance work."""
    population = [Stock(f"S{i}", 1.0) for i in range(1000)]
    rule = Rule(
        "late-arrival", "end Stock::set_price(float price)",
        action=lambda ctx: None,
    )
    # Attaching at class level touches the class object only:
    Stock._class_consumers.append(rule)
    try:
        # Every pre-existing instance is now covered...
        assert population[0].has_consumers()
        population[0].set_price(2.0)
        assert rule.times_triggered == 1
    finally:
        Stock._class_consumers.remove(rule)
