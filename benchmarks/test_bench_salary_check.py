"""E7 — the §5.1 salary-check workload in all three systems.

Identical workload: a payroll of employees + managers, a stream of salary
updates, and the invariant "employee salary < manager salary" enforced
by each system's native mechanism (Ode: two constraints; ADAM: two rule
objects; Sentinel: one rule).  Measures end-to-end update throughput and
asserts all three enforce the same invariant.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.adam import AdamSystem
from repro.baselines.ode import Constraint, OdeSystem, OdeViolation
from repro.core import Primitive, Rule
from repro.workloads import Employee, Manager, make_employees

EMPLOYEES = 50
UPDATES = 500


def salary_stream(seed=21):
    rng = random.Random(seed)
    return [
        (rng.randrange(EMPLOYEES), round(rng.uniform(30_000, 120_000), 2))
        for _ in range(UPDATES)
    ]


# ----------------------------------------------------------------------
# Sentinel
# ----------------------------------------------------------------------
def sentinel_setup():
    employees, managers = make_employees(EMPLOYEES, managers=5)
    corrections = []

    def check(ctx):
        employee = ctx.source
        manager = getattr(employee, "manager", None)
        if isinstance(employee, Manager):
            return any(r.salary >= employee.salary for r in employee.reports)
        return manager is not None and employee.salary >= manager.salary

    def correct(ctx):
        employee = ctx.source
        corrections.append(employee)
        if isinstance(employee, Manager):
            employee.salary = max(r.salary for r in employee.reports) + 1.0
        else:
            employee.salary = employee.manager.salary - 1.0

    rule = Rule(
        "SalaryCheck",
        Primitive("end Employee::set_salary(float salary)")
        | Primitive("end Manager::set_salary(float salary)"),
        condition=check,
        action=correct,
    )
    for person in employees + managers:
        person.subscribe(rule)
    return employees, managers, corrections


def test_sentinel_salary_workload(benchmark, sentinel):
    benchmark.group = "E7 salary-check workload"
    benchmark.name = "sentinel (1 rule object)"
    stream = salary_stream()

    def run():
        employees, _managers, _corrections = sentinel_setup()
        for index, salary in stream:
            employees[index].set_salary(salary)

    benchmark.pedantic(run, rounds=5)


# ----------------------------------------------------------------------
# Ode
# ----------------------------------------------------------------------
def ode_setup():
    system = OdeSystem()

    def set_salary(self, amount):
        self.salary = amount

    system.define_class(
        "emp_e7",
        attributes=("name", "salary", "manager"),
        methods={"set_salary": set_salary},
        constraints=[
            Constraint(
                "below-mgr",
                lambda o: o.manager is None or o.salary < o.manager.salary,
                hard=False,
                handler=lambda o: setattr(o, "salary", o.manager.salary - 1.0),
            ),
        ],
    )
    system.define_class(
        "mgr_e7",
        attributes=("name", "salary", "manager", "reports"),
        base="emp_e7",
        constraints=[
            Constraint(
                "above-reports",
                lambda o: all(r.salary < o.salary for r in o.reports),
                hard=False,
                handler=lambda o: setattr(
                    o, "salary", max(r.salary for r in o.reports) + 1.0
                ),
            ),
        ],
    )
    managers = [
        system.new("mgr_e7", name=f"m{j}", salary=130_000.0, manager=None,
                   reports=[])
        for j in range(5)
    ]
    employees = []
    for i in range(EMPLOYEES):
        manager = managers[i % 5]
        employee = system.new(
            "emp_e7", name=f"e{i}", salary=50_000.0, manager=manager
        )
        manager.reports.append(employee)
        employees.append(employee)
    return system, employees


def test_ode_salary_workload(benchmark):
    benchmark.group = "E7 salary-check workload"
    benchmark.name = "ode (2 constraints)"
    stream = salary_stream()

    def run():
        _system, employees = ode_setup()
        for index, salary in stream:
            employees[index].invoke("set_salary", salary)

    benchmark.pedantic(run, rounds=5)


# ----------------------------------------------------------------------
# ADAM
# ----------------------------------------------------------------------
class AdamEmployee:
    def __init__(self, name, salary, manager=None):
        self.name = name
        self.salary = salary
        self.manager = manager

    def set_salary(self, amount):
        self.salary = amount


class AdamManager(AdamEmployee):
    def __init__(self, name, salary):
        super().__init__(name, salary)
        self.reports = []


def adam_setup():
    system = AdamSystem()
    system.register_class(AdamEmployee)
    system.register_class(AdamManager)
    event = system.new_event("set_salary", when="after")

    def employee_check(obj, args):
        if obj.manager is not None and obj.salary >= obj.manager.salary:
            obj.salary = obj.manager.salary - 1.0

    def manager_check(obj, args):
        if any(r.salary >= obj.salary for r in obj.reports):
            obj.salary = max(r.salary for r in obj.reports) + 1.0

    system.new_rule(event, "AdamEmployee", action=employee_check)
    system.new_rule(event, "AdamManager", action=manager_check)

    managers = [AdamManager(f"m{j}", 130_000.0) for j in range(5)]
    employees = []
    for i in range(EMPLOYEES):
        manager = managers[i % 5]
        employee = AdamEmployee(f"e{i}", 50_000.0, manager)
        manager.reports.append(employee)
        employees.append(employee)
    return system, employees


def test_adam_salary_workload(benchmark):
    benchmark.group = "E7 salary-check workload"
    benchmark.name = "adam (2 rule objects)"
    stream = salary_stream()

    def run():
        system, employees = adam_setup()
        for index, salary in stream:
            system.invoke(employees[index], "set_salary", salary)

    benchmark.pedantic(run, rounds=5)


# ----------------------------------------------------------------------
# The invariant holds in all three systems
# ----------------------------------------------------------------------
def test_shape_same_invariant_everywhere(sentinel):
    stream = salary_stream()

    employees, managers, _ = sentinel_setup()
    for index, salary in stream:
        employees[index].set_salary(salary)
    assert all(e.salary < e.manager.salary for e in employees)

    _system, ode_employees = ode_setup()
    for index, salary in stream:
        ode_employees[index].invoke("set_salary", salary)
    assert all(e.salary < e.manager.salary for e in ode_employees)

    adam_system, adam_employees = adam_setup()
    for index, salary in stream:
        adam_system.invoke(adam_employees[index], "set_salary", salary)
    assert all(e.salary < e.manager.salary for e in adam_employees)
