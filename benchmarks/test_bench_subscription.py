"""E8 — subscription-based vs centralized rule checking (§1, §3.5).

The paper's claim: "runtime rule checking overhead is reduced since only
those rules which have subscribed to a reactive object are checked when
the reactive object generates events", in contrast to "a centralized
approach where all rules defined in the system are checked".

We grow the *total* number of rules in the system while keeping the
number of rules relevant to the updated object constant (one), and
measure the per-update cost:

* Sentinel: cost stays flat — the update touches only the subscribed rule;
* ADAM model: cost grows linearly — every event scans the full rule list.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.adam import AdamSystem
from repro.core import Rule
from repro.workloads import Stock

RULE_COUNTS = [10, 100, 1000]


class AdamStock:
    def __init__(self, symbol, price):
        self.symbol = symbol
        self.price = price

    def set_price(self, price):
        self.price = price


def build_sentinel(total_rules: int):
    """One relevant rule subscribed; the rest exist but watch other objects."""
    watched = Stock("WATCHED", 10.0)
    relevant = Rule(
        "relevant", "end Stock::set_price(float price)",
        action=lambda ctx: None,
    )
    watched.subscribe(relevant)
    others = []
    for i in range(total_rules - 1):
        decoy_stock = Stock(f"D{i}", 1.0)
        decoy_rule = Rule(
            f"decoy-{i}", "end Stock::set_price(float price)",
            action=lambda ctx: None,
        )
        decoy_stock.subscribe(decoy_rule)
        others.append((decoy_stock, decoy_rule))
    return watched, others


def build_adam(total_rules: int):
    system = AdamSystem()
    system.register_class(AdamStock)
    watched = AdamStock("WATCHED", 10.0)
    system.new_rule(
        system.new_event("set_price"), "AdamStock",
        condition=lambda obj, args: obj.symbol == "WATCHED",
        action=lambda obj, args: None,
    )
    for i in range(total_rules - 1):
        # Rules about other methods: matched against on every scan anyway.
        system.new_rule(system.new_event(f"method_{i}"), "AdamStock")
    return system, watched


@pytest.mark.parametrize("total_rules", RULE_COUNTS)
def test_sentinel_update_cost(benchmark, sentinel, total_rules):
    watched, _others = build_sentinel(total_rules)
    benchmark.group = f"E8 per-update cost, {total_rules} total rules"
    benchmark.name = "sentinel-subscription"
    benchmark(watched.set_price, 42.0)


@pytest.mark.parametrize("total_rules", RULE_COUNTS)
def test_adam_update_cost(benchmark, total_rules):
    system, watched = build_adam(total_rules)
    benchmark.group = f"E8 per-update cost, {total_rules} total rules"
    benchmark.name = "adam-centralized"
    benchmark(system.invoke, watched, "set_price", 42.0)


def test_shape_sentinel_flat_adam_linear(sentinel):
    """The crossover claim, asserted: Sentinel's per-update work does not
    grow with the system rule count; ADAM's scan count grows linearly."""

    def timed(callable_, *args, repeat=200):
        start = time.perf_counter()
        for _ in range(repeat):
            callable_(*args)
        return time.perf_counter() - start

    # ADAM's *scans* grow exactly linearly (deterministic counter).
    small_sys, small_watched = build_adam(10)
    big_sys, big_watched = build_adam(1000)
    small_sys.invoke(small_watched, "set_price", 1.0)
    big_sys.invoke(big_watched, "set_price", 1.0)
    assert small_sys.stats["rules_scanned"] == 2 * 10
    assert big_sys.stats["rules_scanned"] == 2 * 1000

    # Sentinel's delivered-consumer count is constant.
    watched_small, _ = build_sentinel(10)
    watched_big, _ = build_sentinel(1000)
    assert len(watched_small._all_consumers()) == 1
    assert len(watched_big._all_consumers()) == 1

    # And wall-clock: ADAM degrades by a large factor, Sentinel by a
    # small one (allowing noise).
    adam_small = timed(small_sys.invoke, small_watched, "set_price", 2.0)
    adam_big = timed(big_sys.invoke, big_watched, "set_price", 2.0)
    sentinel_small = timed(watched_small.set_price, 2.0)
    sentinel_big = timed(watched_big.set_price, 2.0)
    assert adam_big > adam_small * 5, (adam_small, adam_big)
    assert sentinel_big < sentinel_small * 3, (sentinel_small, sentinel_big)
