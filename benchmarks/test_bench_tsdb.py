"""TSDB — the cost of continuous telemetry.

The telemetry collector is a *background* thread: it never touches the
event→rule hot path directly, but it does contend for the GIL while it
scrapes the registry and writes a segment frame.  The acceptance gate
pins that contention: with the collector scraping every
``COLLECTOR_INTERVAL_S`` seconds (20× faster than the 5 s production
default, so the gate is conservative), the monitored fan-out path must
stay within 5% of the committed ``BENCH_hotpath.json`` baseline — the
same bound and best-of-attempts discipline as the tracer-disabled and
flight-recorder gates in ``test_bench_obs.py``.

Shape tests pin the store's mechanics: one scrape is one durable frame,
reads see exactly what was appended, and a segment survives its writer.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.obs.tsdb import TimeSeriesStore, telemetry

from benchmarks.test_bench_obs import (
    GATE_ATTEMPTS,
    MAX_DISABLED_REGRESSION,
    load_hotpath_baseline,
    measure_pipeline,
)

#: The scrape interval the overhead gate runs at — 20× the 5 s default.
COLLECTOR_INTERVAL_S = 0.25


def make_samples(n: int) -> dict[str, float]:
    """A synthetic scrape of ``n`` series (the registry averages ~40)."""
    return {f"series_{i:02d}": float(i * 7) for i in range(n)}


def test_shape_collector_on_hotpath_within_budget(sentinel):
    """Collector scraping at 0.25 s: hot path within 5% of the baseline.

    Per-side minima across attempts, exactly like the obs gates: each
    min approaches the true quiet-machine cost, so a trial that lands on
    a scrape (or any other interference) cannot fail the gate by itself.
    """
    baseline = load_hotpath_baseline()
    ratio_bound = baseline["subscribed_over_passive"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    absolute_bound = baseline["per_event_overhead_us"] * (
        1 + MAX_DISABLED_REGRESSION
    )
    directory = tempfile.mkdtemp(prefix="repro-bench-tsdb-gate-")
    telemetry.open(directory, interval=COLLECTOR_INTERVAL_S)
    try:
        passive_us = subscribed_us = float("inf")
        for _attempt in range(GATE_ATTEMPTS):
            measured = measure_pipeline(tracing=False)
            passive_us = min(passive_us, measured["passive_us"])
            subscribed_us = min(subscribed_us, measured["subscribed_us"])
            ratio = subscribed_us / passive_us
            overhead_us = subscribed_us - passive_us
            if ratio <= ratio_bound or overhead_us <= absolute_bound:
                return
        raise AssertionError(
            f"hot path with telemetry collector on regressed on all "
            f"{GATE_ATTEMPTS} attempts: ratio {ratio:.2f} vs bound "
            f"{ratio_bound:.2f}, overhead {overhead_us:.3f}µs vs bound "
            f"{absolute_bound:.3f}µs"
        )
    finally:
        telemetry.close()
        shutil.rmtree(directory, ignore_errors=True)


def test_bench_append_frame(benchmark):
    """One scrape's worth of samples into the append-only segment."""
    benchmark.group = "TSDB store"
    directory = tempfile.mkdtemp(prefix="repro-bench-tsdb-append-")
    store = TimeSeriesStore(directory)
    samples = make_samples(40)
    clock = [1000.0]

    def append_one():
        clock[0] += 1.0
        store.append(samples, ts=clock[0])

    try:
        benchmark(append_one)
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


def test_bench_query_range(benchmark):
    """A 300-sample range query against a populated store."""
    benchmark.group = "TSDB store"
    directory = tempfile.mkdtemp(prefix="repro-bench-tsdb-query-")
    store = TimeSeriesStore(directory)
    samples = make_samples(40)
    try:
        for i in range(300):
            store.append(samples, ts=1000.0 + i)
        benchmark(lambda: store.query("series_00", 1000.0, 1300.0))
    finally:
        store.close()
        shutil.rmtree(directory, ignore_errors=True)


def test_shape_scrape_is_durable_frame(sentinel):
    """One synchronous scrape writes one frame a fresh reader can see."""
    directory = tempfile.mkdtemp(prefix="repro-bench-tsdb-shape-")
    try:
        telemetry.open(directory, interval=60.0, start=False)
        assert telemetry.collector.scrape_once()
        reader = TimeSeriesStore(directory)
        try:
            times = reader.scrape_times()
            assert len(times) == 1
            assert reader.series(), "scrape recorded no series"
        finally:
            reader.close()
    finally:
        telemetry.close()
        shutil.rmtree(directory, ignore_errors=True)
