#!/usr/bin/env python
"""Banking: sequence events, the rule DSL, and persistent rules (§4.6).

Reproduces the paper's deposit-then-withdraw sequence event::

    Event* deposit  = new Primitive("end Account::Deposit(float x)")
    Event* withdraw = new Primitive("before Account::Withdraw(float x)")
    Event* DepWit   = new Sequence(deposit, withdraw)

and adds a fraud-style rule written in the textual rule DSL, stored in
the database, and reloaded in a second session — events and rules are
first-class persistent objects.

Run:  python examples/banking.py
"""

import shutil
import tempfile
from types import SimpleNamespace

from repro import Primitive, Sentinel, Sequence
from repro.workloads import Account

#: The fraud-style rule, in the textual DSL.  Source text is what makes
#: it persistable — and statically analyzable.
AUDIT_RULE_SPEC = """
RULE DepositThenWithdraw
ON   end Account::deposit(float amount) then before Account::withdraw(float amount)
IF   True
DO   rule.matches = getattr(rule, "matches", 0) + 1
MODE immediate
"""


def build_system() -> SimpleNamespace:
    """Wire the audit rule over a fresh in-memory account; drive nothing.

    Also the entry point for ``python -m repro.tools.analyze``.
    """
    sentinel = Sentinel()
    checking = Account("CHK-001", balance=1_000.0)
    audit = sentinel.rule_from_spec(AUDIT_RULE_SPEC)
    audit.subscribe_to(checking)
    return SimpleNamespace(sentinel=sentinel, account=checking, audit=audit)


def main() -> None:
    db_dir = tempfile.mkdtemp(prefix="sentinel-bank-")
    try:
        session_one(db_dir)
        session_two(db_dir)
    finally:
        shutil.rmtree(db_dir, ignore_errors=True)


def session_one(db_dir: str) -> None:
    print("— session 1: define, run, and persist the rule —")
    with Sentinel(path=db_dir) as sentinel:
        checking = Account("CHK-001", balance=1_000.0)

        # The paper's composite event, verbatim signatures included.
        deposit = Primitive("end Account::Deposit(float x)")
        withdraw = Primitive("before Account::Withdraw(float x)")
        dep_wit = Sequence(deposit, withdraw, name="DepWit")

        # The rule is written in the DSL so its condition/action are
        # source text — which is what makes it persistable.
        audit = sentinel.rule_from_spec(AUDIT_RULE_SPEC)
        audit.subscribe_to(checking)

        checking.deposit(500.0)
        checking.withdraw(200.0)     # deposit ; withdraw  -> signal
        checking.withdraw(100.0)     # no fresh deposit    -> silent (chronicle)
        checking.deposit(50.0)
        checking.withdraw(25.0)      # -> second signal
        print(f"  DepWit matched {audit.matches} times (expected 2)")
        assert audit.matches == 2

        # Persist the rule and the standalone composite event.
        with sentinel.transaction():
            sentinel.persist(audit)
            sentinel.db.set_root("audit-rule", audit)
            sentinel.db.set_root("dep-wit", dep_wit)
        print(f"  stored rule under root 'audit-rule' ({audit.oid})")
        sentinel.close()


def session_two(db_dir: str) -> None:
    print("— session 2: reload the stored rule and keep monitoring —")
    with Sentinel(path=db_dir) as sentinel:
        audit = sentinel.db.get_root("audit-rule")
        print(f"  reloaded {audit!r}, matches so far: {audit.matches}")
        assert audit.matches == 2

        audit.bind_scheduler(sentinel.scheduler)
        savings = Account("SAV-900", balance=10_000.0)
        audit.subscribe_to(savings)

        savings.deposit(1_000.0)
        savings.withdraw(400.0)
        print(f"  after new activity, matches: {audit.matches} (expected 3)")
        assert audit.matches == 3
        sentinel.close()


if __name__ == "__main__":
    main()
