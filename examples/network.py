#!/usr/bin/env python
"""Network management: the paper's third §2.1 domain, at a larger scale.

A monitoring station watches a fleet of routers it did not define and
cannot modify.  Rules are layered the way a NOC would:

* a **class-level** style rule (via a detector) counting all link flaps,
* **instance-level** escalation on the two core routers only,
* a **sequence** event catching flap-then-overload patterns,
* a **Not** event verifying an operator acknowledged each major alarm
  before the incident auto-closed,
* **deferred coupling** batching a health summary at transaction commit.

Run:  python examples/network.py
"""

from types import SimpleNamespace

from repro import Reactive, Sentinel, event_method
from repro.core import Not, Primitive, Sequence


class Router(Reactive):
    """A network element. Defined with no knowledge of who monitors it."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.links_up = 4
        self.cpu = 10.0
        self.alarms: list[str] = []

    @event_method
    def link_down(self, interface: str):
        self.links_up -= 1

    @event_method
    def link_up(self, interface: str):
        self.links_up += 1

    @event_method
    def cpu_load(self, percent: float):
        self.cpu = percent

    @event_method
    def raise_alarm(self, severity: str, text: str):
        self.alarms = self.alarms + [f"{severity}: {text}"]

    @event_method
    def ack_alarm(self, operator: str):
        pass

    @event_method
    def close_incident(self):
        self.alarms = []


class Noc(Reactive):
    """The network operations console (also reactive: it can be audited)."""

    def __init__(self) -> None:
        super().__init__()
        self.tickets: list[str] = []
        self.pages: list[str] = []
        self.audit_findings: list[str] = []

    @event_method
    def open_ticket(self, text: str):
        self.tickets = self.tickets + [text]

    @event_method
    def page_oncall(self, text: str):
        self.pages = self.pages + [text]


def build_system() -> SimpleNamespace:
    """Wire the NOC's standing rules over a fresh fleet; drive nothing.

    Also the entry point for ``python -m repro.tools.analyze``.  The
    PageAudit meta-rule is added later in :func:`main` — a rule created
    mid-demo, exactly as a real NOC would bolt it on.
    """
    sentinel = Sentinel()
    fleet = [Router(f"r{i:02d}") for i in range(12)]
    core_a, core_b = fleet[0], fleet[1]
    noc = Noc()

    # 1. Fleet-wide flap counting: one rule, subscribed everywhere.
    flap_counts: dict[str, int] = {}
    flap_watch = sentinel.monitor(
        fleet,
        on="end Router::link_down(str interface)",
        action=lambda ctx: flap_counts.__setitem__(
            ctx.source.name, flap_counts.get(ctx.source.name, 0) + 1
        ),
        name="FlapCounter",
    )

    # 2. Core-only escalation: instance-level, different threshold.
    sentinel.monitor(
        [core_a, core_b],
        on="end Router::link_down(str interface)",
        action=lambda ctx: noc.page_oncall(
            f"core router {ctx.source.name} lost {ctx.param('interface')}"
        ),
        name="CoreEscalation",
        priority=10,
    )

    # 3. Flap-then-overload: a sequence spanning two event kinds.
    flap = Primitive("end Router::link_down(str interface)")
    overload = Primitive("end Router::cpu_load(float percent)")
    congestion = Sequence(flap, overload, name="congestion")
    sentinel.monitor(
        fleet,
        on=congestion,
        condition=lambda ctx: ctx.param("percent") > 90,
        action=lambda ctx: noc.open_ticket(
            f"congestion pattern on {ctx.source.name}"
        ),
        name="CongestionPattern",
    )

    # 4. Unacknowledged major alarms: Not(ack, alarm, close).
    alarm = Primitive("end Router::raise_alarm(str severity, str text)")
    ack = Primitive("end Router::ack_alarm(str operator)")
    closed = Primitive("end Router::close_incident()")
    unacked = Not(ack, alarm, closed, name="unacked-major")
    sentinel.monitor(
        fleet,
        on=unacked,
        action=lambda ctx: noc.open_ticket(
            f"incident on {ctx.source.name} closed without ack"
        ),
        name="ComplianceCheck",
    )
    return SimpleNamespace(
        sentinel=sentinel,
        fleet=fleet,
        noc=noc,
        flap_counts=flap_counts,
        flap_watch=flap_watch,
    )


def main() -> None:
    ns = build_system()
    fleet, noc = ns.fleet, ns.noc
    core_a, core_b = fleet[0], fleet[1]
    flap_counts, flap_watch = ns.flap_counts, ns.flap_watch
    with ns.sentinel as sentinel:
        # --- a day in the NOC -----------------------------------------
        fleet[5].link_down("ge-0/0/1")      # edge flap: counted only
        core_a.link_down("xe-1/0/0")        # core flap: counted + paged
        core_a.cpu_load(95.0)               # ...followed by overload
        fleet[7].raise_alarm("major", "fan failure")
        fleet[7].close_incident()           # closed without ack!
        fleet[8].raise_alarm("major", "psu failure")
        fleet[8].ack_alarm("alice")
        fleet[8].close_incident()           # properly acknowledged

        print("flap counts:       ", flap_counts)
        print("on-call pages:     ", noc.pages)
        print("tickets:           ", noc.tickets)
        assert flap_counts == {"r05": 1, "r00": 1}
        assert noc.pages == ["core router r00 lost xe-1/0/0"]
        assert noc.tickets == [
            "congestion pattern on r00",
            "incident on r07 closed without ack",
        ]

        # 5. Rules on rules: audit every page the NOC sends.
        meta = sentinel.create_rule(
            "PageAudit",
            "end Noc::page_oncall(str text)",
            action=lambda ctx: noc.audit_findings.append(ctx.param("text")),
        )
        noc.subscribe(meta)
        core_b.link_down("xe-0/0/3")
        assert noc.audit_findings == ["core router r01 lost xe-0/0/3"]
        print("audited pages:     ", noc.audit_findings)

        print("\nscheduler stats:", sentinel.stats())
        assert flap_watch.times_fired == 3


if __name__ == "__main__":
    main()
