#!/usr/bin/env python
"""Patient monitoring: the paper's §2.1 scenario, with extended operators.

"When a patient class is defined (and instances are created), it is not
known who may be interested in monitoring that patient; depending upon
the diagnosis, additional groups or physicians may have to track the
patient's progress."

This example builds exactly that: patients exist first; physicians start
(and stop) monitoring them dynamically.  It also exercises the extended
event algebra — Any (m-of-n vitals anomalies), Not (medication missed
between rounds), Aperiodic (every fever reading during an episode) — and
the periodic operator under a manual clock.

Run:  python examples/patients.py
"""

from types import SimpleNamespace

from repro import ManualClock, Primitive, Sentinel
from repro.core import Any, Aperiodic, Not, Periodic, set_clock
from repro.workloads import Patient, Physician


def build_system() -> SimpleNamespace:
    """Wire the ward's standing rules over fresh patients; drive nothing.

    Also the entry point for ``python -m repro.tools.analyze``.  Mirrors
    the four rules the demos below create interactively.
    """
    sentinel = Sentinel()
    ward = [Patient(f"patient-{i}") for i in range(4)]
    house = Physician("Dr. House")
    nurse = Physician("Nurse Chapel")

    fever = Primitive("end Patient::record_temperature(float celsius)")
    tachy = Primitive("end Patient::record_heart_rate(int bpm)")
    diagnose = Primitive("end Patient::diagnose(str condition)")
    medicate = Primitive("end Patient::prescribe(str medication)")

    def anomalous(ctx) -> bool:
        params = ctx.params
        return params.get("celsius", 0) > 38.5 or params.get("bpm", 0) > 120

    escalate = sentinel.create_rule(
        "Escalate",
        event=Any(2, fever, tachy, name="two-anomalies"),
        condition=anomalous,
        action=lambda ctx: house.alert(
            f"escalate {ctx.source.name}: {dict(ctx.params)}"
        ),
    )
    escalate.subscribe_to(ward[0], ward[2])

    readings: list[float] = []
    tracker = sentinel.create_rule(
        "EpisodeTracker",
        event=Aperiodic(fever, diagnose, medicate, name="fever-during-episode"),
        action=lambda ctx: readings.append(ctx.param("celsius")),
    )
    tracker.subscribe_to(ward[2])

    missed = sentinel.create_rule(
        "MissedDose",
        event=Not(medicate, diagnose, fever, name="missed-dose"),
        action=lambda ctx: nurse.alert(f"missed dose for {ctx.source.name}"),
    )
    missed.subscribe_to(ward[0])

    every_4h = Periodic(diagnose, 4 * 3600.0, medicate, name="vitals-timer")
    ticks: list[int] = []
    timer = sentinel.create_rule(
        "VitalsTimer",
        event=every_4h,
        action=lambda ctx: ticks.append(ctx.param("tick")),
    )
    timer.subscribe_to(ward[0])
    sentinel.detector.register(every_4h)

    return SimpleNamespace(
        sentinel=sentinel,
        ward=ward,
        house=house,
        nurse=nurse,
        readings=readings,
        ticks=ticks,
    )


def main() -> None:
    clock = ManualClock(start=0.0)
    previous = set_clock(clock)
    try:
        with Sentinel() as sentinel:
            vitals_demo(sentinel)
            rounds_demo(sentinel, clock)
    finally:
        set_clock(previous)


def vitals_demo(sentinel: Sentinel) -> None:
    print("— dynamic monitoring with m-of-n and windowed events —")
    ward = [Patient(f"patient-{i}") for i in range(4)]
    house = Physician("Dr. House")

    # Any(2, fever, tachycardia): two distinct anomalies => escalate.
    fever = Primitive("end Patient::record_temperature(float celsius)")
    fever.name = "temp-reading"
    tachy = Primitive("end Patient::record_heart_rate(int bpm)")

    def anomalous(ctx) -> bool:
        params = ctx.params
        return params.get("celsius", 0) > 38.5 or params.get("bpm", 0) > 120

    escalate = sentinel.create_rule(
        "Escalate",
        event=Any(2, fever, tachy, name="two-anomalies"),
        condition=anomalous,
        action=lambda ctx: house.alert(
            f"escalate {ctx.source.name}: {dict(ctx.params)}"
        ),
    )

    # Dr. House picks up only patients 0 and 2 — instance-level monitoring,
    # nothing about the Patient class changes.
    escalate.subscribe_to(ward[0], ward[2])

    ward[0].record_temperature(39.2)
    ward[0].record_heart_rate(130)          # two anomalies -> alert
    ward[1].record_temperature(40.0)        # unmonitored -> silence
    ward[1].record_heart_rate(150)
    print(f"  alerts after round one: {len(house.alerts)} (expected 1)")
    assert len(house.alerts) == 1

    # Aperiodic: every fever reading during an open episode.
    episode_open = Primitive("end Patient::diagnose(str condition)")
    episode_close = Primitive("end Patient::prescribe(str medication)")
    during = Aperiodic(fever, episode_open, episode_close, name="fever-during-episode")
    readings = []
    tracker = sentinel.create_rule(
        "EpisodeTracker",
        event=during,
        action=lambda ctx: readings.append(ctx.param("celsius")),
    )
    tracker.subscribe_to(ward[2])
    ward[2].record_temperature(38.0)        # before any episode: ignored
    ward[2].diagnose("pneumonia")           # window opens
    ward[2].record_temperature(38.9)
    ward[2].record_temperature(39.4)
    ward[2].prescribe("antibiotics")        # window closes
    ward[2].record_temperature(39.9)        # after close: ignored
    print(f"  fever readings inside the episode: {readings} (expected 2)")
    assert readings == [38.9, 39.4]


def rounds_demo(sentinel: Sentinel, clock: ManualClock) -> None:
    print("— Not + Periodic under a controllable clock —")
    patient = Patient("patient-9")
    nurse = Physician("Nurse Chapel")

    diagnose = Primitive("end Patient::diagnose(str condition)")
    medicate = Primitive("end Patient::prescribe(str medication)")
    temperature = Primitive("end Patient::record_temperature(float celsius)")

    # Not(medicate, diagnose, temperature): a diagnosis followed by a
    # temperature round with NO medication in between -> missed dose.
    missed = sentinel.create_rule(
        "MissedDose",
        event=Not(medicate, diagnose, temperature, name="missed-dose"),
        action=lambda ctx: nurse.alert(f"missed dose for {patient.name}"),
    )
    missed.subscribe_to(patient)

    patient.diagnose("infection")
    patient.prescribe("penicillin")      # dose given
    patient.record_temperature(37.5)     # round: dose was given, no alert
    patient.diagnose("infection-relapse")
    patient.record_temperature(38.1)     # round: NO dose since diagnosis
    print(f"  nurse alerts: {len(nurse.alerts)} (expected 1)")
    assert len(nurse.alerts) == 1

    # Periodic: check vitals every 4 hours while an episode is open.
    admit = Primitive("end Patient::diagnose(str condition)")
    discharge = Primitive("end Patient::prescribe(str medication)")
    every_4h = Periodic(admit, 4 * 3600.0, discharge, name="vitals-timer")
    ticks = []
    timer = sentinel.create_rule(
        "VitalsTimer",
        event=every_4h,
        action=lambda ctx: ticks.append(ctx.param("tick")),
    )
    timer.subscribe_to(patient)
    detector = sentinel.detector
    detector.register(every_4h)

    patient.diagnose("observation")      # open the window at t=now
    clock.advance(9 * 3600.0)            # 9 hours pass -> two 4h ticks due
    detector.tick()
    print(f"  periodic ticks after 9h: {ticks} (expected [1, 2])")
    assert ticks == [1, 2]
    patient.prescribe("all-clear")       # closes the window
    clock.advance(24 * 3600.0)
    detector.tick()
    assert ticks == [1, 2]
    print("  window closed: no further ticks")


if __name__ == "__main__":
    main()
