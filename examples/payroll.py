#!/usr/bin/env python
"""Payroll: class-level rules, rule inheritance, and the abort action.

Two scenarios from the paper:

1. **Fig 9** — the Marriage rule, declared *inside* the class definition
   (``__rules__``), applicable to every Person instance, aborting the
   triggering transaction when the condition holds.
2. **§5.1** — the Salary-check rule: an employee's salary must stay below
   the manager's.  In Ode this takes two complementary constraints; in
   ADAM two rule objects; in Sentinel a single rule monitoring events
   from both classes.

Run:  python examples/payroll.py
"""

from repro import (
    Reactive,
    Sentinel,
    TransactionAborted,
    class_rule,
    event_method,
)
from repro.workloads import Employee, Manager


class Person(Reactive):
    """Fig 9, translated: the rule lives in the class definition."""

    def __init__(self, name: str, sex: str) -> None:
        super().__init__()
        self.name = name
        self.sex = sex
        self.spouse = None

    @event_method(before=True)
    def marry(self, spouse: "Person") -> None:
        self.spouse = spouse
        spouse.spouse = self

    __rules__ = [
        class_rule(
            "Marriage",
            on="begin marry(spouse)",          # enclosing class implied
            condition="self.sex == spouse.sex",
            action="abort",                    # the paper's A : abort
            coupling="immediate",
        ),
    ]


def marriage_demo(sentinel: Sentinel) -> None:
    print("— Fig 9: the Marriage class-level rule —")
    db = sentinel.db
    assert db is not None

    with db.transaction():
        alice = Person("Alice", "F")
        bob = Person("Bob", "M")
        carol = Person("Carol", "F")
        for person in (alice, bob, carol):
            db.add(person)
        db.set_root("alice", alice)

    with db.transaction():
        alice.marry(bob)
    print(f"  Alice married {alice.spouse.name} — committed")

    try:
        with db.transaction():
            carol.marry(alice)  # would also clobber Alice's spouse...
    except TransactionAborted as exc:
        print(f"  Carol + Alice: transaction aborted ({exc})")
    # The abort rolled everything back, including Alice's spouse pointer.
    assert alice.spouse is bob and carol.spouse is None


def install_salary_check(
    sentinel: Sentinel,
    fred: Employee,
    mike: Manager,
    violations: list,
):
    """The §5.1 Salary-check rule: one rule spanning two classes."""

    def check(ctx) -> bool:
        return fred.salary >= mike.salary

    def report(ctx) -> None:
        violations.append((fred.salary, mike.salary))
        fred.salary = mike.salary - 1.0  # corrective action

    return sentinel.monitor(
        [fred, mike],
        on=(
            "end Employee::set_salary(float salary) or "
            "end Manager::set_salary(float salary)"
        ),
        condition=check,
        action=report,
        name="SalaryCheck",
    )


def build_system():
    """Wire the Marriage class rule and the Salary-check rule, in memory.

    Also the entry point for ``python -m repro.tools.analyze``.
    """
    from types import SimpleNamespace

    sentinel = Sentinel()  # adopts Person's Marriage rule automatically
    mike = Manager("Mike", salary=90_000.0)
    fred = Employee("Fred", salary=50_000.0)
    mike.add_report(fred)
    violations: list = []
    salary_check = install_salary_check(sentinel, fred, mike, violations)
    return SimpleNamespace(
        sentinel=sentinel,
        fred=fred,
        mike=mike,
        violations=violations,
        salary_check=salary_check,
    )


def salary_check_demo(sentinel: Sentinel) -> None:
    print("— §5.1: one Salary-check rule spanning two classes —")
    mike = Manager("Mike", salary=90_000.0)
    fred = Employee("Fred", salary=50_000.0)
    mike.add_report(fred)

    violations = []
    salary_check = install_salary_check(sentinel, fred, mike, violations)

    fred.set_salary(70_000.0)      # fine
    assert not violations
    fred.set_salary(95_000.0)      # exceeds Mike -> corrected
    assert violations and fred.salary == 89_999.0
    mike.set_salary(85_000.0)      # drops below Fred -> corrected again
    assert fred.salary == 84_999.0
    print(f"  corrected {len(violations)} violations; "
          f"fred={fred.salary:,.0f} mike={mike.salary:,.0f}")
    print(f"  one rule object, fired {salary_check.times_fired} times "
          "(Ode would need two constraints, ADAM two rule objects)")


def main() -> None:
    import shutil
    import tempfile

    db_dir = tempfile.mkdtemp(prefix="sentinel-payroll-")
    try:
        with Sentinel(path=db_dir) as sentinel:
            marriage_demo(sentinel)
            salary_check_demo(sentinel)
            print("\nscheduler stats:", sentinel.stats())
            sentinel.close()
    finally:
        shutil.rmtree(db_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
