#!/usr/bin/env python
"""Racy payroll: the concurrency analyzer and the lock-order sanitizer.

A deliberately hazardous rule base over an ``Account``/``Payroll``
pair.  Every rule is *individually* correct — each runs in its own
serialized transaction — yet the set harbors one of each SA1xx hazard:

* ``BonusOne``/``BonusTwo`` — decoupled, same trigger, both
  read-modify-write ``bonus`` → a worker-pool interleaving can lose one
  bonus entirely (SA100);
* ``Forward``/``Backward`` — touch the two object families in opposite
  statement order → a deadlock-retry hotspot (SA101);
* ``GuardX``/``GuardY`` — converse guarded writes on
  ``oncall``/``vacation`` → write-skew under snapshot reads (SA102);
* ``Sleepy`` — ``time.sleep`` in an *immediate* action stretches every
  2PL lock the triggering transaction holds (SA103);
* ``Meddler`` — a decoupled action mutating the rule base from a worker
  thread (SA104).

Run ``python examples/payroll_race.py`` to lint the rule base, then
watch the runtime half of the story: two threads lock the same class
pair in opposite orders, the victim aborts with ``DeadlockDetected``
and retries, and the lock-order sanitizer reports the inversion through
the system monitor — the same pair SA101 predicted statically.

Lint it standalone:  python -m repro.tools.analyze examples/payroll_race.py --concurrency
"""

import time

from repro import Coupling, Reactive, Sentinel, event_method


class Account(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.balance = 0.0
        self.bonus = 0.0
        self.vacation = 0
        self.oncall = 1

    @event_method
    def deposit(self, amount: float) -> None:
        self.balance += amount

    @event_method
    def review(self) -> None:
        pass

    def audit(self) -> None:
        pass


class Payroll(Reactive):
    def __init__(self) -> None:
        super().__init__()
        self.total = 0.0

    @event_method
    def close(self) -> None:
        pass

    def run(self) -> None:
        pass


account = Account()
payroll = Payroll()
sentinel = Sentinel(adopt_class_rules=False)


def _bonus_one(ctx) -> None:
    ctx.source.bonus = ctx.source.bonus + ctx.param("amount") * 0.1


def _bonus_two(ctx) -> None:
    ctx.source.bonus = ctx.source.bonus + 5.0


def _forward(ctx) -> None:
    account.audit()
    payroll.run()


def _backward(ctx) -> None:
    payroll.run()
    account.audit()


def _guard_x_cond(ctx) -> bool:
    return ctx.source.oncall > 1


def _guard_x_act(ctx) -> None:
    ctx.source.vacation = 1


def _guard_y_cond(ctx) -> bool:
    return ctx.source.vacation == 0


def _guard_y_act(ctx) -> None:
    ctx.source.oncall = 0


def _sleepy(ctx) -> None:
    time.sleep(0.01)


def _meddle(ctx) -> None:
    sentinel.create_rule(
        "Escalate",
        "end Account::deposit(float amount)",
        action=_sleepy,
    )


def build_system() -> Sentinel:
    """Entry point for ``python -m repro.tools.analyze``."""
    if len(sentinel.rules):
        return sentinel
    deposit = "end Account::deposit(float amount)"
    review = "end Account::review()"
    close = "end Payroll::close()"
    for name, event, condition, action, coupling in (
        ("BonusOne", deposit, None, _bonus_one, Coupling.DECOUPLED),
        ("BonusTwo", deposit, None, _bonus_two, Coupling.DECOUPLED),
        ("Forward", review, None, _forward, Coupling.IMMEDIATE),
        ("Backward", close, None, _backward, Coupling.IMMEDIATE),
        ("GuardX", review, _guard_x_cond, _guard_x_act, Coupling.IMMEDIATE),
        ("GuardY", close, _guard_y_cond, _guard_y_act, Coupling.IMMEDIATE),
        ("Sleepy", deposit, None, _sleepy, Coupling.IMMEDIATE),
        ("Meddler", close, None, _meddle, Coupling.DECOUPLED),
    ):
        rule = sentinel.create_rule(
            name, event, condition=condition, action=action, coupling=coupling
        )
        rule.subscribe_to(account if "Account" in str(event) else payroll)
    return sentinel


def lint_demo() -> None:
    print("— static pass: analyze(concurrency=True) —")
    report = build_system().analyze(concurrency=True)
    for finding in report.findings:
        print(f"  {finding.code} [{finding.severity}] {finding.message}")
    print(f"  {len(report.findings)} finding(s); "
          "the corrected twin of each lints clean")


def deadlock_demo() -> None:
    """The SA101 pair, live: opposite-order lockers really do deadlock,
    and the sanitizer pins the inversion to the same class pair."""
    import shutil
    import tempfile
    import threading

    from repro.obs.sysmon import SystemMonitor
    from repro.oodb import Database, Persistent
    from repro.oodb.schema import ClassRegistry

    print("\n— runtime pass: lock-order sanitizer —")

    # Persistent twins of the reactive families above, in their own
    # registry so the class names line up with the static SA101 finding.
    registry = ClassRegistry()

    class Account(Persistent, registry=registry):
        def __init__(self) -> None:
            super().__init__()
            self.n = 0

    class Payroll(Persistent, registry=registry):
        def __init__(self) -> None:
            super().__init__()
            self.n = 0

    db_dir = tempfile.mkdtemp(prefix="sentinel-race-")
    db = Database(db_dir, registry=registry, locking=True)
    monitor = SystemMonitor().attach()
    try:
        with db.transaction():
            oid_a = db.add(Account())
            oid_p = db.add(Payroll())
        recorder = db.enable_lockdep()

        a_locked = threading.Event()
        p_locked = threading.Event()

        def forward() -> None:  # Account then Payroll
            def fn():
                db.fetch(oid_a).n += 1
                a_locked.set()
                p_locked.wait(2.0)
                db.fetch(oid_p).n += 1
            db.run_transaction(fn, attempts=10)

        def backward() -> None:  # Payroll then Account
            def fn():
                a_locked.wait(2.0)
                db.fetch(oid_p).n += 1
                p_locked.set()
                db.fetch(oid_a).n += 1
            db.run_transaction(fn, attempts=10)

        threads = [
            threading.Thread(target=forward),
            threading.Thread(target=backward),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with db.snapshot() as snap:
            total = (snap.record(oid_a)["attrs"]["n"]
                     + snap.record(oid_p)["attrs"]["n"])
        print(f"  both transactions committed (total increments: {total}) —"
              " the victim aborted and retried")
        for inv in recorder.inversions():
            print(f"  sanitizer: {inv['first']} <-> {inv['second']} "
                  "locked in both orders")
        print(f"  sysmon lock_order_inversion events: "
              f"{monitor.lock_inversions}")
        print("  the static SA101 finding named the same family pair "
              "before any thread ran")
    finally:
        monitor.detach()
        db.disable_lockdep()
        db.close()
        shutil.rmtree(db_dir, ignore_errors=True)


def main() -> None:
    lint_demo()
    deadlock_demo()


if __name__ == "__main__":
    main()
