#!/usr/bin/env python
"""Portfolio management: the paper's §2 motivating example.

    RULE Purchase:
      WHEN IBM!SetPrice And DowJones!SetValue
      IF   IBM!GetPrice < $80 and DowJones!Change < 3.4%
      THEN Parker!PurchaseIBMStock

Three classes — Stock, FinancialInfo, Portfolio — are defined with no
knowledge of each other.  The Purchase rule is defined independently of
all three, is triggered by a *conjunction of events spanning two objects
of different classes*, and makes a third object act.  None of the class
definitions change when the rule is added.

Run:  python examples/portfolio.py
"""

from types import SimpleNamespace

from repro import Sentinel
from repro.workloads import FinancialInfo, Portfolio, Stock


def build_system() -> SimpleNamespace:
    """Wire the Purchase rule over fresh market objects; drive nothing.

    Also the entry point for ``python -m repro.tools.analyze``.
    """
    sentinel = Sentinel()
    ibm = Stock("IBM", price=95.0)
    dow_jones = FinancialInfo("DowJones", value=10_000.0)
    parker = Portfolio("Parker", cash=50_000.0)

    purchase = sentinel.monitor(
        [ibm, dow_jones],
        on=(
            "end Stock::set_price(float price) and "
            "end FinancialInfo::set_value(float value)"
        ),
        condition=lambda ctx: ibm.price < 80.0 and dow_jones.change < 3.4,
        action=lambda ctx: parker.purchase("IBM", 100, ibm.price),
        name="Purchase",
    )
    return SimpleNamespace(
        sentinel=sentinel,
        ibm=ibm,
        dow_jones=dow_jones,
        parker=parker,
        purchase=purchase,
    )


def main() -> None:
    ns = build_system()
    ibm, dow_jones, parker = ns.ibm, ns.dow_jones, ns.parker
    purchase = ns.purchase
    with ns.sentinel as sentinel:
        print("day 1: IBM stays high — no purchase")
        ibm.set_price(92.0)
        dow_jones.set_value(10_050.0)
        assert parker.holdings.get("IBM", 0) == 0

        print("day 2: IBM drops below $80 and the Dow is calm — buy!")
        ibm.set_price(78.5)
        dow_jones.set_value(10_080.0)
        assert parker.holdings["IBM"] == 100
        print(
            f"  Parker now holds {parker.holdings['IBM']} IBM shares, "
            f"cash ${parker.cash:,.2f}"
        )

        print("day 3: IBM cheap but the market spikes >3.4% — hold")
        ibm.set_price(75.0)
        dow_jones.set_value(10_500.0)  # +4.2% change
        assert parker.holdings["IBM"] == 100

        # A second portfolio starts watching the same objects at runtime;
        # IBM's class is untouched (the external monitoring viewpoint).
        conservative = Portfolio("Quinn", cash=20_000.0)
        sentinel.monitor(
            [ibm],
            on="end Stock::set_price(float price)",
            condition=lambda ctx: ctx.param("price") < 70.0,
            action=lambda ctx: conservative.purchase("IBM", 10, ibm.price),
            name="QuinnBargainHunt",
        )
        print("day 4: deep discount brings in the second watcher")
        ibm.set_price(65.0)
        dow_jones.set_value(10_520.0)
        assert conservative.holdings["IBM"] == 10
        assert parker.holdings["IBM"] == 200  # Purchase rule fired again

        print("\nPurchase rule fired", purchase.times_fired, "times")
        print("scheduler stats:", sentinel.stats())


if __name__ == "__main__":
    main()
