#!/usr/bin/env python
"""Quickstart: the paper's IncomeLevel rule (Fig 10), end to end.

A specific employee, Fred, and his manager, Mike, must always have the
same yearly income.  The rule is *instance-level* — it applies to exactly
these two objects, which belong to *different classes* — and is created
at runtime, long after the classes were defined.  This is the external
monitoring viewpoint in one screen.

Run:  python examples/quickstart.py
"""

from types import SimpleNamespace

from repro import Disjunction, Primitive, Sentinel
from repro.workloads import Employee, Manager


def build_system() -> SimpleNamespace:
    """Wire the IncomeLevel rule; drive nothing.

    Also the entry point for ``python -m repro.tools.analyze``.
    """
    sentinel = Sentinel()
    # Two pre-existing objects of different classes.
    fred = Employee("Fred", salary=50_000.0)
    mike = Manager("Mike", salary=60_000.0)

    # Fig 10, line for line:
    #   Event* emp  = new Primitive("end Employee::Change-Income(float amount)");
    #   Event* mang = new Primitive("end Manager::Change-Income(float amount)");
    #   Event* equal = new Disjunction(emp, mang);
    emp = Primitive("end Employee::Change-Income(float amount)")
    mang = Primitive("end Manager::Change-Income(float amount)")
    equal = Disjunction(emp, mang, name="equal")

    #   Rule IncomeLevel (equal, CheckEqual(), MakeEqual());
    def check_equal(ctx) -> bool:
        return fred.salary != mike.salary

    def make_equal(ctx) -> None:
        amount = ctx.param("amount")
        print(f"  [rule] equalizing incomes at {amount:,.0f}")
        # Plain attribute writes: no events, no re-trigger loop.
        fred.salary = amount
        mike.salary = amount

    income_level = sentinel.create_rule(
        "IncomeLevel", event=equal, condition=check_equal, action=make_equal
    )

    #   Fred.Subscribe(IncomeLevel);  Mike.Subscribe(IncomeLevel);
    fred.subscribe(income_level)
    mike.subscribe(income_level)

    return SimpleNamespace(
        sentinel=sentinel, fred=fred, mike=mike, income_level=income_level
    )


def main() -> None:
    ns = build_system()
    fred, mike, income_level = ns.fred, ns.mike, ns.income_level
    with ns.sentinel as sentinel:
        print(f"before: fred={fred.salary:,.0f} mike={mike.salary:,.0f}")
        fred.change_income(70_000.0)
        print(f"after fred's raise: fred={fred.salary:,.0f} mike={mike.salary:,.0f}")
        assert fred.salary == mike.salary == 70_000.0

        mike.change_income(90_000.0)
        print(f"after mike's raise: fred={fred.salary:,.0f} mike={mike.salary:,.0f}")
        assert fred.salary == mike.salary == 90_000.0

        # Rules are first-class: disable and the monitoring stops.
        income_level.disable()
        fred.change_income(10_000.0)
        print(f"rule disabled:      fred={fred.salary:,.0f} mike={mike.salary:,.0f}")
        assert fred.salary == 10_000.0 and mike.salary == 90_000.0

        print("\nscheduler stats:", sentinel.stats())


if __name__ == "__main__":
    main()
