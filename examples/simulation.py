#!/usr/bin/env python
"""A trading-day simulation: the full system under sustained load.

Drives ~3,500 market events through a Sentinel system in virtual time:

* 40 stocks ticking through a seeded random walk,
* a market index recomputed every simulated minute (Periodic),
* a volatility rule on a cumulative-context sequence (burst folding),
* circuit breakers as instance-level rules on the 5 "blue chip" stocks,
* a risk-paging rule combining breaker state with an index drop,
* scheduler tracing bounded to the last 50 executions.

Everything runs under a ManualClock, so the "day" takes milliseconds and
is perfectly reproducible.

Run:  python examples/simulation.py
"""

import random
from types import SimpleNamespace

from repro import ManualClock, Primitive, Sentinel, Sequence
from repro.core import ParameterContext, Periodic, set_clock
from repro.workloads import FinancialInfo, Stock

TRADING_MINUTES = 390          # one NYSE day
TICKS_PER_MINUTE = 8
SEED = 1993


def main() -> None:
    clock = ManualClock(start=9.5 * 3600)   # 09:30
    previous = set_clock(clock)
    try:
        run_day(clock)
    finally:
        set_clock(previous)


def build_system(rng: random.Random | None = None) -> SimpleNamespace:
    """Wire the whole trading floor — stocks, index, rules; drive nothing.

    Also the entry point for ``python -m repro.tools.analyze``.  The
    opening bell and the trading loop live in :func:`run_day`.
    """
    if rng is None:
        rng = random.Random(SEED)
    sentinel = Sentinel(adopt_class_rules=False)

    stocks = [Stock(f"T{i:03d}", rng.uniform(20, 400)) for i in range(40)]
    blue_chips = stocks[:5]
    index = FinancialInfo("INDEX", 10_000.0)

    halted: set[str] = set()
    pages: list[str] = []
    vol_alerts: list[int] = []

    # 1. Circuit breakers: instance-level rules on blue chips only.
    open_prices = {s.symbol: s.price for s in stocks}
    sentinel.monitor(
        blue_chips,
        on="end Stock::set_price(float price)",
        condition=lambda ctx: (
            ctx.source.symbol not in halted
            and abs(ctx.param("price") - open_prices[ctx.source.symbol])
            / open_prices[ctx.source.symbol]
            > 0.07
        ),
        action=lambda ctx: halted.add(ctx.source.symbol),
        name="CircuitBreaker",
        priority=10,
    )

    # 2. Volatility: each minute's ticks folded into one cumulative
    #    composite by the CUMULATIVE parameter context.
    tick = Primitive("end Stock::set_price(float price)")
    minute_close = Primitive("end FinancialInfo::set_value(float v)")
    burst = Sequence(
        tick, minute_close,
        name="minute-burst", context=ParameterContext.CUMULATIVE,
    )

    def burst_volatility(ctx) -> bool:
        prices = [
            c.params["price"]
            for c in ctx.occurrence.constituents
            if "price" in c.params
        ]
        if len(prices) < 6:
            return False
        mean = sum(prices) / len(prices)
        spread = max(prices) - min(prices)
        return spread / mean > 1.5   # high cross-market dispersion

    vol_rule = sentinel.create_rule(
        "VolatilityWatch", event=burst,
        condition=burst_volatility,
        action=lambda ctx: vol_alerts.append(
            len(ctx.occurrence.constituents)
        ),
    )
    for stock in stocks:
        stock.subscribe(vol_rule)
    index.subscribe(vol_rule)

    # 3. Risk paging: any blue-chip halt AND a 2% index drop.
    index_open = index.value
    sentinel.monitor(
        [index],
        on="end FinancialInfo::set_value(float v)",
        condition=lambda ctx: (
            halted and (index_open - index.value) / index_open > 0.02
        ),
        action=lambda ctx: pages.append(
            f"halts={sorted(halted)} index={index.value:,.0f}"
        ),
        name="RiskPager",
    )

    # 4. Periodic heartbeat: one tick per simulated minute.
    opening_bell = Primitive("explicit FinancialInfo::opening_bell")
    closing_bell = Primitive("explicit FinancialInfo::closing_bell")
    heartbeat = Periodic(opening_bell, 60.0, closing_bell)
    sentinel.detector.register(heartbeat)
    index.subscribe(sentinel.detector)  # feed the detector's graphs
    heartbeats: list[int] = []
    sentinel.create_rule(
        "Heartbeat", event=heartbeat,
        action=lambda ctx: heartbeats.append(ctx.param("tick")),
    )

    return SimpleNamespace(
        sentinel=sentinel,
        stocks=stocks,
        blue_chips=blue_chips,
        index=index,
        halted=halted,
        pages=pages,
        vol_alerts=vol_alerts,
        heartbeats=heartbeats,
    )


def run_day(clock: ManualClock) -> None:
    rng = random.Random(SEED)
    ns = build_system(rng)
    stocks, blue_chips, index = ns.stocks, ns.blue_chips, ns.index
    halted, pages = ns.halted, ns.pages
    vol_alerts, heartbeats = ns.vol_alerts, ns.heartbeats
    with ns.sentinel as sentinel:
        sentinel.scheduler.enable_tracing(limit=50)
        index.raise_event("opening_bell")   # one window for the whole day

        # --- the trading day ------------------------------------------
        events = 0
        for minute in range(TRADING_MINUTES):
            for _ in range(TICKS_PER_MINUTE):
                stock = rng.choice(stocks)
                drift = rng.gauss(0, 0.02)
                if minute == 200 and stock in blue_chips:
                    drift -= 0.10        # midday shock on a blue chip
                stock.set_price(max(1.0, stock.price * (1 + drift)))
                events += 1
            # Recompute the index from a sample (crude but deterministic).
            level = sum(s.price for s in stocks) / len(stocks) * 50
            if minute == 205:
                level *= 0.97            # index follows the shock down
            index.set_value(level)
            events += 1
            clock.advance(60.0)
            sentinel.detector.tick()

        print(f"processed {events:,} market events over {TRADING_MINUTES} minutes")
        print(f"circuit breakers tripped: {sorted(halted)}")
        print(f"risk pages: {len(pages)} (first: {pages[0] if pages else '-'})")
        print(f"volatility alerts: {len(vol_alerts)}")
        print(f"heartbeat ticks: {len(heartbeats)}")
        stats = sentinel.stats()
        print(f"rules triggered {stats['triggered']:,}, fired {stats['fired']:,}")
        print("last traced executions:")
        for entry in sentinel.scheduler.trace()[-3:]:
            print(f"  {entry}")

        assert events == TRADING_MINUTES * (TICKS_PER_MINUTE + 1)
        assert halted, "the midday shock must trip at least one breaker"
        assert pages, "the risk desk must have been paged"
        assert len(heartbeats) == TRADING_MINUTES
        assert vol_alerts, "dispersion alerts expected on this seed"
        assert stats["triggered"] > 2 * TRADING_MINUTES  # bursts + heartbeats + pagers


if __name__ == "__main__":
    main()
