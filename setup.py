"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517 --no-build-isolation`` uses this legacy
path; metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Sentinel: ECA rule support for object-oriented databases "
        "(reproduction of Anwar, Maugis & Chakravarthy, 1993)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
