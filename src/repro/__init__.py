"""Sentinel: rule support for object-oriented databases.

A full reproduction of E. Anwar, L. Maugis & S. Chakravarthy,
*"A New Perspective on Rule Support for Object-Oriented Databases"*
(University of Florida, 1993): an active OODB with an event interface,
first-class events and ECA rules, runtime subscription, and the external
monitoring viewpoint — plus the object-database substrate it runs on and
models of the two systems it is compared against (Ode, ADAM).

Quick start::

    from repro import Sentinel, Reactive, event_method

    class Stock(Reactive):
        def __init__(self, symbol, price):
            super().__init__()
            self.symbol = symbol
            self.price = price

        @event_method            # end-of-method event generator
        def set_price(self, price):
            self.price = price

    with Sentinel() as sentinel:
        ibm = Stock("IBM", 120.0)
        sentinel.monitor(
            [ibm],
            on="end Stock::set_price(float price)",
            condition=lambda ctx: ctx.param("price") < 80,
            action=lambda ctx: print("time to buy", ctx.source.symbol),
        )
        ibm.set_price(75.0)      # -> time to buy IBM
"""

from .core import (
    Conjunction,
    Coupling,
    Disjunction,
    Event,
    EventDetector,
    EventOccurrence,
    ManualClock,
    Notifiable,
    ParameterContext,
    Primitive,
    Reactive,
    Rule,
    RuleContext,
    RuleScheduler,
    Sentinel,
    Sequence,
    class_rule,
    event_method,
    monitor,
    parse_event,
    parse_rule,
)
from .obs import CausalityTracer, MetricsRegistry, metrics, tracer
from .oodb import Database, ObjectNotFound, Oid, Persistent, TransactionAborted
from .obs.metrics import PipelineStats, pipeline_stats, reset_pipeline_stats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Sentinel",
    "Reactive",
    "Notifiable",
    "event_method",
    "class_rule",
    "monitor",
    "Rule",
    "RuleContext",
    "RuleScheduler",
    "Coupling",
    "Event",
    "Primitive",
    "Conjunction",
    "Disjunction",
    "Sequence",
    "EventDetector",
    "EventOccurrence",
    "ParameterContext",
    "ManualClock",
    "parse_event",
    "parse_rule",
    "Database",
    "Persistent",
    "Oid",
    "TransactionAborted",
    "ObjectNotFound",
    "PipelineStats",
    "pipeline_stats",
    "reset_pipeline_stats",
    "CausalityTracer",
    "MetricsRegistry",
    "metrics",
    "tracer",
]
