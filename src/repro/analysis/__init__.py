"""``repro.analysis`` — static analysis of a Sentinel rule base.

The runtime guards a mis-specified rule base with the scheduler's
cascade-depth limit; this package catches the same classes of mistake
*before* anything fires.  It extracts read/write/raise sets from rule
conditions and actions by ``ast`` inspection, builds the **triggering
graph** (rule → events its callables may raise → rules listening), and
reports potential non-termination, non-confluence, dead rules and
signature problems as findings with stable codes (SA001…), rendered as
text, JSON, SARIF or Graphviz DOT.

Entry points::

    report = sentinel.analyze()            # the Sentinel façade
    report = analyze(sentinel)             # the function underneath
    python -m repro.tools.analyze app.py   # the CLI / CI gate

The analyzer is **pure inspection**: it never fires a rule, never
notifies a consumer, never mutates the system it looks at (verified by
test).  Where extraction fails — builtins, C callables, unresolvable
names — it falls back to "unknown ⇒ may-trigger-anything" and says so
(SA030), preferring false alarms to false silence.
"""

from __future__ import annotations

from typing import Any

from .checks import run_checks
from .concurrency import run_concurrency_checks, static_order_edges
from .effects import (
    AttributeWrite,
    CallableEffects,
    MethodCall,
    extract_effects,
)
from .graph import Edge, RaiseSite, RuleNode, TriggeringGraph, build_graph
from .report import (
    FINDING_CODES,
    AnalysisReport,
    Finding,
    sort_findings,
)

__all__ = [
    "analyze",
    "AnalysisReport",
    "Finding",
    "FINDING_CODES",
    "sort_findings",
    "TriggeringGraph",
    "RuleNode",
    "RaiseSite",
    "Edge",
    "build_graph",
    "run_checks",
    "run_concurrency_checks",
    "static_order_edges",
    "AttributeWrite",
    "CallableEffects",
    "MethodCall",
    "extract_effects",
]


def analyze(
    system: Any, registry: Any = None, concurrency: bool = False
) -> AnalysisReport:
    """Statically analyze a system's rule base.

    ``system`` is a :class:`~repro.core.system.Sentinel`, any object with
    an iterable ``rules`` attribute, or a plain iterable of rules.
    ``registry`` defaults to the process-wide class registry.  With
    ``concurrency=True`` the SA1xx concurrency-hazard family (lost
    update, lock-order inversion, write-skew, blocking calls under 2PL
    locks, non-thread-safe APIs from worker threads) runs as well.
    Returns an :class:`AnalysisReport` with the triggering graph and
    ordered findings; no rule fires and nothing is mutated.
    """
    graph = build_graph(system, registry)
    findings = run_checks(graph, registry)
    if concurrency:
        findings = sort_findings(
            findings + run_concurrency_checks(graph, registry)
        )
    return AnalysisReport(findings=findings, graph=graph)
