"""The analyses run over the triggering graph.

* **Termination (SA001)** — Tarjan SCC detection on the triggering
  graph.  Every non-trivial SCC (or self-loop) is a potential
  non-termination; the finding carries a concrete *cycle witness* — the
  shortest cycle through the component, e.g. ``A -> B -> A``.  Severity
  is ``error`` when the cycle is **unconditional** (every rule on it has
  no condition, is enabled, and every edge is definite) and ``warning``
  otherwise — a condition or a may-edge can break the loop at runtime.

* **Confluence (SA002)** — two enabled rules triggered by overlapping
  primitive events at the same priority whose write/write or read/write
  sets intersect: the final state depends on execution order, which the
  conflict-resolution policy leaves to FIFO tie-breaking.

* **Dead rules (SA010/SA011/SA012)** — rules none of whose primitive
  leaves any registered class can raise; Sequence composites whose first
  constituent is unraisable (the sequence can never complete); disabled
  rules nothing can ever enable.

* **Signature checks (SA020/SA021)** — conditions/actions that cannot
  be called with the single ``RuleContext`` argument; parameter names
  consulted (via ``ctx.param(...)`` or DSL bare names) that no
  triggering event binds.

* **Opacity (SA030)** — callables whose effects could not be extracted;
  these run under the conservative may-trigger-anything fallback, and
  the note makes that visible.

All analyses are pure functions of the graph — nothing here fires rules
or mutates the system.
"""

from __future__ import annotations

import builtins
import inspect
from collections import deque
from typing import Any, Iterable

from ..core.events.base import Event
from ..core.events.operators import Sequence
from ..core.events.primitive import Primitive
from ..core.interface import EventSpec, raised_event_registry
from ..core.occurrence import EventModifier
from .effects import DSL_ENV_NAMES
from .graph import RuleNode, TriggeringGraph
from .report import Finding, sort_findings

__all__ = ["run_checks"]

_BUILTIN_NAMES = frozenset(dir(builtins))


def run_checks(graph: TriggeringGraph, registry: Any = None) -> list[Finding]:
    """Run every analysis; findings come back most-severe first."""
    if registry is None:
        from ..oodb.schema import global_registry

        registry = global_registry
    table = raised_event_registry(registry)
    findings: list[Finding] = []
    findings.extend(_check_termination(graph))
    findings.extend(_check_confluence(graph, registry))
    findings.extend(_check_dead_rules(graph, registry, table))
    findings.extend(_check_signatures(graph, registry))
    findings.extend(_check_opacity(graph))
    return sort_findings(findings)


# ----------------------------------------------------------------------
# SA001: termination
# ----------------------------------------------------------------------

def _check_termination(graph: TriggeringGraph) -> list[Finding]:
    adjacency = graph.adjacency()
    findings: list[Finding] = []
    for component in _tarjan_sccs(adjacency):
        is_cycle = len(component) > 1 or (
            component[0] in adjacency[component[0]]
        )
        if not is_cycle:
            continue
        witness = _cycle_witness(component, adjacency)
        unconditional = _cycle_is_unconditional(witness, graph)
        severity = "error" if unconditional else "warning"
        start = graph.nodes[witness[0]]
        qualifier = (
            "unconditional cycle"
            if unconditional
            else "cycle (conditional or via may-edges)"
        )
        findings.append(
            Finding(
                code="SA001",
                severity=severity,
                message=(
                    f"potential non-termination: {qualifier} "
                    f"{' -> '.join(witness)}"
                ),
                rule=witness[0],
                file=start.action_effects.file,
                line=start.action_effects.line,
                witness=tuple(witness),
            )
        )
    return findings


def _tarjan_sccs(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components, iterative Tarjan, deterministic."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in sorted(adjacency):
        if root in index_of:
            continue
        work: list[tuple[str, Iterable[str]]] = [
            (root, iter(sorted(adjacency[root])))
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def _cycle_witness(
    component: list[str], adjacency: dict[str, set[str]]
) -> list[str]:
    """The shortest cycle through the component's smallest-named rule.

    BFS within the component from its lexicographically first member
    back to itself; the result is closed (first == last), e.g.
    ``["A", "B", "A"]``.
    """
    members = set(component)
    start = component[0]
    if start in adjacency[start]:
        return [start, start]
    parents: dict[str, str] = {}
    queue: deque[str] = deque([start])
    visited: set[str] = {start}
    while queue:
        node = queue.popleft()
        for succ in sorted(adjacency[node] & members):
            if succ == start:
                path = [node]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return path + [start]
            if succ not in visited:
                visited.add(succ)
                parents[succ] = node
                queue.append(succ)
    return component + [component[0]]  # pragma: no cover - defensive


def _cycle_is_unconditional(
    witness: list[str], graph: TriggeringGraph
) -> bool:
    """True when nothing at runtime can break the cycle."""
    for name in witness[:-1]:
        node = graph.nodes[name]
        if node.rule.condition is not None or not node.rule.enabled:
            return False
    for src, dst in zip(witness, witness[1:]):
        edge = graph.edge_between(src, dst)
        if edge is None or not edge.definite:
            return False
    return True


# ----------------------------------------------------------------------
# SA002: confluence
# ----------------------------------------------------------------------

def _check_confluence(
    graph: TriggeringGraph, registry: Any
) -> list[Finding]:
    findings: list[Finding] = []
    nodes = sorted(graph.nodes.values(), key=lambda n: n.name)
    for i, first in enumerate(nodes):
        for second in nodes[i + 1:]:
            if first.rule.priority != second.rule.priority:
                continue
            if not (first.rule.enabled and second.rule.enabled):
                continue
            trigger = _common_trigger(first, second, registry)
            if trigger is None:
                continue
            conflicts = _data_conflicts(first, second)
            if not conflicts:
                continue
            findings.append(
                Finding(
                    code="SA002",
                    severity="warning",
                    message=(
                        f"potential non-confluence: {first.name!r} and "
                        f"{second.name!r} both trigger on {trigger} at "
                        f"priority {first.rule.priority} and touch "
                        f"{_render_conflicts(conflicts)}; their outcome "
                        "is order-dependent"
                    ),
                    rule=first.name,
                    file=first.action_effects.file,
                    line=first.action_effects.line,
                )
            )
    return findings


def _common_trigger(
    first: RuleNode, second: RuleNode, registry: Any
) -> str | None:
    """A primitive event both rules can be triggered by, if any."""
    for a in first.signatures:
        for b in second.signatures:
            if a.modifier is not b.modifier:
                continue
            if a.method.lower() != b.method.lower():
                continue
            if _families_overlap(a.class_name, b.class_name, registry):
                return str(a)
    return None


def _families_overlap(first: str, second: str, registry: Any) -> bool:
    if first.lower() == second.lower():
        return True
    fam_a = _family_lower(registry, first)
    fam_b = _family_lower(registry, second)
    return bool(fam_a & fam_b)


def _family_lower(registry: Any, class_name: str) -> set[str]:
    if class_name in registry:
        return {n.lower() for n in registry.family(class_name)}
    lowered = class_name.lower()
    for name in registry.names():
        if name.lower() == lowered:
            return {n.lower() for n in registry.family(name)}
    return {lowered}


def _data_conflicts(
    first: RuleNode, second: RuleNode
) -> dict[str, set[str]]:
    """write/write and read/write attribute overlaps between two rules."""
    conflicts: dict[str, set[str]] = {}
    ww = first.all_writes() & second.all_writes()
    if ww:
        conflicts["write/write"] = ww
    rw = (first.all_reads() & second.all_writes()) | (
        second.all_reads() & first.all_writes()
    )
    if rw:
        conflicts["read/write"] = rw
    return conflicts


def _render_conflicts(conflicts: dict[str, set[str]]) -> str:
    parts = [
        f"{kind} on {', '.join(sorted(attrs))}"
        for kind, attrs in sorted(conflicts.items())
    ]
    return "; ".join(parts)


# ----------------------------------------------------------------------
# SA010 / SA011 / SA012: dead rules
# ----------------------------------------------------------------------

def _leaf_raisable(
    leaf: Event,
    registry: Any,
    table: dict[str, dict[str, EventSpec]],
) -> bool:
    """Can any registered class ever raise this primitive leaf?

    Non-primitive leaves (timers) and explicit-modifier leaves count as
    raisable — any method body may call ``raise_event`` — which keeps
    the check conservative (no false "dead" findings).
    """
    if not isinstance(leaf, Primitive):
        return True
    signature = leaf.signature
    if signature.modifier is EventModifier.EXPLICIT:
        return True
    family = _family_lower(registry, signature.class_name)
    method = signature.method.lower()
    for class_name, generators in table.items():
        if class_name.lower() not in family:
            continue
        for name, spec in generators.items():
            if name.lower() != method:
                continue
            if signature.modifier is EventModifier.BEGIN and spec.before:
                return True
            if signature.modifier is EventModifier.END and spec.after:
                return True
    return False


def _check_dead_rules(
    graph: TriggeringGraph,
    registry: Any,
    table: dict[str, dict[str, EventSpec]],
) -> list[Finding]:
    findings: list[Finding] = []
    any_opaque_action = any(
        node.action_effects.opaque for node in graph.nodes.values()
    )
    for node in sorted(graph.nodes.values(), key=lambda n: n.name):
        leaves = list(node.rule.event.leaves())
        raisable = [
            leaf for leaf in leaves if _leaf_raisable(leaf, registry, table)
        ]
        if leaves and not raisable:
            described = ", ".join(
                str(leaf.signature)
                for leaf in leaves
                if isinstance(leaf, Primitive)
            )
            findings.append(
                Finding(
                    code="SA010",
                    severity="warning",
                    message=(
                        f"dead rule: no reactive class raises any of its "
                        f"triggering events ({described})"
                    ),
                    rule=node.name,
                )
            )
        findings.extend(_check_sequences(node, registry, table))
        if not node.rule.enabled and not any_opaque_action:
            if not _someone_enables(graph, registry):
                findings.append(
                    Finding(
                        code="SA012",
                        severity="note",
                        message=(
                            "permanently disabled: the rule is disabled "
                            "and no rule's action calls enable()"
                        ),
                        rule=node.name,
                    )
                )
    return findings


def _check_sequences(
    node: RuleNode,
    registry: Any,
    table: dict[str, dict[str, EventSpec]],
) -> list[Finding]:
    findings: list[Finding] = []
    for event in node.rule.event.walk():
        if not isinstance(event, Sequence):
            continue
        children = event.children()
        if not children:
            continue
        head = children[0]
        head_leaves = list(head.leaves())
        if head_leaves and not any(
            _leaf_raisable(leaf, registry, table) for leaf in head_leaves
        ):
            findings.append(
                Finding(
                    code="SA011",
                    severity="warning",
                    message=(
                        f"unreachable sequence: first constituent of "
                        f"{event.name!r} can never be raised, so the "
                        "sequence never completes"
                    ),
                    rule=node.name,
                )
            )
    return findings


def _someone_enables(graph: TriggeringGraph, registry: Any) -> bool:
    """Does any rule's condition/action call an ``enable`` method that
    could reach a Rule object?"""
    rule_family = _family_lower(registry, "Rule")
    for node in graph.nodes.values():
        for site in node.raise_sites:
            if site.method.lower() != "enable":
                continue
            if site.class_name is None:
                return True
            if site.class_name.lower() in rule_family:
                return True
    return False


# ----------------------------------------------------------------------
# SA020 / SA021: signatures and parameters
# ----------------------------------------------------------------------

def _check_signatures(
    graph: TriggeringGraph, registry: Any
) -> list[Finding]:
    findings: list[Finding] = []
    for node in sorted(graph.nodes.values(), key=lambda n: n.name):
        for role, fn in (
            ("condition", node.rule.condition),
            ("action", node.rule.action),
        ):
            problem = _arity_problem(fn)
            if problem is not None:
                findings.append(
                    Finding(
                        code="SA020",
                        severity="error",
                        message=f"bad {role} arity: {problem}",
                        rule=node.name,
                    )
                )
        findings.extend(_check_parameters(node, registry))
    return findings


def _arity_problem(fn: Any) -> str | None:
    """Why ``fn(ctx)`` would raise TypeError, or None if it is fine."""
    if fn is None or not callable(fn):
        return None if fn is None else "not callable"
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return None  # C callables: assume fine
    try:
        signature.bind(object())
    except TypeError:
        expected = ", ".join(
            p.name for p in signature.parameters.values()
        )
        return (
            f"must accept exactly one positional RuleContext argument, "
            f"but its signature is ({expected})"
        )
    return None


def _available_parameters(node: RuleNode, registry: Any) -> set[str] | None:
    """Parameter names the rule's triggering occurrences can bind.

    Union over every primitive leaf of (a) the signature's declared
    parameter names and (b) the Python parameter names of the matching
    methods across the leaf class's family — the occurrence binds the
    *method's* actual parameters, whatever the signature text declares.
    Returns None ("anything possible") for explicit leaves and rules
    with timer leaves, disabling the check.
    """
    available: set[str] = set()
    for tree_node in node.rule.event.walk():
        # Time-driven operators (Periodic/At/Plus) synthesize occurrence
        # parameters — e.g. Periodic's ``tick`` — that no signature
        # declares; their presence makes the check unsound.
        if hasattr(tree_node, "poll") and not isinstance(tree_node, Primitive):
            return None
    for leaf in node.rule.event.leaves():
        if not isinstance(leaf, Primitive):
            return None
        signature = leaf.signature
        if signature.modifier is EventModifier.EXPLICIT:
            return None
        available.update(signature.param_names)
        for class_name in sorted(_family_lower(registry, signature.class_name)):
            resolved = _lookup_class(registry, class_name)
            if resolved is None:
                continue
            method = getattr(resolved, signature.method, None)
            if method is None:
                lowered = signature.method.lower()
                for attr in dir(resolved):
                    if attr.lower() == lowered:
                        method = getattr(resolved, attr)
                        break
            if method is None:
                continue
            try:
                method_signature = inspect.signature(method)
            except (TypeError, ValueError):
                return None
            names = [
                p.name
                for p in method_signature.parameters.values()
                if p.name != "self"
            ]
            if any(
                p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
                for p in method_signature.parameters.values()
            ):
                return None
            available.update(names)
    return available


def _lookup_class(registry: Any, class_name: str) -> type | None:
    for name in registry.names():
        if name.lower() == class_name.lower():
            resolved: type = registry.get(name)
            return resolved
    return None


def _check_parameters(node: RuleNode, registry: Any) -> list[Finding]:
    findings: list[Finding] = []
    available = _available_parameters(node, registry)
    if available is None:
        return findings
    for role, fn, effects in (
        ("condition", node.rule.condition, node.condition_effects),
        ("action", node.rule.action, node.action_effects),
    ):
        if fn is None:
            continue
        unknown = {
            name for name in effects.param_reads
            if name != "*" and name not in available
        }
        if _is_dsl(fn):
            unknown |= (
                effects.free_names()
                - DSL_ENV_NAMES
                - _BUILTIN_NAMES
                - available
            )
        if unknown:
            findings.append(
                Finding(
                    code="SA021",
                    severity="warning",
                    message=(
                        f"{role} references unknown event parameter(s) "
                        f"{sorted(unknown)}; the triggering events bind "
                        f"{sorted(available) or 'no parameters'}"
                    ),
                    rule=node.name,
                )
            )
    return findings


def _is_dsl(fn: Any) -> bool:
    return type(fn).__name__ in ("CompiledCondition", "CompiledAction")


# ----------------------------------------------------------------------
# SA030: opacity
# ----------------------------------------------------------------------

def _check_opacity(graph: TriggeringGraph) -> list[Finding]:
    findings: list[Finding] = []
    for node in sorted(graph.nodes.values(), key=lambda n: n.name):
        for role, effects in (
            ("condition", node.condition_effects),
            ("action", node.action_effects),
        ):
            if not effects.opaque:
                continue
            reasons = "; ".join(effects.opaque_reasons) or "unknown reason"
            fallback = (
                " (conservative may-trigger-anything fallback applied)"
                if role == "action"
                else ""
            )
            findings.append(
                Finding(
                    code="SA030",
                    severity="note",
                    message=(
                        f"opaque {role}: effects not extracted — "
                        f"{reasons}{fallback}"
                    ),
                    rule=node.name,
                    file=effects.file,
                    line=effects.line,
                )
            )
    return findings
