"""Concurrency hazard analyses (SA1xx) over the triggering graph.

PR 9 made the engine multi-threaded: strict-2PL writers, MVCC snapshot
reads, and decoupled rules on a worker pool.  The SA0xx analyses reason
about a single-threaded world; this module layers the *execution model*
on top of the same effects/graph machinery:

* **immediate/deferred** rules run inline, inside the triggering
  transaction — they execute while that transaction's 2PL locks are
  held, and their writes are serialized by those locks;
* **decoupled** rules run post-commit in their *own* transaction on a
  :class:`~repro.core.workers.RuleWorkerPool` thread — two decoupled
  rules triggered by the same commit genuinely race, and priority does
  not order them (the pool is a FIFO over independent workers).

The checks:

* **SA100 lost update** — two enabled decoupled rules share a trigger
  and write the same source attribute.  This is SA002's non-confluence
  upgraded to a true race: under the pool both actions run in concurrent
  transactions, and a read-modify-write on each side means one update
  can be computed from a stale read and silently overwrite the other.
* **SA101 lock-order inversion** — per rule, the *ordered* sequence of
  object families its condition+action touch (ordered attribute writes
  plus typed method calls, by statement line); two rules that order two
  families oppositely are a deadlock-retry hotspot under 2PL.  The same
  edge relation is exported via :func:`static_order_edges` so the
  runtime lockdep sanitizer's observed graph can be cross-validated
  against it (``tools.analyze --lockdep-graph``).
* **SA102 write-skew** — rule A's condition reads attribute X and its
  action writes Y while rule B guards on Y and writes X, with disjoint
  write sets.  Under MVCC snapshot reads both guards can pass on the
  same snapshot and both writes commit — the classic write-skew anomaly
  2PL-with-snapshot-reads does not exclude.
* **SA103 blocking call under locks** — an immediate/deferred rule calls
  ``time.sleep``, an HTTP/socket/subprocess API, or ``RuleClient``
  while the triggering transaction holds its 2PL locks, stretching every
  lock's hold time (and, for a ``RuleClient`` call back into the same
  server, risking self-deadlock — that one is an error).
* **SA104 non-thread-safe API** — a decoupled action (worker thread)
  calls an engine API documented single-threaded (``Sentinel`` rule-base
  mutation, ``Rule.update``).

Everything here is pure inspection, like the rest of the package: no
rule fires, nothing is mutated.
"""

from __future__ import annotations

from typing import Any

from ..core.coupling import Coupling
from .checks import _common_trigger, _family_lower
from .effects import SOURCE_RECEIVER, UNKNOWN_RECEIVER, CallableEffects
from .graph import RuleNode, TriggeringGraph, _registry_name, _source_classes
from .report import Finding, sort_findings

__all__ = [
    "run_concurrency_checks",
    "static_order_edges",
    "BLOCKING_APIS",
    "NON_THREAD_SAFE_APIS",
]

#: Dotted-prefix → reason for SA103.  A recorded external call matches
#: when its ``receiver.method`` name starts with the prefix.
BLOCKING_APIS: dict[str, str] = {
    "time.sleep": "sleeps while holding locks",
    "socket.": "raw network I/O",
    "urllib.": "HTTP round-trip",
    "http.": "HTTP round-trip",
    "requests.": "HTTP round-trip",
    "subprocess.": "spawns a process",
    "smtplib.": "SMTP round-trip",
    "ftplib.": "FTP round-trip",
    "RuleClient.": "re-entrant HTTP call back into the rule server",
}

#: Class → methods that mutate shared engine state without locking and
#: are documented single-threaded (SA104 when called from a decoupled,
#: i.e. worker-thread, action).
NON_THREAD_SAFE_APIS: dict[str, frozenset[str]] = {
    "Sentinel": frozenset(
        {
            "create_rule",
            "create_event",
            "rule_from_spec",
            "load_rules",
            "adopt_class_rules",
            "monitor",
            "enable_worker_pool",
            "disable_worker_pool",
            "enable_telemetry",
            "enable_audit",
            "enable_slow_log",
            "serve_metrics",
            "system_monitor",
            "close",
        }
    ),
    "Rule": frozenset({"update"}),
}


def run_concurrency_checks(
    graph: TriggeringGraph, registry: Any = None
) -> list[Finding]:
    """Run the SA1xx analyses; findings come back most-severe first."""
    if registry is None:
        from ..oodb.schema import global_registry

        registry = global_registry
    findings: list[Finding] = []
    findings.extend(_check_lost_update(graph, registry))
    findings.extend(_check_lock_order(graph, registry))
    findings.extend(_check_write_skew(graph, registry))
    findings.extend(_check_blocking_calls(graph))
    findings.extend(_check_thread_safety(graph))
    return sort_findings(findings)


# ----------------------------------------------------------------------
# Execution model
# ----------------------------------------------------------------------

def _runs_inline(node: RuleNode) -> bool:
    """True when the rule executes inside the triggering transaction."""
    return node.rule.coupling in (Coupling.IMMEDIATE, Coupling.DEFERRED)


def _runs_decoupled(node: RuleNode) -> bool:
    """True when the rule executes post-commit on a worker thread."""
    return node.rule.coupling is Coupling.DECOUPLED


def _enabled_pairs(
    graph: TriggeringGraph,
) -> list[tuple[RuleNode, RuleNode]]:
    nodes = sorted(
        (n for n in graph.nodes.values() if n.rule.enabled),
        key=lambda n: n.name,
    )
    return [
        (first, second)
        for i, first in enumerate(nodes)
        for second in nodes[i + 1:]
    ]


# ----------------------------------------------------------------------
# SA100: lost update
# ----------------------------------------------------------------------

def _check_lost_update(
    graph: TriggeringGraph, registry: Any
) -> list[Finding]:
    findings: list[Finding] = []
    for first, second in _enabled_pairs(graph):
        if not (_runs_decoupled(first) and _runs_decoupled(second)):
            continue
        trigger = _common_trigger(first, second, registry)
        if trigger is None:
            continue
        overlap = first.all_writes() & second.all_writes()
        if not overlap:
            continue
        stale_rmw = sorted(
            attr
            for attr in overlap
            if attr in first.all_reads() and attr in second.all_reads()
        )
        detail = (
            f" (both read-modify-write {', '.join(stale_rmw)}: each side "
            "can compute from a stale read)"
            if stale_rmw
            else ""
        )
        priority_note = (
            "equal priority does not serialize them"
            if first.rule.priority == second.rule.priority
            else "priority does not order decoupled executions"
        )
        findings.append(
            Finding(
                code="SA100",
                severity="warning",
                message=(
                    f"potential lost update: decoupled rules "
                    f"{first.name!r} and {second.name!r} both trigger on "
                    f"{trigger} and write "
                    f"{', '.join(sorted(overlap))} from concurrent "
                    f"worker transactions; {priority_note}{detail}"
                ),
                rule=first.name,
                file=first.action_effects.file,
                line=first.action_effects.line,
                witness=(first.name, second.name),
            )
        )
    return findings


# ----------------------------------------------------------------------
# SA101: lock-order inversion
# ----------------------------------------------------------------------

def _family_key(registry: Any, class_name: str) -> str:
    """Canonical registry name for a class (the lock-class key)."""
    resolved = _registry_name(registry, class_name)
    return resolved if resolved is not None else class_name


def _ordered_families(
    node: RuleNode, registry: Any
) -> list[tuple[str, int, str]]:
    """Families the rule touches, first-occurrence order.

    Each entry is ``(family, line, label)``; the sequence is condition
    touches first (conditions run before actions), then action touches,
    each sorted by statement line.  ``"source"`` receivers expand to the
    rule's source classes.
    """
    source_keys = sorted(
        _family_key(registry, name)
        for name in _source_classes(node.signatures, registry)
    )

    def touches(effects: CallableEffects) -> list[tuple[int, str, str]]:
        raw: list[tuple[int, str, str]] = []
        for write in effects.attr_writes:
            keys = (
                source_keys
                if write.receiver == SOURCE_RECEIVER
                else [_family_key(registry, write.receiver)]
            )
            for key in keys:
                raw.append(
                    (write.line or 0, key, f"{write.receiver}.{write.attr}")
                )
        for call in effects.calls:
            if call.receiver in (UNKNOWN_RECEIVER, "Rule"):
                continue
            keys = (
                source_keys
                if call.receiver == SOURCE_RECEIVER
                else [_family_key(registry, call.receiver)]
            )
            for key in keys:
                raw.append(
                    (call.line or 0, key, f"{call.receiver}.{call.method}()")
                )
        raw.sort(key=lambda t: t[0])
        return raw

    ordered: list[tuple[str, int, str]] = []
    seen: set[str] = set()
    for line, key, label in (
        touches(node.condition_effects) + touches(node.action_effects)
    ):
        lowered = key.lower()
        if lowered in seen:
            continue
        seen.add(lowered)
        ordered.append((key, line, label))
    return ordered


def static_order_edges(
    graph: TriggeringGraph, registry: Any = None
) -> set[tuple[str, str]]:
    """The static lock-order relation: ``(X, Y)`` when some rule touches
    family X before family Y.

    Keys are canonical registry class names, matching the runtime
    lockdep recorder's ``_p_class_name`` keys, so the observed runtime
    graph can be compared edge-for-edge (case-insensitively) against
    this set.
    """
    if registry is None:
        from ..oodb.schema import global_registry

        registry = global_registry
    edges: set[tuple[str, str]] = set()
    for node in graph.nodes.values():
        if not node.rule.enabled:
            continue
        order = [entry[0] for entry in _ordered_families(node, registry)]
        for i, earlier in enumerate(order):
            for later in order[i + 1:]:
                edges.add((earlier, later))
    return edges


def _check_lock_order(
    graph: TriggeringGraph, registry: Any
) -> list[Finding]:
    findings: list[Finding] = []
    orders = {
        node.name: _ordered_families(node, registry)
        for node in graph.nodes.values()
        if node.rule.enabled
    }
    for first, second in _enabled_pairs(graph):
        a_order = orders[first.name]
        b_order = orders[second.name]
        if len(a_order) < 2 or len(b_order) < 2:
            continue
        b_pos = {
            fam.lower(): index for index, (fam, _, _) in enumerate(b_order)
        }
        witness: tuple[tuple[str, int, str], tuple[str, int, str]] | None
        witness = None
        for i, x in enumerate(a_order):
            for y in a_order[i + 1:]:
                xi = b_pos.get(x[0].lower())
                yi = b_pos.get(y[0].lower())
                if xi is not None and yi is not None and yi < xi:
                    witness = (x, y)
                    break
            if witness:
                break
        if witness is None:
            continue
        x, y = witness
        findings.append(
            Finding(
                code="SA101",
                severity="warning",
                message=(
                    f"lock-order inversion: {first.name!r} touches "
                    f"{x[0]} (line {x[1]}, {x[2]}) before {y[0]} "
                    f"(line {y[1]}, {y[2]}) while {second.name!r} "
                    f"touches them in the opposite order; opposite 2PL "
                    "acquisition orders are a deadlock-retry hotspot"
                ),
                rule=first.name,
                file=first.action_effects.file,
                line=first.action_effects.line,
                witness=(first.name, second.name, x[0], y[0]),
            )
        )
    return findings


# ----------------------------------------------------------------------
# SA102: write-skew
# ----------------------------------------------------------------------

def _check_write_skew(
    graph: TriggeringGraph, registry: Any
) -> list[Finding]:
    findings: list[Finding] = []
    for first, second in _enabled_pairs(graph):
        if first.all_writes() & second.all_writes():
            continue  # overlapping writes are SA002/SA100 territory
        a_guard = first.condition_effects.reads
        b_guard = second.condition_effects.reads
        a_writes = first.all_writes()
        b_writes = second.all_writes()
        xs = sorted(a_guard & b_writes)
        ys = sorted(b_guard & a_writes)
        pair = next(
            ((x, y) for x in xs for y in ys if x != y),
            None,
        )
        if pair is None:
            continue
        x, y = pair
        findings.append(
            Finding(
                code="SA102",
                severity="warning",
                message=(
                    f"potential write-skew: {first.name!r} guards on "
                    f"{x!r} and writes {y!r} while {second.name!r} "
                    f"guards on {y!r} and writes {x!r}; under snapshot "
                    "reads both guards can pass on the same snapshot "
                    "and both writes commit"
                ),
                rule=first.name,
                file=first.condition_effects.file,
                line=first.condition_effects.line,
                witness=(first.name, second.name, x, y),
            )
        )
    return findings


# ----------------------------------------------------------------------
# SA103: blocking call while holding 2PL locks
# ----------------------------------------------------------------------

def _blocking_reason(receiver: str, method: str) -> str | None:
    dotted = f"{receiver}.{method}"
    for prefix, reason in BLOCKING_APIS.items():
        if dotted.startswith(prefix):
            return reason
    return None


def _check_blocking_calls(graph: TriggeringGraph) -> list[Finding]:
    findings: list[Finding] = []
    for node in sorted(graph.nodes.values(), key=lambda n: n.name):
        if not node.rule.enabled or not _runs_inline(node):
            continue
        coupling = node.rule.coupling.value
        for role, effects in (
            ("condition", node.condition_effects),
            ("action", node.action_effects),
        ):
            for call in effects.ext_calls:
                reason = _blocking_reason(call.receiver, call.method)
                if reason is None:
                    continue
                reentrant = call.receiver.startswith("RuleClient")
                findings.append(
                    Finding(
                        code="SA103",
                        severity="error" if reentrant else "warning",
                        message=(
                            f"blocking call "
                            f"{call.receiver}.{call.method}() in the "
                            f"{role} of {coupling} rule {node.name!r}: "
                            f"{reason} while the triggering transaction "
                            "holds its 2PL locks"
                        ),
                        rule=node.name,
                        file=effects.file,
                        line=call.line,
                        witness=(node.name, f"{call.receiver}.{call.method}"),
                    )
                )
    return findings


# ----------------------------------------------------------------------
# SA104: non-thread-safe API from a decoupled action
# ----------------------------------------------------------------------

def _check_thread_safety(graph: TriggeringGraph) -> list[Finding]:
    findings: list[Finding] = []
    for node in sorted(graph.nodes.values(), key=lambda n: n.name):
        if not node.rule.enabled or not _runs_decoupled(node):
            continue
        for role, effects in (
            ("condition", node.condition_effects),
            ("action", node.action_effects),
        ):
            for call in effects.ext_calls + effects.calls:
                unsafe = NON_THREAD_SAFE_APIS.get(call.receiver)
                if unsafe is None or call.method not in unsafe:
                    continue
                findings.append(
                    Finding(
                        code="SA104",
                        severity="warning",
                        message=(
                            f"non-thread-safe API: decoupled rule "
                            f"{node.name!r} calls "
                            f"{call.receiver}.{call.method}() from its "
                            f"{role} on a worker thread; "
                            f"{call.receiver} mutation APIs are "
                            "documented single-threaded"
                        ),
                        rule=node.name,
                        file=effects.file,
                        line=call.line,
                        witness=(node.name, f"{call.receiver}.{call.method}"),
                    )
                )
    return findings
