"""Read/write/raise-set extraction from rule conditions and actions.

The static analyzer needs to know, without running anything, what a rule's
condition and action *can do*: which attributes they read and write on the
triggering object, which reactive methods they invoke (each such call may
raise the method's begin/end events), which events they raise explicitly
via ``raise_event``, and which triggering parameters they consult.

Extraction is by ``ast`` inspection of the callable's source:

* plain functions and lambdas — the defining module is re-parsed and the
  matching ``FunctionDef``/``Lambda`` node located by its compiled first
  line number.  Several lambdas on one line are told apart by column:
  the code object's instruction positions (``co_positions``, 3.11+) must
  all fall inside the candidate node's column span.  When no unique
  candidate survives (or the interpreter has no column data) the
  same-line candidates are *unioned*, which is conservative but sound;
* DSL conditions/actions (:class:`~repro.core.dsl.CompiledCondition` /
  :class:`~repro.core.dsl.CompiledAction`) — their stored source text is
  parsed directly, with the DSL environment names (``ctx``, ``self``,
  ``occurrence``, ...) bound per :func:`repro.core.dsl._build_env`;
* bound methods and ``functools.partial`` wrappers are unwrapped;
* anything without reachable Python source — builtins, C extension
  callables, callables whose module file is gone — is marked **opaque**.

**Conservatism.**  An opaque callable "may do anything": the graph layer
turns an opaque *action* into may-trigger edges to every rule (the
documented "unknown ⇒ may-trigger-anything" fallback), and every opaque
callable is surfaced as an SA030 note.  Calls to names that cannot be
resolved through the callable's globals/closure/builtins also mark the
effects opaque.  Resolvable helper functions are followed (depth-limited)
and their effects merged in.

Everything here is pure inspection: no rule is fired, no object mutated.
"""

from __future__ import annotations

import ast
import builtins
import functools
import inspect
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "AttributeWrite",
    "CallableEffects",
    "MethodCall",
    "extract_effects",
    "DSL_ENV_NAMES",
]

#: Names the DSL evaluation environment injects (see ``dsl._build_env``),
#: in addition to the triggering parameters.
DSL_ENV_NAMES = frozenset(
    {"ctx", "self", "occurrence", "result", "sources", "abort", "rule"}
)

#: Receiver classifications for :class:`MethodCall`.
SOURCE_RECEIVER = "source"
UNKNOWN_RECEIVER = "unknown"

_MAX_HELPER_DEPTH = 4


@dataclass(frozen=True, slots=True)
class MethodCall:
    """One method invocation found in a condition/action body.

    ``receiver`` is ``"source"`` (the triggering object or an alias of
    it), a concrete reactive class name (the receiver resolved through
    the callable's globals/closure to a known instance or class), or
    ``"unknown"``.
    """

    method: str
    receiver: str
    line: int | None = None


@dataclass(frozen=True, slots=True)
class AttributeWrite:
    """One attribute store/delete, in statement order.

    ``receiver`` is ``"source"`` or a concrete reactive class name —
    untyped receivers are not recorded (the unordered ``writes`` set
    already covers the triggering source conservatively).  The ordered
    list feeds the lock-order analysis (SA101), which needs to know
    *which object family is touched first*.
    """

    receiver: str
    attr: str
    line: int | None = None


@dataclass(slots=True)
class CallableEffects:
    """What one condition/action callable may read, write, call and raise."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    calls: list[MethodCall] = field(default_factory=list)
    #: Attribute stores in statement order (lock-order analysis input).
    attr_writes: list[AttributeWrite] = field(default_factory=list)
    #: Calls whose receiver resolved to something *outside* the reactive
    #: world — a module (``time.sleep`` → receiver ``"time"``) or a
    #: non-reactive class instance (``client.post`` on a ``RuleClient``
    #: → receiver ``"RuleClient"``).  Consumed by the blocking-call and
    #: thread-safety analyses (SA103/SA104).
    ext_calls: list[MethodCall] = field(default_factory=list)
    #: Event names passed to ``raise_event``; ``"*"`` when dynamic.
    explicit_raises: set[str] = field(default_factory=set)
    #: Parameter names consulted via ``ctx.param("x")`` / ``ctx.params["x"]``.
    param_reads: set[str] = field(default_factory=set)
    #: Free names loaded in the body (DSL unknown-name check, SA021).
    name_refs: set[str] = field(default_factory=set)
    #: Names bound within the body (assignments, loop/lambda targets).
    bound_names: set[str] = field(default_factory=set)
    aborts: bool = False
    opaque: bool = False
    opaque_reasons: list[str] = field(default_factory=list)
    file: str | None = None
    line: int | None = None

    def merge(self, other: "CallableEffects") -> None:
        """Union ``other`` into this effects set (helper-call merging)."""
        self.reads |= other.reads
        self.writes |= other.writes
        self.calls.extend(other.calls)
        self.attr_writes.extend(other.attr_writes)
        self.ext_calls.extend(other.ext_calls)
        self.explicit_raises |= other.explicit_raises
        self.param_reads |= other.param_reads
        self.aborts = self.aborts or other.aborts
        if other.opaque:
            self.opaque = True
            self.opaque_reasons.extend(other.opaque_reasons)

    def free_names(self) -> set[str]:
        """Loaded names never bound in the body (candidate unknowns)."""
        return self.name_refs - self.bound_names


def extract_effects(fn: Any, _depth: int = 0) -> CallableEffects:
    """Extract the effects of one condition/action callable.

    Never raises on strange input: anything that cannot be analyzed comes
    back as an opaque :class:`CallableEffects` with the reason recorded.
    ``None`` (no condition / no action) yields empty effects.
    """
    if fn is None:
        return CallableEffects()
    # DSL-compiled conditions/actions carry their source text.
    mode = _dsl_mode(fn)
    if mode is not None:
        return _extract_from_dsl(fn.source, mode)
    if isinstance(fn, functools.partial):
        return extract_effects(fn.func, _depth)
    fn = inspect.unwrap(fn)
    underlying = getattr(fn, "__func__", fn)  # bound methods
    code = getattr(underlying, "__code__", None)
    if code is None:
        # A class instance with a Python __call__ is analyzable through it.
        call = getattr(type(fn), "__call__", None)
        if call is not None and getattr(call, "__code__", None) is not None:
            return extract_effects(call, _depth)
        return _opaque(
            f"no Python source for {type(fn).__name__} callable"
        )
    nodes, filename = _locate_nodes(underlying)
    if not nodes:
        name = getattr(underlying, "__qualname__", repr(underlying))
        return _opaque(f"source of {name!r} not found")
    effects = CallableEffects(file=filename, line=code.co_firstlineno)
    for node in nodes:
        visitor = _EffectsVisitor(
            effects,
            ctx_names=_ctx_param_names(node),
            fn=underlying,
            dsl=False,
            depth=_depth,
        )
        visitor.visit_body(node)
    return effects


# ----------------------------------------------------------------------
# Locating the AST of a live callable
# ----------------------------------------------------------------------

def _dsl_mode(fn: Any) -> str | None:
    """``"eval"``/``"exec"`` for DSL-compiled callables, else None."""
    # Imported lazily (and compared by name up the MRO) to keep this
    # module importable without triggering the DSL import chain.
    for cls in type(fn).__mro__:
        if cls.__name__ == "CompiledCondition":
            return "eval"
        if cls.__name__ == "CompiledAction":
            return "exec"
    return None


def _opaque(reason: str) -> CallableEffects:
    return CallableEffects(opaque=True, opaque_reasons=[reason])


def _locate_nodes(fn: Any) -> tuple[list[ast.AST], str | None]:
    """Find the AST node(s) compiled into ``fn`` by re-parsing its module.

    ``inspect.getsource`` fails on lambdas inside multi-line call
    expressions; parsing the whole module and matching on the compiled
    first line number does not.  Several lambda candidates on one line
    (two lambdas in one call) are narrowed down by the code object's
    instruction column positions; only when no unique candidate survives
    are all of them returned for the caller to union.
    """
    code = fn.__code__
    try:
        lines, _ = inspect.findsource(code)
    except (OSError, TypeError):
        return [], None
    try:
        tree = ast.parse("".join(lines))
    except (SyntaxError, ValueError):
        return [], None
    wanted: list[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda):
            if code.co_name == "<lambda>" and node.lineno == code.co_firstlineno:
                wanted.append(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name != code.co_name:
                continue
            start_lines = {node.lineno}
            # co_firstlineno of a decorated function points at the first
            # decorator on some interpreter versions; accept either.
            start_lines.update(d.lineno for d in node.decorator_list)
            if code.co_firstlineno in start_lines:
                wanted.append(node)
    if code.co_name == "<lambda>" and len(wanted) > 1:
        narrowed = _disambiguate_lambdas(code, wanted)
        if narrowed:
            wanted = narrowed
    return wanted, code.co_filename


def _disambiguate_lambdas(
    code: Any, candidates: list[ast.AST]
) -> list[ast.AST]:
    """Pick the one same-line lambda whose column span covers the code.

    ``co_positions`` (3.11+) yields a column range per instruction; every
    meaningful position of the compiled lambda must fall inside the AST
    node that produced it.  Zero-column positions are ignored — the
    ``RESUME`` prelude reports column 0 even for a lambda that starts
    mid-line.  Returns the unique surviving candidate, or ``[]`` when
    the interpreter has no column data / the spans stay ambiguous (the
    caller then keeps the conservative union).
    """
    positions = getattr(code, "co_positions", None)
    if positions is None:  # pragma: no cover - Python < 3.11
        return []
    spots: set[tuple[int, int]] = set()
    for lineno, _end_lineno, col, _end_col in positions():
        if lineno is not None and col is not None and col > 0:
            spots.add((lineno, col))
    if not spots:
        return []

    def contains(node: Any, spot: tuple[int, int]) -> bool:
        line, col = spot
        end_lineno = getattr(node, "end_lineno", None) or node.lineno
        end_col = getattr(node, "end_col_offset", None)
        if line < node.lineno or line > end_lineno:
            return False
        if line == node.lineno and col < node.col_offset:
            return False
        if line == end_lineno and end_col is not None and col > end_col:
            return False
        return True

    matches = [
        node
        for node in candidates
        if all(contains(node, spot) for spot in spots)
    ]
    return matches if len(matches) == 1 else []


def _ctx_param_names(node: ast.AST) -> set[str]:
    """The name(s) the callable binds its RuleContext argument to."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if positional:
            first = positional[0].arg
            # A method's first parameter is the receiver, the context is
            # second (rare for rule callables, but harmless to cover).
            if first == "self" and len(positional) > 1:
                return {positional[1].arg}
            return {first}
    return {"ctx"}


def _extract_from_dsl(source: str, mode: str) -> CallableEffects:
    """Effects of a DSL condition (eval) or action (exec) source string."""
    try:
        tree = ast.parse(source, mode=mode)
    except (SyntaxError, ValueError):
        return _opaque(f"unparseable DSL source {source!r}")
    effects = CallableEffects(line=None)
    visitor = _EffectsVisitor(
        effects, ctx_names={"ctx"}, fn=None, dsl=True, depth=0
    )
    body = tree.body if isinstance(tree, ast.Module) else [tree.body]
    for stmt in body:
        visitor.visit(stmt)
    return effects


# ----------------------------------------------------------------------
# The visitor
# ----------------------------------------------------------------------

class _EffectsVisitor(ast.NodeVisitor):
    """Walk a condition/action body collecting its effects.

    ``ctx_names`` are the names bound to the RuleContext;
    ``source_aliases`` tracks locals assigned from ``ctx.source`` (and,
    in DSL mode, the injected ``self``).  ``fn`` provides the
    globals/closure used to resolve free names to live objects.
    """

    def __init__(
        self,
        effects: CallableEffects,
        ctx_names: set[str],
        fn: Any,
        dsl: bool,
        depth: int,
    ) -> None:
        self.effects = effects
        self.ctx_names = set(ctx_names)
        self.source_aliases: set[str] = {"self"} if dsl else set()
        self.fn = fn
        self.dsl = dsl
        self.depth = depth

    # -- entry ----------------------------------------------------------
    def visit_body(self, node: ast.AST) -> None:
        if isinstance(node, ast.Lambda):
            self._bind_args(node.args)
            self.visit(node.body)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._bind_args(node.args)
            for stmt in node.body:
                self.visit(stmt)
        else:  # pragma: no cover - defensive
            self.visit(node)

    def _bind_args(self, args: ast.arguments) -> None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.effects.bound_names.add(arg.arg)

    # -- expression classification --------------------------------------
    def _is_ctx(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.ctx_names

    def _is_source(self, node: ast.AST) -> bool:
        """Does ``node`` denote the triggering source object?"""
        if isinstance(node, ast.Name):
            return node.id in self.source_aliases
        if isinstance(node, ast.Attribute):
            return node.attr == "source" and self._is_ctx(node.value)
        if isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Attribute):
                return value.attr == "sources" and self._is_ctx(value.value)
            if isinstance(value, ast.Name):
                return self.dsl and value.id == "sources"
        return False

    def _resolve(self, name: str) -> tuple[bool, Any]:
        """Look ``name`` up in the callable's globals, closure, builtins."""
        fn = self.fn
        if fn is not None:
            glob = getattr(fn, "__globals__", None)
            if glob is not None and name in glob:
                return True, glob[name]
            closure = getattr(fn, "__closure__", None)
            code = getattr(fn, "__code__", None)
            if closure and code is not None:
                for var, cell in zip(code.co_freevars, closure):
                    if var == name:
                        try:
                            return True, cell.cell_contents
                        except ValueError:
                            return False, None
        if hasattr(builtins, name):
            return True, getattr(builtins, name)
        return False, None

    def _receiver_of(self, node: ast.AST) -> str | None:
        """Classify a call/attribute receiver expression.

        Returns ``"source"``, a concrete reactive class name, ``"unknown"``
        for receivers we cannot type, or None when the receiver is a
        plainly non-reactive object (a module, a list, ...), which
        produces no raise site at all.
        """
        if self._is_source(node):
            return SOURCE_RECEIVER
        # ctx.rule (and the DSL's injected `rule`) is the Rule instance:
        # calls on it raise Rule's own enable/disable/fire events.
        if isinstance(node, ast.Attribute):
            if node.attr == "rule" and self._is_ctx(node.value):
                return "Rule"
        if isinstance(node, ast.Name):
            if self.dsl and node.id == "rule":
                return "Rule"
            if node.id in self.effects.bound_names:
                return UNKNOWN_RECEIVER
            found, obj = self._resolve(node.id)
            if found:
                cls = obj if isinstance(obj, type) else type(obj)
                if hasattr(cls, "_event_generators"):
                    return str(getattr(cls, "_p_class_name", cls.__name__))
                return None  # resolved, provably not reactive
            return UNKNOWN_RECEIVER
        return UNKNOWN_RECEIVER

    # -- reads and writes -----------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_source(node.value):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self.effects.writes.add(node.attr)
                self._record_attr_write(SOURCE_RECEIVER, node)
            else:
                self.effects.reads.add(node.attr)
        elif isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record_typed_attr_write(node)
        self.visit(node.value)

    def _record_attr_write(self, receiver: str, node: ast.Attribute) -> None:
        self.effects.attr_writes.append(
            AttributeWrite(receiver=receiver, attr=node.attr, line=node.lineno)
        )

    def _record_typed_attr_write(self, node: ast.Attribute) -> None:
        """Record ``obj.attr = ...`` when ``obj`` resolves to a reactive.

        Only concrete class names are kept — untyped receivers would make
        the ordered sequence meaninglessly noisy.
        """
        if not isinstance(node.value, ast.Name):
            return
        receiver = self._receiver_of(node.value)
        if receiver in (None, SOURCE_RECEIVER, UNKNOWN_RECEIVER, "Rule"):
            return
        self._record_attr_write(receiver, node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.effects.name_refs.add(node.id)
        else:
            self.effects.bound_names.add(node.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track `src = ctx.source` style aliases before visiting targets.
        if self._is_source(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.source_aliases.add(target.id)
        elif self._is_ctx(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.ctx_names.add(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `ctx.source.x += 1` both reads and writes x.
        target = node.target
        if isinstance(target, ast.Attribute) and self._is_source(target.value):
            self.effects.reads.add(target.attr)
            self.effects.writes.add(target.attr)
        # generic_visit reaches the target Attribute (Store ctx), which
        # records the ordered attribute write exactly once.
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ctx.params["x"] — a parameter read with a constant key.
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "params"
            and self._is_ctx(value.value)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            self.effects.param_reads.add(node.slice.value)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._bind_args(node.args)
        self.visit(node.body)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.effects.bound_names.add(node.name)
        self._bind_args(node.args)
        for stmt in node.body:
            self.visit(stmt)

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._attribute_call(node, func)
        elif isinstance(func, ast.Name):
            self._name_call(node, func)
        else:
            # Computed callee: f()() etc.  Conservative.
            self.effects.opaque = True
            self.effects.opaque_reasons.append(
                f"computed callee at line {node.lineno}"
            )
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def _attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        method = func.attr
        receiver_expr = func.value
        if self._is_ctx(receiver_expr):
            if method == "param":
                self._record_param_call(node)
            elif method == "abort":
                self.effects.aborts = True
            return
        if method == "abort" and self._is_source(receiver_expr):
            # ctx.source.abort() would be odd, but harmless to record.
            self.effects.aborts = True
        if method == "raise_event":
            self._record_raise_event(node)
            self.visit(receiver_expr)
            return
        receiver = self._receiver_of(receiver_expr)
        if receiver is not None:
            self.effects.calls.append(
                MethodCall(method=method, receiver=receiver, line=node.lineno)
            )
        if receiver in (None, UNKNOWN_RECEIVER):
            self._record_external_call(method, receiver_expr, node.lineno)
        # The receiver expression itself may read attributes
        # (obj.child.m() reads `child`).
        self.visit(receiver_expr)

    def _record_external_call(
        self, method: str, receiver_expr: ast.AST, line: int
    ) -> None:
        """Record a call whose receiver lives outside the reactive world.

        Walks a dotted receiver chain (``urllib.request.urlopen``) down to
        its base name, resolves it through the callable's scope, and
        records a module-dotted receiver (``"urllib.request"``) or the
        concrete type name of a non-reactive instance (``"RuleClient"``).
        Unresolvable receivers are skipped — the SA103/SA104 tables only
        match known names anyway.
        """
        parts: list[str] = []
        base: ast.AST = receiver_expr
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if not isinstance(base, ast.Name):
            return
        if base.id in self.effects.bound_names:
            return
        found, obj = self._resolve(base.id)
        if not found or obj is None:
            return
        if inspect.ismodule(obj):
            dotted = ".".join([obj.__name__, *reversed(parts)])
            self.effects.ext_calls.append(
                MethodCall(method=method, receiver=dotted, line=line)
            )
            return
        if parts:
            return  # attribute chain on a plain object: untypable
        cls = obj if isinstance(obj, type) else type(obj)
        if hasattr(cls, "_event_generators"):
            return  # reactive receivers are handled by ``calls``
        self.effects.ext_calls.append(
            MethodCall(method=method, receiver=cls.__name__, line=line)
        )

    def _record_param_call(self, node: ast.Call) -> None:
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                self.effects.param_reads.add(value)
                return
        self.effects.param_reads.add("*")

    def _record_raise_event(self, node: ast.Call) -> None:
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                self.effects.explicit_raises.add(value)
                return
        self.effects.explicit_raises.add("*")

    def _name_call(self, node: ast.Call, func: ast.Name) -> None:
        name = func.id
        self.effects.name_refs.add(name)
        if self.dsl and name == "abort":
            self.effects.aborts = True
            return
        if name in self.effects.bound_names:
            # Calling a local (a parameter, a nested def): its body, if a
            # nested def, is already visited in place; a callable passed
            # in as a parameter is unknowable.
            return
        found, obj = self._resolve(name)
        if not found:
            if not self.dsl:
                self.effects.opaque = True
                self.effects.opaque_reasons.append(
                    f"call to unresolved name {name!r} at line {node.lineno}"
                )
            return
        if obj is not None and not isinstance(obj, type) and callable(obj):
            # `from time import sleep; sleep(...)` — record the call
            # under its defining module so the blocking-call tables see
            # it regardless of import style.
            module = getattr(obj, "__module__", None)
            own = getattr(self.fn, "__module__", None)
            if module and module != "builtins" and module != own:
                self.effects.ext_calls.append(
                    MethodCall(
                        method=name, receiver=module, line=node.lineno
                    )
                )
        if obj is None or isinstance(obj, type):
            # Constructors and None-guards produce no events we model;
            # reactive constructors raise nothing (no generator wraps
            # __init__).
            return
        if inspect.isbuiltin(obj) or (
            getattr(obj, "__module__", None) == "builtins"
        ):
            return
        underlying = getattr(obj, "__func__", obj)
        if getattr(underlying, "__code__", None) is not None:
            self._follow_helper(underlying, name, node.lineno)
            return
        if callable(obj):
            self.effects.opaque = True
            self.effects.opaque_reasons.append(
                f"call to non-Python callable {name!r} at line {node.lineno}"
            )

    def _follow_helper(self, helper: Any, name: str, lineno: int) -> None:
        """Merge the effects of a resolvable helper function."""
        if self.depth >= _MAX_HELPER_DEPTH:
            self.effects.opaque = True
            self.effects.opaque_reasons.append(
                f"helper call chain too deep at {name!r} (line {lineno})"
            )
            return
        merged = extract_effects(helper, self.depth + 1)
        self.effects.merge(merged)
