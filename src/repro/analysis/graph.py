"""The triggering graph: which rule's action can trigger which rule.

A directed edge ``A -> B`` means: some event that rule A's condition or
action *may raise* matches a primitive leaf of rule B's event tree.  The
raises come from :mod:`repro.analysis.effects`; matching follows the
runtime semantics of :meth:`repro.core.events.signature.EventSignature.matches`:

* modifier must be equal (begin/end/explicit);
* method names compare case-insensitively after hyphen normalization;
* the raising class must be the leaf's class or one of its registered
  subclasses (``registry.family``), because a leaf declared on a base
  class matches occurrences produced by subclass instances.

Composite events (Sequence/Conjunction/Disjunction and the extended
operators) are flattened to their primitive leaves: raising *any* leaf of
a composite may advance its detection, so the edge is drawn.  That
over-approximates Sequence (raising only the second leaf cannot complete
it from scratch) — sound for termination analysis, noted in DESIGN.md.

Conservatism: a call whose receiver cannot be typed matches every class
that declares the method (``definite=False`` edges); an **opaque action**
draws may-trigger edges to every rule.  Subscription topology (which
instances a rule is subscribed to) is deliberately ignored — the graph
answers "could this trigger that, for *some* subscription", which is the
sound question for a lint.

Everything here is pure inspection: building the graph never fires a
rule, never notifies a consumer, never mutates an object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..core.events.primitive import Primitive
from ..core.events.signature import EventSignature, normalize_method_name
from ..core.interface import EventSpec, raised_event_registry
from ..core.occurrence import EventModifier
from .effects import (
    SOURCE_RECEIVER,
    UNKNOWN_RECEIVER,
    CallableEffects,
    MethodCall,
    extract_effects,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.rules import Rule

__all__ = [
    "Edge",
    "RaiseSite",
    "RuleNode",
    "TriggeringGraph",
    "build_graph",
]


@dataclass(frozen=True, slots=True)
class RaiseSite:
    """One primitive event a rule's condition/action may raise.

    ``class_name`` is None when the raising class is unknown (explicit
    raises with untyped receivers); ``definite`` is False when the site
    comes from an untyped receiver and so only *may* exist.
    """

    class_name: str | None
    method: str
    modifier: EventModifier
    definite: bool
    line: int | None = None

    def describe(self) -> str:
        owner = self.class_name or "?"
        return f"{self.modifier.value} {owner}::{self.method}"


@dataclass(slots=True)
class RuleNode:
    """One rule with its extracted effects and raise sites."""

    name: str
    rule: "Rule"
    condition_effects: CallableEffects
    action_effects: CallableEffects
    raise_sites: list[RaiseSite]
    signatures: list[EventSignature]
    has_timer_leaves: bool

    def all_reads(self) -> set[str]:
        return self.condition_effects.reads | self.action_effects.reads

    def all_writes(self) -> set[str]:
        return self.condition_effects.writes | self.action_effects.writes


@dataclass(frozen=True, slots=True)
class Edge:
    """``src`` may trigger ``dst`` via the described primitive event."""

    src: str
    dst: str
    via: str
    definite: bool


@dataclass(slots=True)
class TriggeringGraph:
    """Rule nodes plus the may-trigger edges between them."""

    nodes: dict[str, RuleNode] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)

    def successors(self, name: str) -> list[Edge]:
        return [edge for edge in self.edges if edge.src == name]

    def adjacency(self) -> dict[str, set[str]]:
        adj: dict[str, set[str]] = {name: set() for name in self.nodes}
        for edge in self.edges:
            adj[edge.src].add(edge.dst)
        return adj

    def edge_between(self, src: str, dst: str) -> Edge | None:
        """The (preferably definite) edge from ``src`` to ``dst``."""
        best: Edge | None = None
        for edge in self.edges:
            if edge.src == src and edge.dst == dst:
                if edge.definite:
                    return edge
                best = best or edge
        return best

    def to_dot(self) -> str:
        """Graphviz rendering: boxes per rule, dashed may-edges."""
        lines = [
            "digraph triggering {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="Helvetica"];',
        ]
        for name, node in sorted(self.nodes.items()):
            attrs = []
            if not node.rule.enabled:
                attrs.append('style=dashed')
                attrs.append('color=gray')
            suffix = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{_dot_escape(name)}"{suffix};')
        for edge in self.edges:
            style = "" if edge.definite else ", style=dashed"
            lines.append(
                f'  "{_dot_escape(edge.src)}" -> "{_dot_escape(edge.dst)}" '
                f'[label="{_dot_escape(edge.via)}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def build_graph(system: Any, registry: Any = None) -> TriggeringGraph:
    """Build the triggering graph of a system's rule base.

    ``system`` is a :class:`~repro.core.system.Sentinel` (its ``rules``
    registry is used), any object with an iterable ``rules`` attribute,
    or a plain iterable of rules.  ``registry`` defaults to the process
    :data:`~repro.oodb.schema.global_registry`.
    """
    if registry is None:
        from ..oodb.schema import global_registry

        registry = global_registry
    rules = _rules_of(system)
    table = raised_event_registry(registry)
    graph = TriggeringGraph()
    for rule in sorted(rules, key=lambda r: r.name):
        condition_effects = extract_effects(rule.condition)
        action_effects = extract_effects(rule.action)
        signatures = rule.monitored_signatures()
        has_timer = any(
            not isinstance(leaf, Primitive) for leaf in rule.event.leaves()
        )
        sites = _raise_sites(
            condition_effects, action_effects, signatures, registry, table
        )
        graph.nodes[rule.name] = RuleNode(
            name=rule.name,
            rule=rule,
            condition_effects=condition_effects,
            action_effects=action_effects,
            raise_sites=sites,
            signatures=signatures,
            has_timer_leaves=has_timer,
        )
    _build_edges(graph, registry)
    return graph


def _rules_of(system: Any) -> list["Rule"]:
    rules = getattr(system, "rules", system)
    return list(rules)


def _raise_sites(
    condition_effects: CallableEffects,
    action_effects: CallableEffects,
    signatures: list[EventSignature],
    registry: Any,
    table: dict[str, dict[str, EventSpec]],
) -> list[RaiseSite]:
    """Everything this rule's condition *and* action may raise.

    Conditions count too: a condition invoking a monitored accessor
    (``ctx.source.get_salary()``) raises that accessor's events exactly
    as an action would.
    """
    sites: list[RaiseSite] = []
    seen: set[tuple[str | None, str, EventModifier, bool]] = set()

    def add(
        class_name: str | None,
        method: str,
        spec_or_modifier: "EventSpec | EventModifier",
        definite: bool,
        line: int | None,
    ) -> None:
        modifiers: list[EventModifier]
        if isinstance(spec_or_modifier, EventModifier):
            modifiers = [spec_or_modifier]
        else:
            modifiers = []
            if spec_or_modifier.before:
                modifiers.append(EventModifier.BEGIN)
            if spec_or_modifier.after:
                modifiers.append(EventModifier.END)
        for modifier in modifiers:
            key = (class_name, method, modifier, definite)
            if key not in seen:
                seen.add(key)
                sites.append(
                    RaiseSite(
                        class_name=class_name,
                        method=method,
                        modifier=modifier,
                        definite=definite,
                        line=line,
                    )
                )

    source_classes = _source_classes(signatures, registry)
    for effects in (condition_effects, action_effects):
        for call in effects.calls:
            _sites_for_call(call, source_classes, table, add)
        for raised in effects.explicit_raises:
            if raised == "*":
                add(None, "*", EventModifier.EXPLICIT, False, None)
            else:
                add(None, raised, EventModifier.EXPLICIT, True, None)
    return sites


def _source_classes(
    signatures: Iterable[EventSignature], registry: Any
) -> set[str]:
    """The classes ``ctx.source`` may be an instance of.

    A rule triggered by ``end Employee::set_salary`` sees sources from
    ``Employee`` or any registered subclass — the leaf class's family.
    Signature classes not in the registry contribute just themselves.
    """
    classes: set[str] = set()
    for signature in signatures:
        name = _registry_name(registry, signature.class_name)
        if name is None:
            classes.add(signature.class_name)
        else:
            classes.update(registry.family(name))
    return classes


def _registry_name(registry: Any, class_name: str) -> str | None:
    """Resolve ``class_name`` in the registry, case-insensitively."""
    if class_name in registry:
        return class_name
    lowered = class_name.lower()
    for name in registry.names():
        if name.lower() == lowered:
            return name
    return None


def _sites_for_call(
    call: MethodCall,
    source_classes: set[str],
    table: dict[str, dict[str, EventSpec]],
    add: Any,
) -> None:
    method = normalize_method_name(call.method)
    if call.receiver == SOURCE_RECEIVER:
        for class_name in sorted(source_classes):
            spec = _spec_of(table, class_name, method)
            if spec is not None:
                add(class_name, method, spec, True, call.line)
        return
    if call.receiver == UNKNOWN_RECEIVER:
        # Untyped receiver: any class declaring the method may raise.
        for class_name in sorted(table):
            spec = _spec_of(table, class_name, method)
            if spec is not None:
                add(class_name, method, spec, False, call.line)
        return
    spec = _spec_of(table, call.receiver, method)
    if spec is not None:
        add(call.receiver, method, spec, True, call.line)


def _spec_of(
    table: dict[str, dict[str, EventSpec]], class_name: str, method: str
) -> EventSpec | None:
    generators = table.get(class_name)
    if generators is None:
        return None
    if method in generators:
        return generators[method]
    lowered = method.lower()
    for name, spec in generators.items():
        if name.lower() == lowered:
            return spec
    return None


def _build_edges(graph: TriggeringGraph, registry: Any) -> None:
    families: dict[str, set[str]] = {}

    def family_of(leaf_class: str) -> set[str]:
        cached = families.get(leaf_class)
        if cached is None:
            name = _registry_name(registry, leaf_class)
            cached = (
                {n.lower() for n in registry.family(name)}
                if name is not None
                else {leaf_class.lower()}
            )
            families[leaf_class] = cached
        return cached

    seen: set[tuple[str, str, str, bool]] = set()
    for src in graph.nodes.values():
        if src.action_effects.opaque:
            for dst_name in graph.nodes:
                key = (src.name, dst_name, "opaque", False)
                if key not in seen:
                    seen.add(key)
                    graph.edges.append(
                        Edge(
                            src=src.name,
                            dst=dst_name,
                            via="opaque action (conservative fallback)",
                            definite=False,
                        )
                    )
        for site in src.raise_sites:
            for dst in graph.nodes.values():
                if _site_triggers(site, dst, family_of):
                    via = site.describe()
                    key = (src.name, dst.name, via, site.definite)
                    if key not in seen:
                        seen.add(key)
                        graph.edges.append(
                            Edge(
                                src=src.name,
                                dst=dst.name,
                                via=via,
                                definite=site.definite,
                            )
                        )


def _site_triggers(
    site: RaiseSite, dst: RuleNode, family_of: Any
) -> bool:
    """Does raising ``site`` match any primitive leaf of ``dst``?"""
    for leaf in dst.signatures:
        if leaf.modifier is not site.modifier:
            continue
        if site.method != "*" and leaf.method.lower() != site.method.lower():
            continue
        if site.class_name is None:
            return True
        if site.class_name.lower() in family_of(leaf.class_name):
            return True
    return False
