"""Findings and report rendering (text, JSON, SARIF).

Every finding carries a stable code, a severity, a message, and — where
the analyzer could pin one down — the rule it concerns and a source
location.  The code catalog:

=======  ========  ====================================================
code     severity  meaning
=======  ========  ====================================================
SA001    error/    potential non-termination: the triggering graph has
         warning   a cycle (error when the cycle is unconditional and
                   every edge definite, warning otherwise)
SA002    warning   potential non-confluence: two same-event rules with
                   equal priority and overlapping write/write or
                   read/write sets
SA010    warning   dead rule: no reactive class can raise any of its
                   primitive leaves
SA011    warning   unreachable sequence: a Sequence composite whose
                   first constituent can never be raised
SA012    note      permanently disabled: the rule is disabled and no
                   rule's action can enable it
SA020    error     bad arity: the condition/action is not callable
                   with the single RuleContext argument
SA021    warning   unknown event parameter: a condition/action
                   references a parameter no triggering event binds
SA030    note      opaque callable: effects could not be extracted,
                   conservative fallback applied
SA100    warning   lost update: two decoupled rules with a common
                   trigger write the same attribute from concurrent
                   worker transactions
SA101    warning   lock-order inversion: two rules touch overlapping
                   object families in opposite statement order
SA102    warning   write-skew: converse guarded writes under snapshot
                   reads
SA103    warning/  blocking call (sleep/HTTP/RuleClient) while the
         error     triggering transaction holds 2PL locks (error for
                   re-entrant RuleClient calls)
SA104    warning   non-thread-safe engine API called from a decoupled
                   (worker-thread) action
=======  ========  ====================================================

The SA1xx family only runs when concurrency analysis is requested
(``analyze(system, concurrency=True)`` / ``tools.analyze --concurrency``).

SARIF output follows the 2.1.0 schema, minimal profile: one run, one
driver, ``results`` with ``ruleId``/``level``/``message``/``locations``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .graph import TriggeringGraph

__all__ = [
    "FINDING_CODES",
    "SEVERITY_RANK",
    "Finding",
    "AnalysisReport",
    "sort_findings",
]

#: Severity names, weakest first; used to order findings and to compare
#: against a ``--fail-on`` threshold.
SEVERITY_RANK: dict[str, int] = {"note": 0, "warning": 1, "error": 2}

#: Code → (name, short description) — also the SARIF rule metadata.
FINDING_CODES: dict[str, tuple[str, str]] = {
    "SA001": (
        "non-termination",
        "The triggering graph contains a cycle: these rules can fire "
        "each other forever.",
    ),
    "SA002": (
        "non-confluence",
        "Two rules triggered by the same event at the same priority "
        "touch overlapping state; their outcome is order-dependent.",
    ),
    "SA010": (
        "dead-rule",
        "No reactive class can raise any primitive event this rule is "
        "triggered by.",
    ),
    "SA011": (
        "unreachable-sequence",
        "A Sequence composite's first constituent can never be raised, "
        "so the sequence can never complete.",
    ),
    "SA012": (
        "permanently-disabled",
        "The rule is disabled and no rule's action can enable it.",
    ),
    "SA020": (
        "bad-arity",
        "The condition or action cannot be called with the single "
        "RuleContext argument.",
    ),
    "SA021": (
        "unknown-parameter",
        "A condition or action references an event parameter that no "
        "triggering event binds.",
    ),
    "SA030": (
        "opaque-callable",
        "Effects of a condition/action could not be extracted; the "
        "conservative may-trigger-anything fallback applies.",
    ),
    "SA100": (
        "lost-update",
        "Two decoupled rules with a common trigger write the same "
        "attribute from concurrent worker transactions; one update can "
        "silently overwrite the other.",
    ),
    "SA101": (
        "lock-order-inversion",
        "Two rules touch overlapping object families in opposite "
        "orders; under 2PL the opposite acquisition orders are a "
        "deadlock-retry hotspot.",
    ),
    "SA102": (
        "write-skew",
        "One rule's condition reads what the other writes and vice "
        "versa, with disjoint write sets; under snapshot reads both "
        "guards can pass simultaneously.",
    ),
    "SA103": (
        "blocking-call-under-locks",
        "An immediate/deferred rule performs a blocking call while the "
        "triggering transaction still holds its 2PL locks.",
    ),
    "SA104": (
        "non-thread-safe-api",
        "A decoupled rule (worker thread) calls an engine API that is "
        "documented single-threaded.",
    ),
}


@dataclass(frozen=True, slots=True)
class Finding:
    """One analyzer diagnostic."""

    code: str
    severity: str
    message: str
    rule: str | None = None
    file: str | None = None
    line: int | None = None
    witness: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.rule is not None:
            data["rule"] = self.rule
        if self.file is not None:
            data["file"] = self.file
        if self.line is not None:
            data["line"] = self.line
        if self.witness:
            data["witness"] = list(self.witness)
        return data

    def render(self) -> str:
        location = ""
        if self.file:
            location = f" ({self.file}:{self.line})" if self.line else f" ({self.file})"
        scope = f" [{self.rule}]" if self.rule else ""
        return f"{self.code} {self.severity}{scope}: {self.message}{location}"


@dataclass(slots=True)
class AnalysisReport:
    """The analyzer's output: the graph plus ordered findings."""

    findings: list[Finding] = field(default_factory=list)
    graph: "TriggeringGraph | None" = None

    # -- aggregation ----------------------------------------------------
    def counts(self) -> dict[str, int]:
        totals = {"error": 0, "warning": 0, "note": 0}
        for finding in self.findings:
            totals[finding.severity] = totals.get(finding.severity, 0) + 1
        return totals

    def worst_severity(self) -> str | None:
        worst: str | None = None
        for finding in self.findings:
            if worst is None or (
                SEVERITY_RANK.get(finding.severity, 0)
                > SEVERITY_RANK.get(worst, 0)
            ):
                worst = finding.severity
        return worst

    def should_fail(self, fail_on: str) -> bool:
        """True when any finding is at/above the ``fail_on`` threshold."""
        if fail_on == "never":
            return False
        threshold = SEVERITY_RANK.get(fail_on)
        if threshold is None:
            raise ValueError(
                f"unknown fail-on level {fail_on!r}; expected one of "
                f"{sorted(SEVERITY_RANK)} or 'never'"
            )
        return any(
            SEVERITY_RANK.get(f.severity, 0) >= threshold
            for f in self.findings
        )

    # -- rendering ------------------------------------------------------
    def to_text(self) -> str:
        counts = self.counts()
        node_count = len(self.graph.nodes) if self.graph is not None else 0
        edge_count = len(self.graph.edges) if self.graph is not None else 0
        lines = [
            f"rule-set analysis: {node_count} rules, {edge_count} "
            f"triggering edges; {counts['error']} errors, "
            f"{counts['warning']} warnings, {counts['note']} notes"
        ]
        if not self.findings:
            lines.append("no findings")
        for finding in self.findings:
            lines.append(finding.render())
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
        }
        if self.graph is not None:
            data["rules"] = sorted(self.graph.nodes)
            data["edges"] = [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "via": e.via,
                    "definite": e.definite,
                }
                for e in self.graph.edges
            ]
        return data

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def to_sarif(self) -> dict[str, Any]:
        """SARIF 2.1.0, minimal profile."""
        rules = [
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": description},
            }
            for code, (name, description) in sorted(FINDING_CODES.items())
        ]
        results = []
        for finding in self.findings:
            result: dict[str, Any] = {
                "ruleId": finding.code,
                "level": finding.severity,
                "message": {"text": finding.render()},
            }
            if finding.file:
                region: dict[str, Any] = {}
                if finding.line:
                    region["startLine"] = finding.line
                location: dict[str, Any] = {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.file},
                    }
                }
                if region:
                    location["physicalLocation"]["region"] = region
                result["locations"] = [location]
            results.append(result)
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-analyze",
                            "informationUri": (
                                "https://example.invalid/repro/analysis"
                            ),
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }

    def to_sarif_text(self) -> str:
        return json.dumps(self.to_sarif(), indent=2) + "\n"

    def to_dot(self) -> str:
        if self.graph is None:
            return "digraph triggering {\n}\n"
        return self.graph.to_dot()


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Most severe first; ties break on code then rule name."""
    return sorted(
        findings,
        key=lambda f: (
            -SEVERITY_RANK.get(f.severity, 0),
            f.code,
            f.rule or "",
            f.message,
        ),
    )
