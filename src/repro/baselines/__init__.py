"""Models of the systems the paper compares against (§5–§7).

* :mod:`repro.baselines.ode` — Ode [GJ91, GJS92]: constraints and
  triggers declared only at class-definition time, scoped to one class.
* :mod:`repro.baselines.adam` — ADAM [DPG91]: events and rules as
  objects, but checked through a centralized rule manager.

These are semantic models, not reimplementations: they reproduce the
*rule models* of the two systems over our substrate so the paper's
qualitative comparison (and its cost arguments) can be measured.
"""

from .adam import AdamSystem, DbEvent, IntegrityRule
from .ode import OdeClassDefinition, OdeObject, OdeSystem, OdeViolation

__all__ = [
    "OdeSystem",
    "OdeClassDefinition",
    "OdeObject",
    "OdeViolation",
    "AdamSystem",
    "DbEvent",
    "IntegrityRule",
]
