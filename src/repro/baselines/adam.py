"""A model of ADAM's rule support [DPG91] (paper §5.1, §6, Figs 12–13).

ADAM (a PROLOG OODB from Aberdeen) treats events and rules as objects —
the property the paper adopts — but checks them through a **centralized
rule manager**: when a method executes, the system scans the rules in the
class's rule set and evaluates each whose event matches.  Key modelled
properties:

* ``db-event`` objects: ``active-method`` + ``when`` (before/after),
  shared across classes by name (Fig 12);
* ``integrity-rule`` objects with ``event``, ``active-class``,
  ``is-it-enabled``, ``disabled-for`` (per-instance exception list),
  ``condition``, ``action`` (Fig 13);
* **rule inheritance**: rules attached to a class apply to subclasses;
* **centralized checking**: the per-event cost grows with the number of
  rules attached to the class family — and since "making a rule apply to
  a small number of instances is cumbersome", instance scoping is done
  negatively via ``disabled-for`` lists that every check consults
  (benchmarks E8/E11);
* **no cross-class composite events**: a rule has exactly one
  active-class, so the paper's IncomeLevel rule needs two rule objects.

The model runs over plain Python classes registered as *active classes*;
method execution is routed through :meth:`AdamSystem.invoke`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["AdamSystem", "DbEvent", "IntegrityRule", "AdamError"]


class AdamError(Exception):
    """Misuse of the ADAM model (unknown class, bad event...)."""


@dataclass(frozen=True, slots=True)
class DbEvent:
    """An ADAM ``db-event``: a method name plus when it is detected."""

    active_method: str
    when: str = "after"  # "before" | "after"

    def __post_init__(self) -> None:
        if self.when not in ("before", "after"):
            raise AdamError(f"when must be 'before' or 'after', not {self.when!r}")


@dataclass(slots=True)
class IntegrityRule:
    """An ADAM ``integrity-rule`` object (Fig 13)."""

    event: DbEvent
    active_class: str
    condition: Callable[[Any, dict[str, Any]], bool] | None = None
    action: Callable[[Any, dict[str, Any]], None] | None = None
    enabled: bool = True
    disabled_for: list[int] = field(default_factory=list)
    name: str = ""
    _ids = itertools.count(1)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"integrity-rule-{next(IntegrityRule._ids)}"

    def is_enabled_for(self, obj: Any) -> bool:
        return self.enabled and id(obj) not in self.disabled_for

    def disable_for(self, obj: Any) -> None:
        """Negative instance scoping: exclude one instance."""
        if id(obj) not in self.disabled_for:
            self.disabled_for.append(id(obj))

    def enable_for(self, obj: Any) -> None:
        if id(obj) in self.disabled_for:
            self.disabled_for.remove(id(obj))


class AdamSystem:
    """The centralized ADAM rule manager."""

    def __init__(self) -> None:
        self._active_classes: dict[str, type] = {}
        self._superclasses: dict[str, set[str]] = {}
        self._rules: list[IntegrityRule] = []
        self.stats: dict[str, int] = {
            "method_calls": 0,
            "rules_scanned": 0,
            "rules_matched": 0,
            "conditions_evaluated": 0,
            "actions_executed": 0,
        }

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def register_class(self, cls: type, name: str | None = None) -> None:
        """Declare ``cls`` active; its method executions raise events."""
        class_name = name or cls.__name__
        self._active_classes[class_name] = cls
        supers = {
            base.__name__
            for base in cls.__mro__[1:]
            if base.__name__ in self._active_classes
        }
        self._superclasses[class_name] = supers
        # Already-registered subclasses may gain this as a superclass.
        for other_name, other_cls in self._active_classes.items():
            if other_cls is not cls and issubclass(other_cls, cls):
                self._superclasses[other_name].add(class_name)

    def class_family(self, class_name: str) -> set[str]:
        """The class plus its registered superclasses (rule inheritance)."""
        return {class_name} | self._superclasses.get(class_name, set())

    # ------------------------------------------------------------------
    # Rules (created at runtime — ADAM's strength)
    # ------------------------------------------------------------------
    def new_event(self, active_method: str, when: str = "after") -> DbEvent:
        return DbEvent(active_method=active_method, when=when)

    def new_rule(
        self,
        event: DbEvent,
        active_class: str,
        condition: Callable | None = None,
        action: Callable | None = None,
        name: str = "",
        enabled: bool = True,
    ) -> IntegrityRule:
        if active_class not in self._active_classes:
            raise AdamError(f"{active_class!r} is not a registered active class")
        rule = IntegrityRule(
            event=event,
            active_class=active_class,
            condition=condition,
            action=action,
            enabled=enabled,
            name=name,
        )
        self._rules.append(rule)
        return rule

    def delete_rule(self, rule: IntegrityRule) -> None:
        self._rules.remove(rule)

    def rules(self) -> list[IntegrityRule]:
        return list(self._rules)

    def rule_count(self) -> int:
        return len(self._rules)

    # ------------------------------------------------------------------
    # The centralized dispatch path
    # ------------------------------------------------------------------
    def invoke(self, obj: Any, method_name: str, *args: Any, **kwargs: Any) -> Any:
        """Execute ``obj.method_name(...)`` with before/after rule checks.

        This is the cost model the paper contrasts with subscription:
        every invocation scans the full rule list (matching by event and
        active-class family), so per-call work is Θ(total rules) — see
        benchmark E8.
        """
        class_name = type(obj).__name__
        if class_name not in self._active_classes:
            raise AdamError(f"{class_name!r} is not a registered active class")
        self.stats["method_calls"] += 1
        current_args = {"args": args, "kwargs": kwargs, "result": None}
        self._check(obj, class_name, method_name, "before", current_args)
        result = getattr(obj, method_name)(*args, **kwargs)
        current_args["result"] = result
        self._check(obj, class_name, method_name, "after", current_args)
        return result

    def _check(
        self,
        obj: Any,
        class_name: str,
        method_name: str,
        when: str,
        current_args: dict[str, Any],
    ) -> None:
        family = self.class_family(class_name)
        for rule in self._rules:
            self.stats["rules_scanned"] += 1
            event = rule.event
            if event.active_method != method_name or event.when != when:
                continue
            if rule.active_class not in family:
                continue
            if not rule.is_enabled_for(obj):
                continue
            self.stats["rules_matched"] += 1
            if rule.condition is not None:
                self.stats["conditions_evaluated"] += 1
                if not rule.condition(obj, current_args):
                    continue
            if rule.action is not None:
                self.stats["actions_executed"] += 1
                rule.action(obj, current_args)
