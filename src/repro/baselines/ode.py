"""A model of Ode's rule support [GJ91, GJS92] (paper §5.1, §6, Fig 11).

Ode attaches *constraints* and *triggers* to a class **at class-definition
time only**:

* **hard constraints** — checked after every public method; a violation
  undoes the operation (models Ode's abort),
* **soft constraints** — a violation runs a corrective handler instead,
* **triggers** — ``once`` or ``perpetual``; activated per instance, they
  run an action when their condition holds after a method.

The properties the paper criticizes are reproduced deliberately:

1. rules can only be declared with the class — adding one later means
   *redefining the class*, which revisits every live instance
   (:meth:`OdeSystem.redefine_class`; benchmark E10 measures this);
2. a rule sees only its own class — cross-class rules must be written
   twice (Fig 11's complementary constraint pair);
3. constraints/triggers are not objects: no identity, no persistence, no
   runtime composition;
4. every method call on every instance checks every constraint of the
   class, whether or not anyone cares about that instance (benchmark E11).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "OdeViolation",
    "Constraint",
    "Trigger",
    "OdeClassDefinition",
    "OdeObject",
    "OdeSystem",
]


class OdeViolation(Exception):
    """A hard constraint was violated; the offending update was undone."""


Predicate = Callable[[Any], bool]
Handler = Callable[[Any], None]


@dataclass(frozen=True, slots=True)
class Constraint:
    """An Ode constraint: a predicate every instance must satisfy."""

    name: str
    predicate: Predicate
    hard: bool = True
    handler: Handler | None = None

    def __post_init__(self) -> None:
        if not self.hard and self.handler is None:
            raise ValueError(
                f"soft constraint {self.name!r} needs a corrective handler"
            )


@dataclass(frozen=True, slots=True)
class Trigger:
    """An Ode trigger: condition → action, once or perpetual."""

    name: str
    condition: Predicate
    action: Handler
    perpetual: bool = True


@dataclass(slots=True)
class OdeClassDefinition:
    """The compile-time definition of an Ode class."""

    name: str
    attributes: tuple[str, ...]
    methods: dict[str, Callable] = field(default_factory=dict)
    constraints: list[Constraint] = field(default_factory=list)
    triggers: list[Trigger] = field(default_factory=list)
    base: "OdeClassDefinition | None" = None

    def all_constraints(self) -> list[Constraint]:
        inherited = self.base.all_constraints() if self.base else []
        return inherited + list(self.constraints)

    def all_triggers(self) -> list[Trigger]:
        inherited = self.base.all_triggers() if self.base else []
        return inherited + list(self.triggers)

    def all_methods(self) -> dict[str, Callable]:
        methods = dict(self.base.all_methods()) if self.base else {}
        methods.update(self.methods)
        return methods

    def is_subclass_of(self, other: "OdeClassDefinition") -> bool:
        definition: OdeClassDefinition | None = self
        while definition is not None:
            if definition is other:
                return True
            definition = definition.base
        return False


class OdeObject:
    """An instance of an Ode class.

    Method calls go through :meth:`invoke`, which runs the method, then
    checks every constraint of the class and evaluates the activated
    triggers — Ode's post-method rule checking.
    """

    _ids = itertools.count(1)

    def __init__(
        self, definition: OdeClassDefinition, system: "OdeSystem", **attrs: Any
    ):
        self.definition = definition
        self.system = system
        self.id = next(OdeObject._ids)
        for attribute in definition.attributes:
            setattr(self, attribute, attrs.get(attribute))
        self._active_triggers: dict[str, bool] = {}
        self._fired_once: set[str] = set()
        system._register(self)

    # ------------------------------------------------------------------
    # Trigger activation (Ode activates triggers per instance, at runtime)
    # ------------------------------------------------------------------
    def activate_trigger(self, name: str) -> None:
        if not any(t.name == name for t in self.definition.all_triggers()):
            raise KeyError(
                f"class {self.definition.name} has no trigger {name!r}"
            )
        self._active_triggers[name] = True

    def deactivate_trigger(self, name: str) -> None:
        self._active_triggers[name] = False

    # ------------------------------------------------------------------
    # Method invocation with post-checking
    # ------------------------------------------------------------------
    def invoke(self, method_name: str, *args: Any, **kwargs: Any) -> Any:
        methods = self.definition.all_methods()
        try:
            method = methods[method_name]
        except KeyError:
            raise AttributeError(
                f"class {self.definition.name} has no method {method_name!r}"
            ) from None
        snapshot = self._snapshot()
        result = method(self, *args, **kwargs)
        self.system.stats["method_calls"] += 1
        self._check_constraints(snapshot)
        self._run_triggers()
        return result

    def _snapshot(self) -> dict[str, Any]:
        return {a: getattr(self, a) for a in self.definition.attributes}

    def _restore(self, snapshot: dict[str, Any]) -> None:
        for attribute, value in snapshot.items():
            setattr(self, attribute, value)

    def _check_constraints(self, snapshot: dict[str, Any]) -> None:
        for constraint in self.definition.all_constraints():
            self.system.stats["constraint_checks"] += 1
            if constraint.predicate(self):
                continue
            if constraint.hard:
                self._restore(snapshot)
                self.system.stats["hard_violations"] += 1
                raise OdeViolation(
                    f"hard constraint {constraint.name!r} violated on "
                    f"{self.definition.name}#{self.id}"
                )
            self.system.stats["soft_corrections"] += 1
            assert constraint.handler is not None
            constraint.handler(self)

    def _run_triggers(self) -> None:
        for trigger in self.definition.all_triggers():
            if not self._active_triggers.get(trigger.name):
                continue
            self.system.stats["trigger_checks"] += 1
            if not trigger.condition(self):
                continue
            if not trigger.perpetual:
                if trigger.name in self._fired_once:
                    continue
                self._fired_once.add(trigger.name)
                self._active_triggers[trigger.name] = False
            self.system.stats["trigger_firings"] += 1
            trigger.action(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OdeObject {self.definition.name}#{self.id}>"


class OdeSystem:
    """The Ode database: class definitions plus their live instances."""

    def __init__(self) -> None:
        self._classes: dict[str, OdeClassDefinition] = {}
        self._instances: dict[str, list[OdeObject]] = {}
        self.stats: dict[str, int] = {
            "method_calls": 0,
            "constraint_checks": 0,
            "hard_violations": 0,
            "soft_corrections": 0,
            "trigger_checks": 0,
            "trigger_firings": 0,
            "recompiled_instances": 0,
        }

    # ------------------------------------------------------------------
    # Schema definition (rules included — that is the point)
    # ------------------------------------------------------------------
    def define_class(
        self,
        name: str,
        attributes: tuple[str, ...],
        methods: dict[str, Callable] | None = None,
        constraints: list[Constraint] | None = None,
        triggers: list[Trigger] | None = None,
        base: str | None = None,
    ) -> OdeClassDefinition:
        if name in self._classes:
            raise ValueError(f"class {name!r} already defined; use redefine_class")
        definition = OdeClassDefinition(
            name=name,
            attributes=attributes,
            methods=methods or {},
            constraints=constraints or [],
            triggers=triggers or [],
            base=self._classes[base] if base else None,
        )
        self._classes[name] = definition
        self._instances.setdefault(name, [])
        return definition

    def new(self, class_name: str, **attrs: Any) -> OdeObject:
        return OdeObject(self._classes[class_name], self, **attrs)

    def _register(self, obj: OdeObject) -> None:
        self._instances.setdefault(obj.definition.name, []).append(obj)

    def class_of(self, name: str) -> OdeClassDefinition:
        return self._classes[name]

    def instances_of(self, class_name: str) -> list[OdeObject]:
        return list(self._instances.get(class_name, ()))

    # ------------------------------------------------------------------
    # The expensive operation the paper criticizes: adding a rule later
    # ------------------------------------------------------------------
    def redefine_class(
        self,
        name: str,
        add_constraints: list[Constraint] | None = None,
        add_triggers: list[Trigger] | None = None,
    ) -> OdeClassDefinition:
        """Add rules to an existing class — the "recompile" path.

        Every live instance must be revisited (re-validated against the
        new constraints and rebound to the new definition), which is what
        makes rule addition O(population) in this model — the cost
        Sentinel's first-class runtime rules avoid (benchmark E10).
        """
        old = self._classes[name]
        definition = OdeClassDefinition(
            name=old.name,
            attributes=old.attributes,
            methods=dict(old.methods),
            constraints=old.all_constraints() + list(add_constraints or []),
            triggers=old.all_triggers() + list(add_triggers or []),
            base=old.base,
        )
        self._classes[name] = definition
        for instance in self._instances.get(name, ()):
            instance.definition = definition
            self.stats["recompiled_instances"] += 1
            for constraint in add_constraints or []:
                if not constraint.predicate(instance):
                    if constraint.hard:
                        raise OdeViolation(
                            f"existing instance {instance!r} violates new "
                            f"constraint {constraint.name!r}"
                        )
                    assert constraint.handler is not None
                    constraint.handler(instance)
        return definition
