"""``repro.core`` — Sentinel: reactive capability for an OODB.

The paper's contribution: reactive objects with an event interface,
notifiable consumers, first-class events (primitive + composite) and
rules, runtime subscription, class-level and instance-level rules, and
the external monitoring viewpoint.
"""

from .class_rules import ClassRuleDeclaration, class_rule, class_rules_of
from .clock import Clock, ManualClock, SystemClock, get_clock, set_clock
from .coupling import Coupling
from .dsl import (
    CompiledAction,
    CompiledCondition,
    DslError,
    compile_action,
    compile_condition,
    parse_event,
    parse_rule,
)
from .identity import IdentitySet
from .events import (
    Any,
    Aperiodic,
    AperiodicStar,
    At,
    Conjunction,
    Disjunction,
    Event,
    EventDetector,
    EventError,
    EventSignature,
    Not,
    ParameterContext,
    Periodic,
    Plus,
    Primitive,
    Sequence,
    SignatureError,
)
from .interface import (
    EventSpec,
    ReactiveMeta,
    event_generators,
    event_method,
    raised_event_registry,
)
from .monitor import monitor, unmonitor
from .notifiable import Notifiable
from .occurrence import (
    CompositeOccurrence,
    EventModifier,
    EventOccurrence,
    Occurrence,
)
from .reactive import Reactive, subscribe_all
from .registry import EventRegistry, RuleRegistry, default_events, default_registry
from .rules import Rule, RuleContext, RuleError
from .scheduler import (
    CascadeError,
    RuleCascadeError,
    RuleScheduler,
    SchedulerStats,
    TraceEntry,
    by_priority,
    fifo,
)
from .txn_events import TransactionMonitor
from .system import Sentinel

__all__ = [
    "Sentinel",
    # objects
    "Reactive",
    "Notifiable",
    "ReactiveMeta",
    "event_method",
    "event_generators",
    "raised_event_registry",
    "EventSpec",
    "subscribe_all",
    "IdentitySet",
    # occurrences
    "Occurrence",
    "EventOccurrence",
    "CompositeOccurrence",
    "EventModifier",
    # events
    "Event",
    "EventError",
    "EventSignature",
    "SignatureError",
    "Primitive",
    "Conjunction",
    "Disjunction",
    "Sequence",
    "Any",
    "Not",
    "Aperiodic",
    "AperiodicStar",
    "Periodic",
    "Plus",
    "At",
    "ParameterContext",
    "EventDetector",
    # rules
    "Rule",
    "RuleContext",
    "RuleError",
    "Coupling",
    "RuleScheduler",
    "SchedulerStats",
    "CascadeError",
    "RuleCascadeError",
    "TraceEntry",
    "TransactionMonitor",
    "by_priority",
    "fifo",
    "class_rule",
    "class_rules_of",
    "ClassRuleDeclaration",
    "monitor",
    "unmonitor",
    "RuleRegistry",
    "EventRegistry",
    "default_registry",
    "default_events",
    # DSL
    "parse_event",
    "parse_rule",
    "compile_condition",
    "compile_action",
    "CompiledCondition",
    "CompiledAction",
    "DslError",
    # time
    "Clock",
    "SystemClock",
    "ManualClock",
    "get_clock",
    "set_clock",
]
