"""Ablation implementations of rejected design alternatives.

DESIGN.md calls out two implementation choices behind Sentinel's event
interface; this module implements the road *not* taken so the benchmarks
can quantify the decision:

1. **Metaclass-generated stubs vs. dynamic interception**
   (:class:`DynamicReactive`) — instead of wrapping event-generator
   methods once at class-creation time, intercept every attribute access
   with ``__getattribute__`` and wrap on the fly.  Functionally
   equivalent; pays the interception tax on *every* attribute access of
   the object, monitored or not.

2. **Per-producer consumer lists vs. a global dispatch table**
   (:class:`CentralDispatchTable`) — instead of each reactive object
   holding its subscribers, a system-wide table maps
   ``(modifier, method)`` to interested consumers, and every reactive
   object forwards every event to the table.  With an index the lookup
   is O(matching consumers), but *every* event of *every* object must be
   generated and routed (no per-object fast path), and instance-level
   scoping needs explicit source filters.

Both are complete enough to run the paper's examples; neither is used by
the main library.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from .interface import EventSpec
from .notifiable import Notifiable
from .occurrence import EventModifier, EventOccurrence
from .reactive import Reactive

__all__ = ["DynamicReactive", "CentralDispatchTable"]


class DynamicReactive(Reactive):
    """Event generation by per-access interception (ablation #1).

    Subclasses declare ``__dynamic_event_interface__`` — a mapping from
    method name to an :class:`EventSpec` or spec string — and every call
    of a declared method raises bom/eom events, exactly like the stub
    implementation.  The difference is *where* the check happens: here,
    on every attribute access.
    """

    __dynamic_event_interface__: dict[str, Any] = {}

    def __getattribute__(self, name: str) -> Any:
        value = object.__getattribute__(self, name)
        if name.startswith("_"):
            return value
        interface = type(self).__dynamic_event_interface__
        spec = interface.get(name)
        if spec is None or not callable(value):
            return value
        if isinstance(spec, str):
            spec = EventSpec.parse(spec)
        return _intercepted(self, name, value, spec)


def _intercepted(
    instance: DynamicReactive,
    method_name: str,
    bound: Callable[..., Any],
    spec: EventSpec,
) -> Callable[..., Any]:
    def call(*args: Any, **kwargs: Any) -> Any:
        if not instance.has_consumers():
            return bound(*args, **kwargs)
        params = _bind(bound, args, kwargs)
        if spec.before:
            instance.notify_consumers(
                instance._make_occurrence(
                    method_name, EventModifier.BEGIN, args, kwargs, params, None
                )
            )
        result = bound(*args, **kwargs)
        if spec.after:
            instance.notify_consumers(
                instance._make_occurrence(
                    method_name, EventModifier.END, args, kwargs, params, result
                )
            )
        return result

    return call


def _bind(bound: Callable[..., Any], args: tuple, kwargs: dict) -> dict[str, Any]:
    import inspect

    try:
        signature = inspect.signature(bound)
        arguments = dict(signature.bind(*args, **kwargs).arguments)
    except (TypeError, ValueError):
        return {}
    arguments.pop("self", None)
    return arguments


class CentralDispatchTable(Notifiable):
    """A system-wide event router (ablation #2).

    Consumers *route* on primitive-event shapes; producers all subscribe
    the single table.  Lookup is indexed by ``(modifier, lowercase
    method)``, so per-event cost is O(consumers interested in that
    method), not O(all consumers) — the best case for a centralized
    design.  What it cannot recover is the per-object fast path: every
    reactive object has a consumer (the table), so every declared method
    invocation generates and routes an occurrence even when no rule in
    the system cares about that object.
    """

    _p_transient = Notifiable._p_transient + ("_routes",)

    def __init__(self) -> None:
        super().__init__()
        object.__setattr__(self, "_routes", defaultdict(list))
        self.routed = 0
        self.delivered = 0

    def _route_map(self) -> dict:
        routes = getattr(self, "_routes", None)
        if routes is None:
            routes = defaultdict(list)
            object.__setattr__(self, "_routes", routes)
        return routes

    # ------------------------------------------------------------------
    # Routing registration
    # ------------------------------------------------------------------
    def route(
        self,
        consumer: Notifiable,
        method: str,
        modifier: EventModifier = EventModifier.END,
        sources: list[Any] | None = None,
    ) -> None:
        """Deliver matching occurrences to ``consumer``.

        ``sources`` optionally restricts delivery to specific instances —
        the centralized design's replacement for per-object subscription.
        """
        key = (modifier, method.lower())
        self._route_map()[key].append((consumer, sources))

    def unroute(self, consumer: Notifiable, method: str,
                modifier: EventModifier = EventModifier.END) -> None:
        key = (modifier, method.lower())
        bucket = self._route_map().get(key, [])
        bucket[:] = [(c, s) for c, s in bucket if c is not consumer]

    def attach_everywhere(self, objects: list[Reactive]) -> None:
        """Subscribe this table to every producer (the global pattern)."""
        for obj in objects:
            obj.subscribe(self)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def notify(self, occurrence: EventOccurrence) -> None:  # type: ignore[override]
        self.routed += 1
        key = (occurrence.modifier, occurrence.method.lower())
        for consumer, sources in self._route_map().get(key, ()):
            if sources is not None and not any(
                occurrence.source is obj for obj in sources
            ):
                continue
            self.delivered += 1
            consumer.notify(occurrence)
