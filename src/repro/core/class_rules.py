"""Class-level rules (§3.5, §4.7, Fig 9).

Class-level rules "model the behavior of a particular class [and] are
declared within the class definition itself".  A reactive class lists
declarations in its ``__rules__``; the metaclass turns each into a live
:class:`~repro.core.rules.Rule` object registered as a *class consumer*,
so it hears every instance of the class — and of its subclasses (rule
inheritance) — without any per-instance subscription::

    class Person(Reactive):
        @event_method(before=True)
        def marry(self, spouse): ...

        __rules__ = [
            class_rule(
                "Marriage",
                on="begin marry(spouse)",          # class implied
                condition="self.sex == spouse.sex",
                action="abort",
                coupling="immediate",
            ),
        ]

Even though they are declared inside the class, the materialized rules
are ordinary first-class rule objects (footnote 2 of the paper): they can
be enabled/disabled, reprioritized, fetched from the registry, persisted,
and monitored by other rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .coupling import Coupling
from .events.base import Event

__all__ = [
    "ClassRuleDeclaration",
    "class_rule",
    "materialize_class_rules",
    "class_rules_of",
]


@dataclass(slots=True)
class ClassRuleDeclaration:
    """One entry of a class's ``__rules__`` list (pre-materialization)."""

    name: str | None
    on: "str | Event | Callable[[type], Event]"
    condition: Any = None
    action: Any = None
    coupling: "Coupling | str" = Coupling.IMMEDIATE
    priority: int = 0
    enabled: bool = True
    description: str = ""
    extra: dict[str, Any] = field(default_factory=dict)


def class_rule(
    name: str | None = None,
    *,
    on: "str | Event | Callable[[type], Event]",
    condition: Any = None,
    action: Any = None,
    coupling: "Coupling | str" = Coupling.IMMEDIATE,
    priority: int = 0,
    enabled: bool = True,
    description: str = "",
) -> ClassRuleDeclaration:
    """Declare a class-level rule inside a class body.

    ``on`` is an event expression (bare signatures are qualified with the
    enclosing class), an :class:`Event`, or a callable receiving the class
    and returning an Event.  ``condition``/``action`` are callables taking
    a rule context, or DSL source strings.
    """
    return ClassRuleDeclaration(
        name=name,
        on=on,
        condition=condition,
        action=action,
        coupling=coupling,
        priority=priority,
        enabled=enabled,
        description=description,
    )


def materialize_class_rules(cls: type, declarations: list) -> None:
    """Turn declarations into Rule objects wired as class consumers.

    Called by :class:`~repro.core.interface.ReactiveMeta` during class
    creation.  Imports are local because this module sits below the rule
    machinery in the import graph.
    """
    from .dsl import compile_action, compile_condition, parse_event
    from .registry import default_registry
    from .rules import Rule

    class_name = cls._p_class_name  # type: ignore[attr-defined]
    materialized: dict[str, Rule] = {}
    for declaration in declarations:
        if not isinstance(declaration, ClassRuleDeclaration):
            raise TypeError(
                f"__rules__ of {class_name} must contain class_rule(...) "
                f"declarations, got {type(declaration).__name__}"
            )
        spec = declaration.on
        if isinstance(spec, Event):
            event = spec
        elif isinstance(spec, str):
            event = parse_event(spec, default_class=class_name)
        elif callable(spec):
            event = spec(cls)
            if not isinstance(event, Event):
                raise TypeError(
                    f"event factory of rule {declaration.name!r} returned "
                    f"{type(event).__name__}, not an Event"
                )
        else:
            raise TypeError(
                f"bad event specification {spec!r} in rule "
                f"{declaration.name!r}"
            )

        condition = declaration.condition
        if isinstance(condition, str):
            condition = compile_condition(condition)
        action = declaration.action
        if isinstance(action, str):
            action = compile_action(action)

        rule = Rule(
            name=declaration.name or f"{class_name}_rule_{len(materialized)}",
            event=event,
            condition=condition,
            action=action,
            coupling=declaration.coupling,
            priority=declaration.priority,
            enabled=declaration.enabled,
            description=declaration.description
            or f"class-level rule of {class_name}",
        )
        cls._class_consumers.append(rule)  # type: ignore[attr-defined]
        materialized[rule.name] = rule
        default_registry().add(rule, scope=class_name)
    cls._class_rules = materialized  # type: ignore[attr-defined]


def class_rules_of(cls: type, include_inherited: bool = True) -> dict[str, Any]:
    """The class-level rules applicable to instances of ``cls``."""
    result: dict[str, Any] = {}
    classes = reversed(cls.__mro__) if include_inherited else (cls,)
    for klass in classes:
        result.update(getattr(klass, "__dict__", {}).get("_class_rules", {}))
    return result
