"""Time sources for event timestamps and temporal events.

Every event occurrence carries a timestamp (the paper's event message is
``Oid + Class + Method + Actual parameters + Time stamp``).  Tests and the
temporal operators (Periodic, Plus) need a controllable clock, so the time
source is pluggable: :class:`SystemClock` for real time,
:class:`ManualClock` for deterministic tests and simulations.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Clock", "SystemClock", "ManualClock", "get_clock", "set_clock"]


class Clock:
    """Abstract time source."""

    def now(self) -> float:  # pragma: no cover - interface
        """Current time in seconds (monotonic within a run)."""
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time."""

    def now(self) -> float:
        return time.time()


class ManualClock(Clock):
    """A clock that only moves when told to — for tests and simulations."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward and return the new value."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, value: float) -> None:
        with self._lock:
            if value < self._now:
                raise ValueError("time cannot move backwards")
            self._now = value


_current: Clock = SystemClock()


def get_clock() -> Clock:
    """The process-wide clock used for occurrence timestamps."""
    return _current


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` as the current time source; returns the old one."""
    global _current
    previous = _current
    _current = clock
    return previous
