"""Coupling modes (§4.4).

The coupling mode of a rule decides *when*, relative to the triggering
transaction, the rule's condition/action pair executes:

``IMMEDIATE``
    Inline, at the point the event is signalled, inside the triggering
    transaction (the paper's Fig 9 ``M: Immediate``).  An ``abort`` action
    cancels the triggering transaction on the spot.

``DEFERRED``
    Queued, and executed at the *end* of the triggering transaction, just
    before commit — still inside the transaction, so aborts and updates
    take effect within it.

``DECOUPLED``
    Executed after the triggering transaction commits, in a separate
    transaction of its own.  Failures or aborts of the decoupled rule do
    not disturb the (already committed) triggering transaction.  The
    literature also calls this mode *detached*; :meth:`Coupling.parse`
    and :attr:`Coupling.DETACHED` accept both spellings, and both
    normalize to the canonical ``"decoupled"`` value.
"""

from __future__ import annotations

import enum

__all__ = ["Coupling"]


class Coupling(enum.Enum):
    """When a rule runs relative to its triggering transaction (§4.4)."""

    IMMEDIATE = "immediate"
    DEFERRED = "deferred"
    DECOUPLED = "decoupled"
    #: Alias member: same value as DECOUPLED, so ``Coupling.DETACHED is
    #: Coupling.DECOUPLED`` and both spellings round-trip through parse.
    DETACHED = "decoupled"

    @classmethod
    def parse(cls, value: "str | Coupling") -> "Coupling":
        """Parse a mode name.

        ``"detached"`` is accepted as an alias of ``"decoupled"`` — the
        literature uses both names for the same mode — and normalizes to
        the canonical :attr:`DECOUPLED` member.
        """
        if isinstance(value, cls):
            return value
        text = value.strip().lower()
        aliases = {"detached": "decoupled"}
        try:
            return cls(aliases.get(text, text))
        except ValueError:
            raise ValueError(
                f"unknown coupling mode {value!r}; expected one of "
                f"{[c.value for c in cls]} (or 'detached', an alias of "
                f"'decoupled')"
            ) from None
