"""Textual rule and event specifications.

The paper writes events and rules as text (Figs 9–10)::

    E: Event* equal = new Disjunction (emp, mang);
    R : Marriage;  E : begin Person::Marry (Person* spouse);
    C : if sex == spouse.sex   A : abort   M: Immediate

This module provides the equivalent surface:

**Event expressions** — signatures composed with operators::

    parse_event("end Employee::change_income(float amount) "
                "or end Manager::change_income(float amount)")

    operators:  and/&  (conjunction)   or/|  (disjunction)
                then/; (sequence)      parentheses group
    precedence: and  binds tighter than  or  binds tighter than  then

**Rule specifications** — the paper's R/E/C/A/M block::

    RULE Marriage
    ON   begin Person::marry(spouse)
    IF   self.sex == spouse.sex
    DO   abort()
    MODE immediate

    (R:/E:/C:/A:/M:/P: line prefixes are accepted as synonyms.)

Conditions and actions are Python expressions/suites compiled once and
evaluated against the rule context: ``self`` (the triggering object),
``ctx``, ``occurrence``, ``result``, ``abort``, and every event parameter
by name.  Because the *source text* is stored on the rule, DSL rules
persist and reload — unlike rules whose conditions are lambdas.
"""

from __future__ import annotations

import re
from typing import Any

from ..oodb.schema import Persistent
from .coupling import Coupling
from .events.base import Event
from .events.operators import Conjunction, Disjunction, Sequence
from .events.primitive import Primitive
from .events.signature import SignatureError
from .rules import Rule, RuleContext

__all__ = [
    "DslError",
    "parse_event",
    "CompiledCondition",
    "CompiledAction",
    "compile_condition",
    "compile_action",
    "parse_rule",
]


class DslError(ValueError):
    """The specification text does not parse."""


# ----------------------------------------------------------------------
# Event expressions
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<signature>(?:begin|end|before|after|explicit)\s+[A-Za-z_][\w\-]*
        (?:\s*::\s*[A-Za-z_][\w\-]*)?
        (?:\s*\([^)]*\))?)
  | (?P<and>\band\b|&&?)
  | (?P<or>\bor\b|\|\|?)
  | (?P<seq>\bthen\b|;|>>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.IGNORECASE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DslError(
                f"cannot tokenize event expression at: {text[position:]!r}"
            )
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _EventParser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[tuple[str, str]], default_class: str | None):
        self._tokens = tokens
        self._pos = 0
        self._default_class = default_class

    def parse(self) -> Event:
        event = self._sequence()
        if self._pos != len(self._tokens):
            kind, text = self._tokens[self._pos]
            raise DslError(f"unexpected {text!r} after event expression")
        return event

    def _sequence(self) -> Event:
        left = self._disjunction()
        while self._accept("seq"):
            right = self._disjunction()
            left = Sequence(left, right)
        return left

    def _disjunction(self) -> Event:
        parts = [self._conjunction()]
        while self._accept("or"):
            parts.append(self._conjunction())
        if len(parts) == 1:
            return parts[0]
        return Disjunction(*parts)

    def _conjunction(self) -> Event:
        parts = [self._atom()]
        while self._accept("and"):
            parts.append(self._atom())
        if len(parts) == 1:
            return parts[0]
        return Conjunction(*parts)

    def _atom(self) -> Event:
        if self._accept("lparen"):
            inner = self._sequence()
            if not self._accept("rparen"):
                raise DslError("missing ')' in event expression")
            return inner
        kind, text = self._peek()
        if kind == "signature":
            self._pos += 1
            return self._primitive(text)
        raise DslError(
            f"expected an event signature or '(', got {text!r}"
            if kind
            else "unexpected end of event expression"
        )

    def _primitive(self, text: str) -> Primitive:
        if "::" not in text:
            if self._default_class is None:
                raise DslError(
                    f"signature {text!r} names no class and no default "
                    "class is in scope"
                )
            modifier, _, rest = text.strip().partition(" ")
            text = f"{modifier} {self._default_class}::{rest.strip()}"
        try:
            return Primitive(text)
        except SignatureError as exc:
            raise DslError(str(exc)) from exc

    def _peek(self) -> tuple[str | None, str]:
        if self._pos >= len(self._tokens):
            return None, ""
        return self._tokens[self._pos]

    def _accept(self, kind: str) -> bool:
        if self._pos < len(self._tokens) and self._tokens[self._pos][0] == kind:
            self._pos += 1
            return True
        return False


def parse_event(text: str, default_class: str | None = None) -> Event:
    """Parse an event expression into an Event tree.

    ``default_class`` qualifies bare signatures (``begin marry(spouse)``)
    — used by class-level rules, where the enclosing class is implied.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise DslError("empty event expression")
    return _EventParser(tokens, default_class).parse()


# ----------------------------------------------------------------------
# Conditions and actions
# ----------------------------------------------------------------------

def _build_env(ctx: RuleContext) -> dict[str, Any]:
    env: dict[str, Any] = dict(ctx.params)
    env["ctx"] = ctx
    env["self"] = ctx.source
    env["occurrence"] = ctx.occurrence
    env["result"] = ctx.result
    env["sources"] = ctx.sources
    env["abort"] = ctx.abort
    env["rule"] = ctx.rule
    return env


class CompiledCondition(Persistent):
    """A rule condition compiled from expression source.

    Persistent: the *source text* is stored, the code object is transient
    and recompiled lazily after a reload — this is how DSL rules survive
    a database round-trip while lambda-based rules cannot.
    """

    _p_transient = ("_code",)

    def __init__(self, source: str) -> None:
        super().__init__()
        self.source = source.strip()
        self._check()

    def _check(self) -> None:
        try:
            compile(self.source, "<rule condition>", "eval")
        except SyntaxError as exc:
            raise DslError(f"bad condition {self.source!r}: {exc}") from exc

    def _compiled(self):
        code = getattr(self, "_code", None)
        if code is None:
            code = compile(self.source, "<rule condition>", "eval")
            object.__setattr__(self, "_code", code)
        return code

    def __call__(self, ctx: RuleContext) -> bool:
        return bool(eval(self._compiled(), _build_env(ctx)))  # noqa: S307

    def __repr__(self) -> str:
        return f"<condition {self.source!r}>"


class CompiledAction(Persistent):
    """A rule action compiled from statement source (see CompiledCondition)."""

    _p_transient = ("_code",)

    def __init__(self, source: str) -> None:
        super().__init__()
        body = source.strip()
        if body.lower() == "abort":  # the paper's Fig 9 writes "A : abort"
            body = "abort()"
        self.source = body
        self._check()

    def _check(self) -> None:
        try:
            compile(self.source, "<rule action>", "exec")
        except SyntaxError as exc:
            raise DslError(f"bad action {self.source!r}: {exc}") from exc

    def _compiled(self):
        code = getattr(self, "_code", None)
        if code is None:
            code = compile(self.source, "<rule action>", "exec")
            object.__setattr__(self, "_code", code)
        return code

    def __call__(self, ctx: RuleContext) -> None:
        exec(self._compiled(), _build_env(ctx))  # noqa: S102 - rule DSL

    def __repr__(self) -> str:
        return f"<action {self.source!r}>"


def compile_condition(source: str) -> CompiledCondition:
    """Compile a Python expression into a (persistable) rule condition.

    The expression sees ``self``, ``ctx``, ``occurrence``, ``result``,
    ``sources``, ``abort`` and the triggering parameters by name.
    """
    return CompiledCondition(source)


def compile_action(source: str) -> CompiledAction:
    """Compile a Python statement suite into a (persistable) rule action."""
    return CompiledAction(source)


# ----------------------------------------------------------------------
# Full rule specifications
# ----------------------------------------------------------------------

_LINE_KEYS = {
    "rule": "name",
    "r": "name",
    "on": "event",
    "e": "event",
    "event": "event",
    "if": "condition",
    "c": "condition",
    "condition": "condition",
    "do": "action",
    "a": "action",
    "then": "action",
    "action": "action",
    "mode": "coupling",
    "m": "coupling",
    "coupling": "coupling",
    "priority": "priority",
    "p": "priority",
}

_LINE_RE = re.compile(
    r"^\s*(?P<key>[A-Za-z]+)\s*[:\s]\s*(?P<value>.*)$"
)


def parse_rule(
    text: str,
    default_class: str | None = None,
    **overrides: Any,
) -> Rule:
    """Parse an R/E/C/A/M block into a live :class:`Rule`.

    Continuation lines (indented, or missing a known key prefix) extend
    the previous field, so multi-line actions work.  ``overrides`` pass
    straight to the Rule constructor (e.g. ``scheduler=...``).
    """
    fields: dict[str, str] = {}
    current: str | None = None
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line.strip():
            continue
        match = _LINE_RE.match(line)
        key = match.group("key").lower() if match else None
        if key in _LINE_KEYS:
            current = _LINE_KEYS[key]
            assert match is not None
            value = match.group("value").strip().rstrip(";")
            fields[current] = (
                f"{fields[current]}\n{value}" if current in fields else value
            )
        elif current is not None:
            fields[current] = f"{fields[current]}\n{line.strip()}"
        else:
            raise DslError(f"rule spec line {line!r} has no field prefix")

    if "event" not in fields:
        raise DslError("rule spec is missing its event (ON/E:) line")

    event = parse_event(fields["event"], default_class=default_class)
    condition = (
        compile_condition(fields["condition"])
        if "condition" in fields
        else None
    )
    action = compile_action(fields["action"]) if "action" in fields else None
    coupling = Coupling.parse(fields.get("coupling", "immediate"))
    priority = int(fields.get("priority", "0"))
    return Rule(
        name=fields.get("name"),
        event=event,
        condition=condition,
        action=action,
        coupling=coupling,
        priority=priority,
        **overrides,
    )
