"""Event specification and detection: the Sentinel event hierarchy.

``Event`` → ``Primitive`` | ``Conjunction`` | ``Disjunction`` |
``Sequence`` (the paper's Fig 5), plus the Snoop-style extensions
(``Any``, ``Not``, ``Aperiodic``, ``AperiodicStar``, ``Periodic``,
``Plus``), parameter contexts, and the event detector.
"""

from .base import Event, EventError, EventListener
from .contexts import ParameterContext
from .detector import DetectorStats, EventDetector
from .extended import Any, Aperiodic, AperiodicStar, At, Not, Periodic, Plus
from .operators import Conjunction, Disjunction, Operator, Sequence
from .primitive import Primitive
from .signature import EventSignature, SignatureError

__all__ = [
    "Event",
    "EventError",
    "EventListener",
    "EventSignature",
    "SignatureError",
    "Primitive",
    "Operator",
    "Conjunction",
    "Disjunction",
    "Sequence",
    "Any",
    "Not",
    "Aperiodic",
    "AperiodicStar",
    "Periodic",
    "Plus",
    "At",
    "ParameterContext",
    "EventDetector",
    "DetectorStats",
]
