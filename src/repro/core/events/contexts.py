"""Parameter contexts for composite-event detection.

When a composite event can be assembled from *several* stored constituent
occurrences, a policy must pick which ones to use and which to consume.
The 1993 paper leaves this open ("the event detector stores events along
with their parameters"); the Sentinel project's follow-on work (Snoop,
Chakravarthy et al.) named four policies, which we implement because they
change both semantics and detection cost (benchmark E16):

``RECENT``
    Only the most recent occurrence of each constituent participates;
    nothing is consumed, so a fresh terminator re-pairs with the latest
    initiators.  Suits sensor-style streams where only the newest reading
    matters.

``CHRONICLE``
    Occurrences pair in arrival (FIFO) order and are consumed by
    detection — every constituent occurrence is used at most once.  The
    default, matching transaction-log style processing.

``CONTINUOUS``
    Every initiator starts its own detection window; one terminator can
    complete (and consume) all open windows at once, yielding several
    simultaneous composite occurrences.

``CUMULATIVE``
    All pending occurrences of every constituent are folded into a single
    composite occurrence when the event completes; everything is consumed.
"""

from __future__ import annotations

import enum

__all__ = ["ParameterContext"]


class ParameterContext(enum.Enum):
    """Consumption policy for composite-event detection (see module doc)."""

    RECENT = "recent"
    CHRONICLE = "chronicle"
    CONTINUOUS = "continuous"
    CUMULATIVE = "cumulative"

    @classmethod
    def parse(cls, value: "str | ParameterContext") -> "ParameterContext":
        if isinstance(value, cls):
            return value
        try:
            return cls(value.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown parameter context {value!r}; expected one of "
                f"{[c.value for c in cls]}"
            ) from None
