"""The event detector (§3.2, Fig 2).

"Event detectors receive events from reactive objects, store them along
with their parameters, and use them to detect primitive and complex
events."  The detector owns a set of registered event graphs, routes each
incoming primitive occurrence to the matching leaf primitives (indexed by
``(modifier, method)`` so a feed touches only candidate leaves), and polls
the clock-driven operators.

Detectors are optional plumbing: events subscribed directly to reactive
objects, or fed through rules, detect on their own.  The detector earns
its keep when many event graphs share a stream — one ``feed`` per
occurrence instead of one delivery per graph — and in the benchmarks,
where its counters measure detection work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...obs.tracer import tracer as _tracer
from ..identity import IdentitySet
from ..notifiable import Notifiable
from ..occurrence import EventOccurrence, Occurrence
from .base import Event
from .extended import _Pollable
from .primitive import Primitive

__all__ = ["EventDetector", "DetectorStats"]

# Routing keys are pre-normalized at registration; at feed time the
# occurrence's method name is looked up in this intern table instead of
# re-lowercasing it for every occurrence.  Method-name cardinality is the
# size of the monitored event interfaces — tiny and bounded.
_lowered_names: dict[str, str] = {}


def _routing_name(method: str) -> str:
    low = _lowered_names.get(method)
    if low is None:
        low = _lowered_names[method] = method.lower()
    return low


@dataclass(slots=True)
class DetectorStats:
    """Counters exposed for the detection benchmarks (E12)."""

    fed: int = 0
    leaf_deliveries: int = 0
    signals: int = 0
    by_event: dict[str, int] = field(default_factory=dict)


class EventDetector(Notifiable):
    """Routes occurrences into registered event graphs and records signals.

    The detector is itself notifiable, so reactive objects can subscribe
    it directly: ``stock.subscribe(detector)`` sends every event the stock
    generates through all registered graphs.
    """

    _p_transient = Notifiable._p_transient + (
        "_roots",
        "_leaf_index",
        "_pollables",
        "_sink",
        "stats",
    )

    def __init__(self) -> None:
        super().__init__()
        self._init_transient_wiring()

    def _p_after_load(self) -> None:
        """Fresh transient wiring after materialization from storage."""
        self._init_transient_wiring()

    def _init_transient_wiring(self) -> None:
        object.__setattr__(self, "_roots", IdentitySet())
        object.__setattr__(self, "_leaf_index", {})
        object.__setattr__(self, "_pollables", IdentitySet())
        object.__setattr__(self, "stats", DetectorStats())
        object.__setattr__(self, "_sink", _SignalSink(self))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, event: Event) -> Event:
        """Add an event graph; returns the event for chaining."""
        if not self._roots.add(event):
            return event
        event.add_listener(self._sink)
        for leaf in event.leaves():
            if isinstance(leaf, _Pollable):
                self._pollables.add(leaf)
        self._index_leaves(event)
        return event

    def unregister(self, event: Event) -> None:
        if self._roots.discard(event):
            event.remove_listener(self._sink)
        self._rebuild_index()

    def roots(self) -> list[Event]:
        return self._roots.as_list()

    def _index_leaves(self, event: Event) -> None:
        stack: list[Event] = [event]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            kids = node.children()
            if kids:
                stack.extend(kids)
                if isinstance(node, _Pollable):
                    self._pollables.add(node)
            elif isinstance(node, Primitive):
                key = (node.signature.modifier, _routing_name(node.signature.method))
                bucket = self._leaf_index.get(key)
                if bucket is None:
                    bucket = self._leaf_index[key] = IdentitySet()
                bucket.add(node)

    def _rebuild_index(self) -> None:
        self._leaf_index.clear()
        self._pollables.clear()
        for root in self._roots:
            self._index_leaves(root)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def notify(self, occurrence: Occurrence) -> None:
        """Consumer entry point (reactive objects subscribe the detector)."""
        self.feed(occurrence)

    def feed(self, occurrence: Occurrence) -> None:
        """Route one primitive occurrence to the candidate leaves."""
        if not isinstance(occurrence, EventOccurrence):
            return
        if _tracer.enabled:
            with _tracer.span(
                "detect", f"feed:{occurrence.method}", seq=occurrence.seq
            ):
                self._feed_inner(occurrence)
            return
        self._feed_inner(occurrence)

    def _feed_inner(self, occurrence: EventOccurrence) -> None:
        self.stats.fed += 1
        key = (occurrence.modifier, _routing_name(occurrence.method))
        bucket = self._leaf_index.get(key)
        if bucket is not None:
            deliveries = 0
            for leaf in bucket:
                deliveries += 1
                leaf.notify(occurrence)
            self.stats.leaf_deliveries += deliveries
        if self._pollables:
            self.poll(occurrence.timestamp)

    def poll(self, now: float | None = None) -> int:
        """Drive the clock-based operators; returns signals emitted."""
        emitted = 0
        for pollable in self._pollables:
            emitted += pollable.poll(now)
        return emitted

    def tick(self, now: float | None = None) -> int:
        """Alias for :meth:`poll`, for simulation-style drivers."""
        return self.poll(now)

    # ------------------------------------------------------------------
    # Signal accounting
    # ------------------------------------------------------------------
    def _on_signal(self, event: Event, occurrence: Occurrence) -> None:
        self.stats.signals += 1
        self.stats.by_event[event.name] = (
            self.stats.by_event.get(event.name, 0) + 1
        )
        self.record(occurrence)

    def signals_of(self, event: Event | str) -> int:
        name = event if isinstance(event, str) else event.name
        return self.stats.by_event.get(name, 0)


class _SignalSink:
    """Listener adapter feeding root signals back into detector stats."""

    __slots__ = ("_detector",)

    def __init__(self, detector: EventDetector) -> None:
        self._detector = detector

    def on_event(self, event: Event, occurrence: Occurrence) -> None:
        self._detector._on_signal(event, occurrence)
