"""The event detector (§3.2, Fig 2).

"Event detectors receive events from reactive objects, store them along
with their parameters, and use them to detect primitive and complex
events."  The detector owns a set of registered event graphs, routes each
incoming primitive occurrence to the matching leaf primitives (indexed by
``(modifier, method)`` so a feed touches only candidate leaves), and polls
the clock-driven operators.

Detectors are optional plumbing: events subscribed directly to reactive
objects, or fed through rules, detect on their own.  The detector earns
its keep when many event graphs share a stream — one ``feed`` per
occurrence instead of one delivery per graph — and in the benchmarks,
where its counters measure detection work.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..notifiable import Notifiable
from ..occurrence import EventOccurrence, Occurrence
from .base import Event
from .extended import _Pollable
from .primitive import Primitive

__all__ = ["EventDetector", "DetectorStats"]


@dataclass(slots=True)
class DetectorStats:
    """Counters exposed for the detection benchmarks (E12)."""

    fed: int = 0
    leaf_deliveries: int = 0
    signals: int = 0
    by_event: dict[str, int] = field(default_factory=dict)


class EventDetector(Notifiable):
    """Routes occurrences into registered event graphs and records signals.

    The detector is itself notifiable, so reactive objects can subscribe
    it directly: ``stock.subscribe(detector)`` sends every event the stock
    generates through all registered graphs.
    """

    _p_transient = Notifiable._p_transient + (
        "_roots",
        "_leaf_index",
        "_pollables",
        "_sink",
        "stats",
    )

    def __init__(self) -> None:
        super().__init__()
        object.__setattr__(self, "_roots", [])
        object.__setattr__(self, "_leaf_index", defaultdict(list))
        object.__setattr__(self, "_pollables", [])
        object.__setattr__(self, "stats", DetectorStats())
        object.__setattr__(self, "_sink", _SignalSink(self))

    def _p_after_load(self) -> None:
        """Fresh transient wiring after materialization from storage."""
        object.__setattr__(self, "_roots", [])
        object.__setattr__(self, "_leaf_index", defaultdict(list))
        object.__setattr__(self, "_pollables", [])
        object.__setattr__(self, "stats", DetectorStats())
        object.__setattr__(self, "_sink", _SignalSink(self))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, event: Event) -> Event:
        """Add an event graph; returns the event for chaining."""
        if any(existing is event for existing in self._roots):
            return event
        self._roots.append(event)
        event.add_listener(self._sink)
        for leaf in event.leaves():
            if isinstance(leaf, _Pollable):
                self._pollables.append(leaf)
        self._index_leaves(event)
        return event

    def unregister(self, event: Event) -> None:
        for i, existing in enumerate(self._roots):
            if existing is event:
                del self._roots[i]
                event.remove_listener(self._sink)
                break
        self._rebuild_index()

    def roots(self) -> list[Event]:
        return list(self._roots)

    def _index_leaves(self, event: Event) -> None:
        stack: list[Event] = [event]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            kids = node.children()
            if kids:
                stack.extend(kids)
                if isinstance(node, _Pollable) and not any(
                    p is node for p in self._pollables
                ):
                    self._pollables.append(node)
            elif isinstance(node, Primitive):
                key = (node.signature.modifier, node.signature.method.lower())
                bucket = self._leaf_index[key]
                if not any(existing is node for existing in bucket):
                    bucket.append(node)

    def _rebuild_index(self) -> None:
        self._leaf_index.clear()
        self._pollables.clear()
        for root in self._roots:
            self._index_leaves(root)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def notify(self, occurrence: Occurrence) -> None:
        """Consumer entry point (reactive objects subscribe the detector)."""
        self.feed(occurrence)

    def feed(self, occurrence: Occurrence) -> None:
        """Route one primitive occurrence to the candidate leaves."""
        if not isinstance(occurrence, EventOccurrence):
            return
        self.stats.fed += 1
        key = (occurrence.modifier, occurrence.method.lower())
        for leaf in self._leaf_index.get(key, ()):
            self.stats.leaf_deliveries += 1
            leaf.notify(occurrence)
        self.poll(occurrence.timestamp)

    def poll(self, now: float | None = None) -> int:
        """Drive the clock-based operators; returns signals emitted."""
        emitted = 0
        for pollable in self._pollables:
            emitted += pollable.poll(now)
        return emitted

    def tick(self, now: float | None = None) -> int:
        """Alias for :meth:`poll`, for simulation-style drivers."""
        return self.poll(now)

    # ------------------------------------------------------------------
    # Signal accounting
    # ------------------------------------------------------------------
    def _on_signal(self, event: Event, occurrence: Occurrence) -> None:
        self.stats.signals += 1
        self.stats.by_event[event.name] = (
            self.stats.by_event.get(event.name, 0) + 1
        )
        self.record(occurrence)

    def signals_of(self, event: Event | str) -> int:
        name = event if isinstance(event, str) else event.name
        return self.stats.by_event.get(name, 0)


class _SignalSink:
    """Listener adapter feeding root signals back into detector stats."""

    __slots__ = ("_detector",)

    def __init__(self, detector: EventDetector) -> None:
        self._detector = detector

    def on_event(self, event: Event, occurrence: Occurrence) -> None:
        self._detector._on_signal(event, occurrence)
