"""Extended event operators.

Section 7 of the paper points at richer event languages as future work;
the Sentinel project delivered them in the Snoop algebra.  We implement
the standard set on top of the same operator machinery, so applications
(and the benchmarks) can compare detection cost across operator classes:

* :class:`Any` — *m out of n* distinct events occur,
* :class:`Not` — an event does **not** occur inside an interval,
* :class:`Aperiodic` — every occurrence of an event inside an interval,
* :class:`AperiodicStar` — the accumulated occurrences, at interval end,
* :class:`Periodic` — a clock tick every ``period`` seconds inside an
  interval,
* :class:`Plus` — a point ``delta`` seconds after each occurrence.

The temporal operators (:class:`Periodic`, :class:`Plus`) are *polled*:
they emit pending signals when :meth:`poll` is called — which the
:class:`~repro.core.events.detector.EventDetector` does on every fed
occurrence and on explicit ``tick()`` calls — using the pluggable clock,
so tests drive them deterministically with a manual clock.
"""

from __future__ import annotations

from typing import Iterable

from ..clock import get_clock
from ..occurrence import (
    CompositeOccurrence,
    EventModifier,
    EventOccurrence,
    Occurrence,
)
from .base import Event, EventError
from .contexts import ParameterContext
from .operators import Operator

__all__ = ["Any", "Not", "Aperiodic", "AperiodicStar", "Periodic", "Plus", "At"]

# The Any operator below shadows the builtin; keep a handle to it.
_builtin_any = any


class Any(Operator):
    """Signals when ``m`` *distinct* constituent events have occurred.

    ``Any(2, e1, e2, e3)`` raises as soon as two different constituents
    have pending occurrences.  CHRONICLE (default) consumes the used
    occurrences; RECENT keeps the latest per constituent and re-signals on
    every arrival that completes a fresh m-subset.
    """

    def __init__(
        self,
        m: int,
        *children: Event,
        name: str | None = None,
        context: ParameterContext | str = ParameterContext.CHRONICLE,
    ) -> None:
        if m < 1 or m > len(children):
            raise EventError(
                f"Any needs 1 <= m <= {len(children)} children, got m={m}"
            )
        super().__init__(*children, name=name, context=context)
        self.m = m

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        buffers = self._buffers()
        if self.context is ParameterContext.RECENT:
            slot = buffers[index]
            slot.clear()
            slot.append(occurrence)
        else:
            buffers[index].append(occurrence)
        filled = [i for i, b in enumerate(buffers) if b]
        if len(filled) < self.m:
            return []
        # Choose the m constituents whose pending heads are oldest, so the
        # composite is the one that completed first.
        chosen = sorted(filled, key=lambda i: buffers[i][0].seq)[: self.m]
        parts = [buffers[i][0] for i in chosen]
        if self.context is not ParameterContext.RECENT:
            for i in chosen:
                buffers[i].popleft()
        return [CompositeOccurrence.of(self.name, tuple(parts))]


class Not(Operator):
    """Non-occurrence: ``middle`` does not happen between ``left`` and
    ``right``.

    ``Not(middle, left, right)`` signals on a ``right`` occurrence if some
    earlier ``left`` occurrence opened a window in which no ``middle``
    occurrence fell.  Window initiators are consumed whether the window
    succeeds or is spoiled.
    """

    def __init__(
        self,
        middle: Event,
        left: Event,
        right: Event,
        name: str | None = None,
        context: ParameterContext | str = ParameterContext.CHRONICLE,
    ) -> None:
        super().__init__(left, middle, right, name=name, context=context)

    _LEFT, _MIDDLE, _RIGHT = 0, 1, 2

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        buffers = self._buffers()
        if index in (self._LEFT, self._MIDDLE):
            if index == self._LEFT and self.context is ParameterContext.RECENT:
                buffers[self._LEFT].clear()
            buffers[index].append(occurrence)
            return []

        initiators = buffers[self._LEFT]
        spoilers = buffers[self._MIDDLE]
        composites: list[Occurrence] = []
        survivors = []
        for initiator in list(initiators):
            if initiator.seq >= occurrence.seq:
                survivors.append(initiator)
                continue
            spoiled = _builtin_any(
                initiator.seq < s.seq < occurrence.seq for s in spoilers
            )
            if not spoiled:
                composites.append(
                    CompositeOccurrence.of(
                        self.name, (initiator, occurrence)
                    )
                )
                if self.context is ParameterContext.CHRONICLE and composites:
                    # Chronicle: only the oldest clean window signals.
                    break
        # All windows at or before this terminator are closed now.
        initiators.clear()
        initiators.extend(survivors)
        spoilers.clear()
        if self.context is ParameterContext.CHRONICLE:
            return composites[:1]
        return composites


class Aperiodic(Operator):
    """Each ``middle`` occurrence inside an open ``[left, right)`` window.

    ``Aperiodic(middle, left, right)`` signals for every ``middle``
    occurrence while at least one window opened by ``left`` has not yet
    been closed by ``right``.
    """

    def __init__(
        self,
        middle: Event,
        left: Event,
        right: Event,
        name: str | None = None,
        context: ParameterContext | str = ParameterContext.CHRONICLE,
    ) -> None:
        super().__init__(left, middle, right, name=name, context=context)

    _LEFT, _MIDDLE, _RIGHT = 0, 1, 2

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        buffers = self._buffers()
        windows = buffers[self._LEFT]
        if index == self._LEFT:
            if self.context is ParameterContext.RECENT:
                windows.clear()
            windows.append(occurrence)
            return []
        if index == self._RIGHT:
            windows.clear()
            return []
        if not windows:
            return []
        opener = windows[-1] if self.context is ParameterContext.RECENT else windows[0]
        return [CompositeOccurrence.of(self.name, (opener, occurrence))]


class AperiodicStar(Operator):
    """Cumulative variant (Snoop's ``A*``): signal once, at window close,
    with every ``middle`` occurrence that fell inside the window."""

    def __init__(
        self,
        middle: Event,
        left: Event,
        right: Event,
        name: str | None = None,
        context: ParameterContext | str = ParameterContext.CUMULATIVE,
    ) -> None:
        super().__init__(left, middle, right, name=name, context=context)

    _LEFT, _MIDDLE, _RIGHT = 0, 1, 2

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        buffers = self._buffers()
        windows = buffers[self._LEFT]
        collected = buffers[self._MIDDLE]
        if index == self._LEFT:
            if not windows:
                windows.append(occurrence)
            return []
        if index == self._MIDDLE:
            if windows:
                collected.append(occurrence)
            return []
        if not windows:
            return []
        opener = windows.popleft()
        windows.clear()
        parts = (opener, *collected, occurrence)
        collected.clear()
        return [CompositeOccurrence.of(self.name, parts)]


class _Pollable(Operator):
    """Shared machinery for clock-driven operators."""

    def poll(self, now: float | None = None) -> int:
        """Emit every signal whose due time has passed; returns the count."""
        if not self.enabled:
            return 0
        now = get_clock().now() if now is None else now
        emitted = 0
        for occurrence in self._due_signals(now):
            self.signal(occurrence)
            emitted += 1
        return emitted

    def _due_signals(self, now: float) -> Iterable[Occurrence]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _synthetic(self, when: float, **params: object) -> EventOccurrence:
        return EventOccurrence(
            class_name="<clock>",
            method=self.name,
            modifier=EventModifier.EXPLICIT,
            params=dict(params),
            timestamp=when,
        )


class Periodic(_Pollable):
    """A tick every ``period`` seconds between ``left`` and ``right``.

    ``Periodic(left, period, right)``: each ``left`` occurrence opens a
    window; while it is open, :meth:`poll` emits one signal per elapsed
    period.  A ``right`` occurrence closes all open windows.
    """

    def __init__(
        self,
        left: Event,
        period: float,
        right: Event,
        name: str | None = None,
    ) -> None:
        if period <= 0:
            raise EventError("period must be positive")
        super().__init__(left, right, name=name)
        self.period = float(period)
        # windows: list of [opener_occurrence, next_due_time, tick_index]
        self._windows: list[list] = []

    _p_transient = Operator._p_transient + ("_windows",)

    def _window_list(self) -> list[list]:
        windows = getattr(self, "_windows", None)
        if windows is None:
            windows = []
            object.__setattr__(self, "_windows", windows)
        return windows

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        windows = self._window_list()
        if index == 0:
            windows.append([occurrence, occurrence.timestamp + self.period, 1])
        else:
            windows.clear()
        return []

    def _due_signals(self, now: float) -> Iterable[Occurrence]:
        for window in self._window_list():
            opener, due, tick = window
            while due <= now:
                yield CompositeOccurrence.of(
                    self.name,
                    (opener, self._synthetic(due, tick=tick)),
                )
                tick += 1
                due += self.period
            window[1], window[2] = due, tick


class At(_Pollable):
    """An absolute point in time: signals once when the clock passes it.

    ``At`` has no constituent events — it is a pure temporal event, the
    absolute counterpart of :class:`Plus`.  Construct with the target
    timestamp (same time base as the active clock) and poll like the
    other temporal operators::

        deadline = At(clock.now() + 3600, name="one-hour-deadline")
        detector.register(deadline)
    """

    def __init__(self, when: float, name: str | None = None) -> None:
        # _Pollable requires children; a dummy-free construction needs a
        # direct Event.__init__ call, bypassing Operator's child check.
        Event.__init__(self, name)
        self.when = float(when)
        self.fired_at: float | None = None

    def children(self) -> tuple[Event, ...]:
        return ()

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        return []  # pragma: no cover - no children ever signal

    def _due_signals(self, now: float) -> Iterable[Occurrence]:
        if self.fired_at is None and now >= self.when:
            self.fired_at = now
            yield CompositeOccurrence.of(self.name, (self._synthetic(self.when),))

    def reset(self) -> None:
        Event.reset(self)
        self.fired_at = None


class Plus(_Pollable):
    """A point ``delta`` seconds after each occurrence of ``base``."""

    def __init__(self, base: Event, delta: float, name: str | None = None) -> None:
        if delta < 0:
            raise EventError("delta must be non-negative")
        super().__init__(base, name=name)
        self.delta = float(delta)
        self._due: list[tuple[float, Occurrence]] = []

    _p_transient = Operator._p_transient + ("_due",)

    def _due_list(self) -> list[tuple[float, Occurrence]]:
        due = getattr(self, "_due", None)
        if due is None:
            due = []
            object.__setattr__(self, "_due", due)
        return due

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        self._due_list().append((occurrence.timestamp + self.delta, occurrence))
        return []

    def _due_signals(self, now: float) -> Iterable[Occurrence]:
        due_list = self._due_list()
        ready = [(when, occ) for when, occ in due_list if when <= now]
        due_list[:] = [(when, occ) for when, occ in due_list if when > now]
        for when, occ in sorted(ready):
            yield CompositeOccurrence.of(
                self.name, (occ, self._synthetic(when))
            )
