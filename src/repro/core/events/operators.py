"""Composite-event operators (§4.3, Fig 5/6).

The paper supports three operators — **conjunction**, **disjunction** and
**sequence** — built as subclasses of ``Event`` so that composite events
are first-class objects like everything else.  Our implementations are
n-ary generalizations of the paper's binary definitions (the binary case
behaves exactly as described) and are parameterized by a
:class:`~repro.core.events.contexts.ParameterContext` governing which
stored constituent occurrences pair up and which are consumed.

Semantics, paper wording first:

* ``Conjunction(E1, E2)`` — "signaled when both E1 and E2 occur,
  regardless of the order of their occurrence."
* ``Disjunction(E1, E2)`` — "signal an event when either E1 or E2 occurs."
* ``Sequence(E1, E2)`` — "signaled when the event E2 occurs, provided E1
  has occurred earlier"; for composite children, "when the last component
  of E2 occurs provided all the components of E1 have occurred" — which is
  exactly a comparison of the composites' terminating sequence numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable

from ...obs.tracer import tracer as _tracer
from ..occurrence import CompositeOccurrence, Occurrence
from .base import Event, EventError, validate_children
from .contexts import ParameterContext

__all__ = ["Operator", "Conjunction", "Disjunction", "Sequence"]


class Operator(Event):
    """Base class of composite events: children plus detection buffers."""

    _p_transient = Event._p_transient + ("_pending",)

    def __init__(
        self,
        *children: Event,
        name: str | None = None,
        context: ParameterContext | str = ParameterContext.CHRONICLE,
    ) -> None:
        validate_children(type(self).__name__, children)
        super().__init__(name)
        for child in children:
            if child.contains(self):  # pragma: no cover - defensive
                raise EventError("event graphs must be acyclic")
        self.child_events = list(children)
        self.context = ParameterContext.parse(context)
        object.__setattr__(self, "_pending", self._fresh_buffers())
        for child in children:
            child.add_listener(self)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def children(self) -> tuple[Event, ...]:
        return tuple(self.child_events)

    def _p_after_load(self) -> None:
        """Re-attach listener edges after materialization from storage."""
        for child in self.child_events:
            child.add_listener(self)

    def _buffers(self) -> list[Deque[Occurrence]]:
        pending = getattr(self, "_pending", None)
        if pending is None:
            pending = self._fresh_buffers()
            object.__setattr__(self, "_pending", pending)
        return pending

    def _fresh_buffers(self) -> list[Deque[Occurrence]]:
        return [deque() for _ in getattr(self, "child_events", ())]

    def _child_index(self, child: Event) -> int:
        for i, candidate in enumerate(self.child_events):
            if candidate is child:
                return i
        raise EventError(f"{child!r} is not a child of {self!r}")

    # ------------------------------------------------------------------
    # Listener protocol (a child signalled)
    # ------------------------------------------------------------------
    def on_event(self, child: Event, occurrence: Occurrence) -> None:
        if not self.enabled:
            return
        index = self._child_index(child)
        if _tracer.enabled:
            return self._on_event_traced(child, index, occurrence)
        for signalled in self.combine(index, occurrence):
            self.signal(signalled)

    def _on_event_traced(
        self, child: Event, index: int, occurrence: Occurrence
    ) -> None:
        """Tracing slow path: records the operator evaluation — including
        *partial* matches, where a child signal is buffered without the
        composite signalling (``signalled=0`` with non-empty ``pending``).
        """
        composites = list(self.combine(index, occurrence))
        _tracer.point(
            "detect",
            self.name,
            operator=type(self).__name__,
            context=self.context.value,
            child=child.name,
            child_index=index,
            seq=occurrence.seq,
            signalled=len(composites),
            pending=[len(b) for b in self._buffers()],
        )
        for signalled in composites:
            self.signal(signalled)

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        """Update buffers with a child signal; yield completed composites."""
        raise NotImplementedError  # pragma: no cover - abstract

    def reset(self) -> None:
        super().reset()
        object.__setattr__(self, "_pending", self._fresh_buffers())
        for child in self.child_events:
            child.reset()

    def __repr__(self) -> str:
        inner = ", ".join(c.name for c in self.child_events)
        return f"<{type(self).__name__} {self.name!r} ({inner}) {self.context.value}>"

    _expression_keyword: str | None = None

    def to_expression(self) -> str:
        if self._expression_keyword is None:
            return super().to_expression()
        inner = f" {self._expression_keyword} ".join(
            child.to_expression() for child in self.child_events
        )
        return f"({inner})"


class Conjunction(Operator):
    """All children must occur, in any order (the paper's ``And``)."""

    _expression_keyword = "and"

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        buffers = self._buffers()
        context = self.context

        if context is ParameterContext.RECENT:
            slot = buffers[index]
            slot.clear()
            slot.append(occurrence)
            if all(buffers):
                return [self._compose([b[-1] for b in buffers])]
            return []

        buffers[index].append(occurrence)
        if not all(buffers):
            return []

        if context is ParameterContext.CHRONICLE:
            parts = [b.popleft() for b in buffers]
            return [self._compose(parts)]

        if context is ParameterContext.CONTINUOUS:
            # The arriving occurrence terminates every open combination of
            # the other children's pending occurrences.
            others = [
                (i, list(b)) for i, b in enumerate(buffers) if i != index
            ]
            composites = [
                self._compose(list(combo) + [occurrence])
                for combo in _cartesian([occs for _i, occs in others])
            ]
            for i, _occs in others:
                buffers[i].clear()
            buffers[index].clear()
            return composites

        # CUMULATIVE: one composite folding everything pending.
        parts: list[Occurrence] = []
        for buffer in buffers:
            parts.extend(buffer)
            buffer.clear()
        return [self._compose(parts)]

    def _compose(self, parts: list[Occurrence]) -> CompositeOccurrence:
        return CompositeOccurrence.of(self.name, tuple(parts))


class Disjunction(Operator):
    """Signals whenever any child signals (the paper's ``Or``).

    Stateless: contexts do not change its behaviour.
    """

    _expression_keyword = "or"

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        return [CompositeOccurrence.of(self.name, (occurrence,))]


class Sequence(Operator):
    """Left child, then right child, in detection order (``;``).

    Binary, per the paper; chains fold left: ``a >> b >> c`` is
    ``Sequence(Sequence(a, b), c)``.
    """

    _expression_keyword = "then"

    def __init__(
        self,
        first: Event,
        second: Event,
        name: str | None = None,
        context: ParameterContext | str = ParameterContext.CHRONICLE,
    ) -> None:
        super().__init__(first, second, name=name, context=context)

    def combine(self, index: int, occurrence: Occurrence) -> Iterable[Occurrence]:
        buffers = self._buffers()
        initiators = buffers[0]
        context = self.context

        if index == 0:
            if context is ParameterContext.RECENT:
                initiators.clear()
            initiators.append(occurrence)
            return []

        # The right child signalled: pair with initiators that happened
        # strictly earlier (composite children compare by terminator seq).
        eligible = [i for i in initiators if i.seq < occurrence.seq]
        if not eligible:
            return []

        if context is ParameterContext.RECENT:
            return [self._compose([eligible[-1], occurrence])]

        if context is ParameterContext.CHRONICLE:
            first = eligible[0]
            initiators.remove(first)
            return [self._compose([first, occurrence])]

        if context is ParameterContext.CONTINUOUS:
            composites = [self._compose([i, occurrence]) for i in eligible]
            for i in eligible:
                initiators.remove(i)
            return composites

        # CUMULATIVE: all earlier initiators fold into one composite.
        composites = [self._compose(list(eligible) + [occurrence])]
        for i in eligible:
            initiators.remove(i)
        return composites

    def _compose(self, parts: list[Occurrence]) -> CompositeOccurrence:
        return CompositeOccurrence.of(self.name, tuple(parts))


def _cartesian(buffers: list[list[Occurrence]]) -> Iterable[tuple[Occurrence, ...]]:
    if not buffers:
        yield ()
        return
    head, *rest = buffers
    for occ in head:
        for combo in _cartesian(rest):
            yield (occ, *combo)
