"""Primitive events (§4.3, §4.6).

A primitive event is "a message sent to an object" — the invocation
(begin-of-method) or return (end-of-method) of a method declared in a
reactive class's event interface.  Primitive event objects are created
from the paper's textual signatures::

    empsal = Primitive("end Employee::Set-Salary(float x)")

and signal whenever a matching occurrence reaches them.  An optional
instance restriction narrows the event to particular source objects —
this is how an event object (rather than the subscription mechanism) can
express "Fred's salary changed" as opposed to "some employee's salary
changed".
"""

from __future__ import annotations

from typing import Any, Iterable

from ..occurrence import EventOccurrence, Occurrence
from .base import Event
from .signature import EventSignature

__all__ = ["Primitive"]


class Primitive(Event):
    """A begin/end-of-method event identified by its signature."""

    def __init__(
        self,
        signature: str | EventSignature,
        name: str | None = None,
        sources: Iterable[Any] | None = None,
    ) -> None:
        if isinstance(signature, str):
            signature = EventSignature.parse(signature)
        super().__init__(name or str(signature))
        # The parsed signature is transient; the text round-trips through
        # storage and is re-parsed on first use after a fetch.
        self.signature_text = str(signature)
        object.__setattr__(self, "_signature", signature)
        if sources is not None:
            object.__setattr__(self, "_source_filter", list(sources))
        # Deduplication: the same occurrence can reach a shared primitive
        # through several paths (two rules feeding one tree); the global
        # sequence is monotonic, so one high-water mark suffices.
        self._last_seq = 0

    _p_transient = Event._p_transient + ("_signature", "_source_filter", "_guard")

    #: Class-level defaults so instances materialized from storage (which
    #: skip ``__init__``) behave: no restriction, signature re-parsed lazily.
    _source_filter: list[Any] | None = None

    @property
    def signature(self) -> EventSignature:
        parsed = getattr(self, "_signature", None)
        if parsed is None:
            parsed = EventSignature.parse(self.signature_text)
            object.__setattr__(self, "_signature", parsed)
        return parsed

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches(self, occurrence: EventOccurrence) -> bool:
        """Signature match plus instance restriction plus guard."""
        if not self.signature.matches(occurrence):
            return False
        if self._source_filter is not None and not any(
            occurrence.source is obj for obj in self._source_filter
        ):
            return False
        guard = self._guard
        return guard is None or bool(guard(occurrence))

    def restrict_to(self, *sources: Any) -> "Primitive":
        """Limit this event to occurrences produced by ``sources``."""
        self._source_filter = list(sources)
        return self

    #: Optional detection-level predicate over the occurrence (see where()).
    _guard = None

    def where(self, predicate) -> "Primitive":
        """Add a detection-level guard on the occurrence.

        ``predicate(occurrence)`` must hold for the event to raise — a
        *masked* primitive event (e.g. "salary set above 100k"), filtering
        before any rule is triggered rather than in rule conditions.
        Guards are transient (predicates are arbitrary callables); a
        reloaded event is unguarded.
        """
        object.__setattr__(self, "_guard", predicate)
        return self

    def process(self, occurrence: Occurrence) -> Iterable[Occurrence]:
        if not isinstance(occurrence, EventOccurrence):
            return ()
        if occurrence.seq <= self._last_seq:
            return ()
        if not self.matches(occurrence):
            return ()
        self._last_seq = occurrence.seq
        return (occurrence,)

    def reset(self) -> None:
        super().reset()
        self._last_seq = 0

    def to_expression(self) -> str:
        return self.signature_text

    def __repr__(self) -> str:
        restricted = " restricted" if self._source_filter is not None else ""
        return f"<Primitive {self.signature!s}{restricted}>"
