"""Event signatures.

The paper names primitive events with textual signatures (§4.6)::

    Event* empsal = new Primitive ("end Employee::Set-Salary(float x)")

An :class:`EventSignature` is the parsed form: *when* the event is raised
(begin/end), *which class*, *which method*, and the formal parameters.
Method names are normalized (hyphens become underscores, case preserved)
so the paper's C++ spellings match Python method names.

The grammar accepted::

    signature := modifier class '::' method params?
    modifier  := 'begin' | 'end' | 'before' | 'after' | 'explicit'
    params    := '(' [param (',' param)*] ')'
    param     := [type_name] name
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..occurrence import EventModifier, EventOccurrence

__all__ = ["EventSignature", "SignatureError", "normalize_method_name"]


class SignatureError(ValueError):
    """The signature text does not match the grammar."""


_SIGNATURE_RE = re.compile(
    r"""^\s*
    (?P<modifier>begin|end|before|after|explicit)\s+
    (?P<cls>[A-Za-z_][A-Za-z0-9_\-]*)\s*::\s*
    (?P<method>[A-Za-z_][A-Za-z0-9_\-]*)\s*
    (?:\((?P<params>[^)]*)\))?
    \s*$""",
    re.VERBOSE | re.IGNORECASE,
)

_PARAM_RE = re.compile(
    r"""^\s*
    (?:(?P<type>[A-Za-z_][A-Za-z0-9_:<>\*\s]*?)\s+)?
    (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    \s*\*?\s*$""",
    re.VERBOSE,
)


def normalize_method_name(name: str) -> str:
    """Map the paper's C++ method spellings onto Python identifiers.

    ``Set-Salary`` → ``Set_Salary``; matching against occurrences is
    case-insensitive, so ``set_salary`` in Python code still matches.
    """
    return name.replace("-", "_")


@dataclass(frozen=True, slots=True)
class EventSignature:
    """A parsed primitive-event signature."""

    modifier: EventModifier
    class_name: str
    method: str
    param_names: tuple[str, ...] = ()
    param_types: tuple[str | None, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "EventSignature":
        """Parse ``"end Employee::Set-Salary(float x)"`` style text."""
        match = _SIGNATURE_RE.match(text)
        if match is None:
            raise SignatureError(
                f"bad event signature {text!r}; expected "
                "'<begin|end> Class::method(params)'"
            )
        names: list[str] = []
        types: list[str | None] = []
        raw_params = match.group("params")
        if raw_params and raw_params.strip():
            for part in raw_params.split(","):
                param = _PARAM_RE.match(part)
                if param is None:
                    raise SignatureError(
                        f"bad parameter {part.strip()!r} in signature {text!r}"
                    )
                names.append(param.group("name"))
                declared = param.group("type")
                types.append(declared.strip() if declared else None)
        return cls(
            modifier=EventModifier.parse(match.group("modifier")),
            class_name=normalize_method_name(match.group("cls")),
            method=normalize_method_name(match.group("method")),
            param_names=tuple(names),
            param_types=tuple(types),
        )

    def matches(self, occurrence: EventOccurrence) -> bool:
        """True when ``occurrence`` is an instance of this primitive event.

        Matching is by modifier, method name (case-insensitive after
        normalization), and class: the occurrence's own class or any of
        its persistent superclasses may carry the signature's class name,
        so events declared on a base class cover subclass instances.
        """
        if occurrence.modifier is not self.modifier:
            return False
        if occurrence.method.lower() != self.method.lower():
            return False
        if occurrence.class_name.lower() == self.class_name.lower():
            return True
        return any(
            name.lower() == self.class_name.lower()
            for name in occurrence.class_names
        )

    def __str__(self) -> str:
        if self.param_names:
            rendered = ", ".join(
                f"{t} {n}" if t else n
                for t, n in zip(self.param_types, self.param_names)
            )
            params = f"({rendered})"
        else:
            params = "()"
        return f"{self.modifier.value} {self.class_name}::{self.method}{params}"
