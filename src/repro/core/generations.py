"""Generation counters for the consumer-snapshot cache.

Reactive objects cache their resolved consumer set (instance subscribers
merged with class-level rules along the MRO) so a monitored method call
does not re-derive it.  The cache is validated by two monotonic counters:

* a **per-instance** subscription generation, bumped by
  ``Reactive.subscribe``/``unsubscribe`` (lives on the instance);
* the **class generation** defined here, bumped whenever *any* class's
  ``_class_consumers`` list changes or a rule's enabled flag flips.

A single process-wide class generation (rather than one per class) keeps
the hot-path check to one integer comparison; class-level rule mutations
are rare enough that invalidating every instance cache on each one is the
right trade.

``_class_consumers`` lists are :class:`ClassConsumerList` instances so
that *direct* mutation — the benchmarks append rules to
``Stock._class_consumers`` without going through any API — still bumps the
generation and invalidates the caches.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "class_generation",
    "bump_class_generation",
    "ClassConsumerList",
]

# A one-element list, not a bare int: hot paths read ``_class_gen[0]``
# through the imported reference, and writers mutate in place.
_class_gen: list[int] = [0]


def class_generation() -> int:
    """Current value of the process-wide class-consumer generation."""
    return _class_gen[0]


def bump_class_generation() -> int:
    """Invalidate every consumer-snapshot cache; returns the new value."""
    _class_gen[0] += 1
    return _class_gen[0]


class ClassConsumerList(list):
    """A list whose mutations bump the class generation.

    Installed by ``ReactiveMeta`` as every reactive class's
    ``_class_consumers``, so rule attachment/detachment — via
    ``materialize_class_rules`` or direct list surgery — is always
    observed by the caches.
    """

    __slots__ = ()

    def append(self, item: Any) -> None:
        super().append(item)
        bump_class_generation()

    def extend(self, items: Iterable[Any]) -> None:
        super().extend(items)
        bump_class_generation()

    def insert(self, index: int, item: Any) -> None:
        super().insert(index, item)
        bump_class_generation()

    def remove(self, item: Any) -> None:
        super().remove(item)
        bump_class_generation()

    def pop(self, index: int = -1) -> Any:
        value = super().pop(index)
        bump_class_generation()
        return value

    def clear(self) -> None:
        super().clear()
        bump_class_generation()

    def __setitem__(self, index: Any, value: Any) -> None:
        super().__setitem__(index, value)
        bump_class_generation()

    def __delitem__(self, index: Any) -> None:
        super().__delitem__(index)
        bump_class_generation()

    def __iadd__(self, items: Iterable[Any]) -> "ClassConsumerList":
        super().extend(items)
        bump_class_generation()
        return self
