"""Identity-keyed collections for consumer/listener bookkeeping.

Subscription lists throughout the system are *identity* sets: an object is
subscribed at most once, and membership means "this exact object", never
``__eq__`` equality (two distinct rules can compare equal but must both be
notified).  The seed implementation expressed this with
``any(existing is x for existing in items)`` scans, which makes every
subscribe/register O(n) and a subscribe-all loop O(n²).

:class:`IdentitySet` keeps the insertion-ordered list (delivery order is
part of the observable behaviour) next to an ``id()``-keyed set, so
membership tests and deduplicating inserts are O(1).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["IdentitySet"]


class IdentitySet:
    """An insertion-ordered set keyed by object identity.

    Holds strong references (members stay alive while subscribed), so the
    ``id()`` keys cannot be recycled behind our back.
    """

    __slots__ = ("_items", "_ids")

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items: list[Any] = []
        self._ids: set[int] = set()
        for item in items:
            self.add(item)

    def add(self, item: Any) -> bool:
        """Insert ``item`` if absent; returns True when it was added."""
        key = id(item)
        if key in self._ids:
            return False
        self._ids.add(key)
        self._items.append(item)
        return True

    def discard(self, item: Any) -> bool:
        """Remove ``item`` if present; returns True when it was removed."""
        key = id(item)
        if key not in self._ids:
            return False
        self._ids.remove(key)
        for i, existing in enumerate(self._items):
            if existing is item:
                del self._items[i]
                break
        return True

    def __contains__(self, item: Any) -> bool:
        return id(item) in self._ids

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def clear(self) -> None:
        self._items.clear()
        self._ids.clear()

    def as_list(self) -> list[Any]:
        """A copy of the members in insertion order."""
        return list(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdentitySet({self._items!r})"
