"""The external monitoring viewpoint (§2.1, §3.1).

"There is a need to monitor pre-defined objects, preferably without
having to change their class definitions for that purpose."  This module
is that need packaged as one call: :func:`monitor` builds a rule from an
event specification, condition and action, and subscribes it to the given
objects — which may be instances of *different* classes, defined long
before the rule, with no idea who would ever watch them.

Example (the paper's §2 portfolio rule)::

    purchase = monitor(
        [ibm, dow_jones],
        on="end Stock::set_price(float price) and "
           "end FinancialInfo::set_value(float value)",
        condition=lambda ctx: ibm.price < 80 and dow_jones.change < 3.4,
        action=lambda ctx: parker.purchase("IBM", 100),
        name="Purchase",
    )
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from .coupling import Coupling
from .events.base import Event
from .reactive import Reactive
from .rules import Rule

__all__ = ["monitor", "unmonitor"]


def monitor(
    objects: "Reactive | Iterable[Reactive]",
    on: "str | Event",
    condition: "Callable | str | None" = None,
    action: "Callable | str | None" = None,
    name: str | None = None,
    coupling: "Coupling | str" = Coupling.IMMEDIATE,
    priority: int = 0,
    scheduler: Any = None,
    register: bool = True,
) -> Rule:
    """Create a rule and subscribe it to ``objects``.

    ``on`` accepts an event expression (see :mod:`repro.core.dsl`) or a
    pre-built event; string conditions/actions go through the DSL
    compiler.  The returned rule is live immediately; ``rule.disable()``
    or :func:`unmonitor` stops it.
    """
    from .dsl import compile_action, compile_condition, parse_event
    from .registry import default_registry

    if isinstance(on, str):
        event = parse_event(on)
    elif isinstance(on, Event):
        event = on
    else:
        raise TypeError(f"on must be an event expression or Event, got {on!r}")
    if isinstance(condition, str):
        condition = compile_condition(condition)
    if isinstance(action, str):
        action = compile_action(action)

    rule = Rule(
        name=name,
        event=event,
        condition=condition,
        action=action,
        coupling=coupling,
        priority=priority,
        scheduler=scheduler,
    )
    targets = [objects] if isinstance(objects, Reactive) else list(objects)
    for target in targets:
        if not isinstance(target, Reactive):
            raise TypeError(
                f"monitored objects must be Reactive, got "
                f"{type(target).__name__}; passive objects generate no events"
            )
        target.subscribe(rule)
    if register:
        default_registry().add(rule)
    return rule


def unmonitor(rule: Rule, objects: "Reactive | Iterable[Reactive]") -> None:
    """Unsubscribe ``rule`` from ``objects`` (the reverse of monitor)."""
    targets = [objects] if isinstance(objects, Reactive) else list(objects)
    for target in targets:
        target.unsubscribe(rule)
