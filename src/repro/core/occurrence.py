"""Event occurrences.

When a reactive object invokes a method declared in its event interface, a
*primitive event occurrence* is generated (§3.1):

    Generated primitive event = Oid + Class + Method + Actual parameters
                                + Time stamp

:class:`EventOccurrence` is that message.  Composite events signal
:class:`CompositeOccurrence` values that aggregate their constituents'
parameters.  Both share the :class:`Occurrence` interface: a global
sequence number (total order of detection), a timestamp, constituent
access, and a merged parameter view.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..oodb.oid import Oid
from .clock import get_clock

__all__ = [
    "EventModifier",
    "Occurrence",
    "EventOccurrence",
    "CompositeOccurrence",
    "next_sequence",
]

# ``itertools.count.__next__`` is a single C call and therefore atomic
# under the GIL — no lock needed on a counter consulted once per event.
_sequence = itertools.count(1)
_next_sequence = _sequence.__next__


def next_sequence() -> int:
    """Next value of the global occurrence sequence (total detection order)."""
    return _next_sequence()


class EventModifier(enum.Enum):
    """When, relative to the method execution, the event is raised (§4.3).

    ``begin`` (bom) fires before the method body runs, ``end`` (eom) fires
    right after it returns.  ``explicit`` marks events raised by hand from
    inside a method body (footnote 3 of the paper).
    """

    BEGIN = "begin"
    END = "end"
    EXPLICIT = "explicit"

    @classmethod
    def parse(cls, text: str) -> "EventModifier":
        normalized = text.strip().lower()
        aliases = {
            "begin": cls.BEGIN,
            "before": cls.BEGIN,
            "bom": cls.BEGIN,
            "end": cls.END,
            "after": cls.END,
            "eom": cls.END,
            "explicit": cls.EXPLICIT,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(
                f"unknown event modifier {text!r}; expected one of "
                f"{sorted(aliases)}"
            ) from None


class Occurrence:
    """Common interface of primitive and composite occurrences."""

    seq: int
    timestamp: float

    @property
    def constituents(self) -> tuple["EventOccurrence", ...]:
        raise NotImplementedError  # pragma: no cover - interface

    def parameters(self) -> dict[str, Any]:
        raise NotImplementedError  # pragma: no cover - interface

    def sources(self) -> list[Any]:
        """The distinct reactive objects that produced the constituents."""
        result: list[Any] = []
        seen: set[int] = set()
        for part in self.constituents:
            source = part.source
            if source is not None and id(source) not in seen:
                seen.add(id(source))
                result.append(source)
        return result


@dataclass(eq=False, slots=True)
class EventOccurrence(Occurrence):
    """One primitive event: a designated method was invoked.

    ``class_names`` holds the full persistent-class MRO of the source, so
    that an event declared on a superclass matches occurrences produced by
    subclass instances (rule inheritance, §5.1).

    Occurrences are **read-only messages**: one is built per monitored
    invocation, so construction is on the hottest path in the system.
    ``eq=False`` (identity equality/hashing — each occurrence is unique by
    ``seq`` anyway) without ``frozen`` keeps the generated ``__init__`` to
    plain slot stores; a frozen dataclass pays an ``object.__setattr__``
    call per field, which more than doubles construction cost.  Nothing
    may mutate an occurrence after construction.
    """

    class_name: str
    method: str
    modifier: EventModifier
    source: Any = None
    source_oid: Oid | None = None
    args: tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    result: Any = None
    class_names: tuple[str, ...] = ()
    timestamp: float = field(default_factory=lambda: get_clock().now())
    seq: int = field(default_factory=_next_sequence)

    @property
    def constituents(self) -> tuple["EventOccurrence", ...]:
        return (self,)

    def parameters(self) -> dict[str, Any]:
        """The actual parameters recorded when the event was raised."""
        return dict(self.params)

    @property
    def signature_text(self) -> str:
        return f"{self.modifier.value} {self.class_name}::{self.method}"

    def matches_class(self, class_name: str) -> bool:
        """True if the source is an instance of ``class_name`` (or a subclass)."""
        return class_name == self.class_name or class_name in self.class_names

    def __str__(self) -> str:
        oid = f" {self.source_oid}" if self.source_oid else ""
        return f"[{self.seq}] {self.signature_text}{oid}"


@dataclass(eq=False, slots=True)
class CompositeOccurrence(Occurrence):
    """A composite event signalled by an operator (§4.3).

    Carries the operator's event name and every constituent primitive
    occurrence; the timestamp and sequence are those of the *terminating*
    constituent, so composites order consistently with the primitives that
    completed them.
    """

    event_name: str
    parts: tuple[Occurrence, ...]
    timestamp: float
    seq: int

    @classmethod
    def of(
        cls, event_name: str, parts: tuple[Occurrence, ...]
    ) -> "CompositeOccurrence":
        if not parts:
            raise ValueError("a composite occurrence needs at least one part")
        last = max(parts, key=lambda p: p.seq)
        return cls(
            event_name=event_name,
            parts=parts,
            timestamp=last.timestamp,
            seq=last.seq,
        )

    @property
    def constituents(self) -> tuple[EventOccurrence, ...]:
        flattened: list[EventOccurrence] = []
        for part in self.parts:
            flattened.extend(part.constituents)
        return tuple(flattened)

    def parameters(self) -> dict[str, Any]:
        """Merged parameters of all constituents (later ones win on clash)."""
        merged: dict[str, Any] = {}
        for part in sorted(self.constituents, key=lambda p: p.seq):
            merged.update(part.parameters())
        return merged

    def __iter__(self) -> Iterator[Occurrence]:
        return iter(self.parts)

    def __str__(self) -> str:
        inner = ", ".join(str(p.seq) for p in self.parts)
        return f"[{self.seq}] {self.event_name}({inner})"
