"""Reactive objects — producers of events (§3.1, §4.1).

A reactive object augments the conventional (synchronous) object interface
with an *event interface*: selected methods raise begin-of-method /
end-of-method events, which are propagated asynchronously to the
notifiable objects that subscribed (Fig 1).

The paper's Reactive class (Fig 4) has ``consumers``, ``Subscribe``,
``Unsubscribe`` and ``Notify``.  Here:

* :meth:`Reactive.subscribe` / :meth:`Reactive.unsubscribe` manage the
  per-instance consumer list (the runtime subscription mechanism, §3.5);
* :meth:`Reactive.notify_consumers` is the paper's ``Notify`` — it
  delivers an occurrence to every subscribed consumer.  (Renamed because
  Python cannot overload it against ``Notifiable.notify``, the consumer
  side; C++ could.)

Class-level consumers hold the rules declared in class definitions (§4.7):
they receive events from *every* instance of the class (and its
subclasses) without per-instance subscription — the paper's "efficient
mechanism for associating rules to all instances of a class".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from ..oodb.schema import Persistent
from .interface import ReactiveMeta
from .occurrence import EventModifier, EventOccurrence
from .runtime import current_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from .notifiable import Notifiable

__all__ = ["Reactive", "subscribe_all"]


class Reactive(Persistent, metaclass=ReactiveMeta):
    """Base class of event-generating objects.

    The event interface itself (which methods generate events) is declared
    with :func:`repro.core.interface.event_method` or an
    ``__event_interface__`` mapping; the metaclass wires the stubs.  This
    class provides the subscription and propagation machinery.
    """

    _p_transient = ("_consumers",)

    def __init__(self) -> None:
        super().__init__()
        object.__setattr__(self, "_consumers", [])

    # ------------------------------------------------------------------
    # Subscription (the paper's Subscribe/Unsubscribe)
    # ------------------------------------------------------------------
    def subscribe(self, consumer: "Notifiable") -> None:
        """Add ``consumer`` to this object's consumer set (idempotent)."""
        consumers = self._instance_consumers()
        if not any(existing is consumer for existing in consumers):
            consumers.append(consumer)

    def unsubscribe(self, consumer: "Notifiable") -> None:
        """Remove ``consumer``; unknown consumers are ignored."""
        consumers = self._instance_consumers()
        for i, existing in enumerate(consumers):
            if existing is consumer:
                del consumers[i]
                return

    def subscribers(self) -> list["Notifiable"]:
        """Instance-level consumers (excludes class-level rules)."""
        return list(self._instance_consumers())

    def has_consumers(self) -> bool:
        """Cheap check used by event stubs to skip all event work."""
        if self._instance_consumers():
            return True
        for klass in type(self).__mro__:
            if klass.__dict__.get("_class_consumers"):
                return True
        return False

    def _instance_consumers(self) -> list["Notifiable"]:
        consumers = getattr(self, "_consumers", None)
        if consumers is None:
            consumers = []
            object.__setattr__(self, "_consumers", consumers)
        return consumers

    def _all_consumers(self) -> list["Notifiable"]:
        """Instance consumers plus class-level consumers along the MRO."""
        result: list["Notifiable"] = list(self._instance_consumers())
        for klass in type(self).__mro__:
            for consumer in klass.__dict__.get("_class_consumers", ()):
                if not any(existing is consumer for existing in result):
                    result.append(consumer)
        return result

    # ------------------------------------------------------------------
    # Event generation and propagation (the paper's Notify)
    # ------------------------------------------------------------------
    def notify_consumers(self, occurrence: EventOccurrence) -> int:
        """Propagate ``occurrence`` to every consumer; returns deliveries.

        Delivery happens inside a scheduler *delivery round*, so that
        immediate rules triggered by the same occurrence are ordered by
        the conflict-resolution policy rather than by subscription order.
        """
        consumers = self._all_consumers()
        if not consumers:
            return 0
        with current_scheduler().delivery_round():
            for consumer in consumers:
                consumer.notify(occurrence)
        return len(consumers)

    def raise_event(
        self,
        name: str,
        modifier: EventModifier = EventModifier.EXPLICIT,
        result: Any = None,
        **params: Any,
    ) -> EventOccurrence:
        """Explicitly generate a primitive event from inside a method body.

        The paper (footnote 3) allows the class designer to raise events
        beyond the automatic bom/eom pairs; this is that hook.
        """
        occurrence = self._make_occurrence(
            method=name,
            modifier=modifier,
            args=(),
            kwargs={},
            params=params,
            result=result,
        )
        self.notify_consumers(occurrence)
        return occurrence

    def _make_occurrence(
        self,
        method: str,
        modifier: EventModifier,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        params: dict[str, Any],
        result: Any,
    ) -> EventOccurrence:
        cls = type(self)
        return EventOccurrence(
            class_name=cls._p_class_name,  # type: ignore[attr-defined]
            method=method,
            modifier=modifier,
            source=self,
            source_oid=self._p_oid,
            args=args,
            kwargs=dict(kwargs),
            params=params,
            result=result,
            class_names=_persistent_mro_names(cls),
        )


def _persistent_mro_names(cls: type) -> tuple[str, ...]:
    # Cached per class: the persistent-class MRO never changes after
    # class creation, and this runs on every monitored invocation.
    cached = cls.__dict__.get("_p_mro_names")
    if cached is not None:
        return cached
    names: list[str] = []
    for klass in cls.__mro__:
        name = klass.__dict__.get("_p_class_name")
        if name is not None:
            names.append(name)
    result = tuple(names)
    cls._p_mro_names = result  # type: ignore[attr-defined]
    return result


def subscribe_all(objects: Iterable[Reactive], consumer: "Notifiable") -> None:
    """Subscribe ``consumer`` to every object in ``objects``."""
    for obj in objects:
        obj.subscribe(consumer)
