"""Reactive objects — producers of events (§3.1, §4.1).

A reactive object augments the conventional (synchronous) object interface
with an *event interface*: selected methods raise begin-of-method /
end-of-method events, which are propagated asynchronously to the
notifiable objects that subscribed (Fig 1).

The paper's Reactive class (Fig 4) has ``consumers``, ``Subscribe``,
``Unsubscribe`` and ``Notify``.  Here:

* :meth:`Reactive.subscribe` / :meth:`Reactive.unsubscribe` manage the
  per-instance consumer list (the runtime subscription mechanism, §3.5);
* :meth:`Reactive.notify_consumers` is the paper's ``Notify`` — it
  delivers an occurrence to every subscribed consumer.  (Renamed because
  Python cannot overload it against ``Notifiable.notify``, the consumer
  side; C++ could.)

Class-level consumers hold the rules declared in class definitions (§4.7):
they receive events from *every* instance of the class (and its
subclasses) without per-instance subscription — the paper's "efficient
mechanism for associating rules to all instances of a class".

Hot path: the resolved consumer set (instance subscribers merged with the
class consumers along the MRO) is cached per instance as an immutable
*snapshot* tuple, validated by generation counters (see
:mod:`repro.core.generations`).  A monitored call on a warm object costs
one attribute load and one integer comparison before it either takes the
passive fast path (empty snapshot) or starts delivering — no MRO walk, no
identity scans, no list building.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from ..obs.tracer import tracer as _tracer
from ..oodb.schema import Persistent
from ..obs.metrics import pipeline_stats
from .generations import _class_gen
from .identity import IdentitySet
from .interface import ReactiveMeta
from .occurrence import EventModifier, EventOccurrence
from .runtime import current_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from .notifiable import Notifiable

__all__ = ["Reactive", "subscribe_all"]

#: Shared empty mapping for occurrences raised without keyword arguments —
#: never mutated (EventOccurrence treats its mappings as read-only).
_NO_KWARGS: dict[str, Any] = {}


class Reactive(Persistent, metaclass=ReactiveMeta):
    """Base class of event-generating objects.

    The event interface itself (which methods generate events) is declared
    with :func:`repro.core.interface.event_method` or an
    ``__event_interface__`` mapping; the metaclass wires the stubs.  This
    class provides the subscription and propagation machinery.
    """

    _p_transient = ("_consumers", "_consumer_cache", "_subscription_gen")

    def __init__(self) -> None:
        super().__init__()
        object.__setattr__(self, "_consumers", IdentitySet())
        object.__setattr__(self, "_consumer_cache", None)
        object.__setattr__(self, "_subscription_gen", 0)

    # ------------------------------------------------------------------
    # Subscription (the paper's Subscribe/Unsubscribe)
    # ------------------------------------------------------------------
    def subscribe(self, consumer: "Notifiable") -> None:
        """Add ``consumer`` to this object's consumer set (idempotent)."""
        if self._instance_consumers().add(consumer):
            self._invalidate_consumer_cache()

    def unsubscribe(self, consumer: "Notifiable") -> None:
        """Remove ``consumer``; unknown consumers are ignored."""
        if self._instance_consumers().discard(consumer):
            self._invalidate_consumer_cache()

    def subscribers(self) -> list["Notifiable"]:
        """Instance-level consumers (excludes class-level rules)."""
        return self._instance_consumers().as_list()

    def subscription_generation(self) -> int:
        """Monotonic counter of subscribe/unsubscribe calls (observability)."""
        return getattr(self, "_subscription_gen", 0)

    def _invalidate_consumer_cache(self) -> None:
        object.__setattr__(
            self, "_subscription_gen", self.subscription_generation() + 1
        )
        object.__setattr__(self, "_consumer_cache", None)
        pipeline_stats.consumer_cache_invalidations += 1

    def has_consumers(self) -> bool:
        """Cheap check used by event stubs to skip all event work."""
        return bool(self._consumer_snapshot())

    def _instance_consumers(self) -> IdentitySet:
        consumers = getattr(self, "_consumers", None)
        if consumers is None:
            # Instances materialized from storage skip __init__.
            consumers = IdentitySet()
            object.__setattr__(self, "_consumers", consumers)
        return consumers

    def _all_consumers(self) -> list["Notifiable"]:
        """Instance consumers plus class-level consumers along the MRO."""
        return list(self._consumer_snapshot())

    def _consumer_snapshot(self) -> tuple["Notifiable", ...]:
        """The cached, resolved consumer tuple (rebuilt when stale)."""
        cache = getattr(self, "_consumer_cache", None)
        if cache is not None and cache[0] == _class_gen[0]:
            pipeline_stats.consumer_cache_hits += 1
            return cache[1]
        return self._rebuild_consumer_snapshot()

    def _rebuild_consumer_snapshot(self) -> tuple["Notifiable", ...]:
        pipeline_stats.consumer_cache_misses += 1
        # Read the generation *before* merging: a concurrent bump then
        # stamps the cache stale, never fresh.
        generation = _class_gen[0]
        merged: list["Notifiable"] = self._instance_consumers().as_list()
        class_consumers = _merged_class_consumers(type(self), generation)
        if class_consumers:
            seen = {id(consumer) for consumer in merged}
            for consumer in class_consumers:
                if id(consumer) not in seen:
                    merged.append(consumer)
        snapshot = tuple(merged)
        object.__setattr__(self, "_consumer_cache", (generation, snapshot))
        return snapshot

    # ------------------------------------------------------------------
    # Event generation and propagation (the paper's Notify)
    # ------------------------------------------------------------------
    def notify_consumers(self, occurrence: EventOccurrence) -> int:
        """Propagate ``occurrence`` to every consumer; returns deliveries.

        Delivery happens inside a scheduler *delivery round*, so that
        immediate rules triggered by the same occurrence are ordered by
        the conflict-resolution policy rather than by subscription order.
        """
        consumers = self._consumer_snapshot()
        if not consumers:
            return 0
        if _tracer.enabled and not _tracer._skip_depth:
            return self._notify_consumers_traced(occurrence, consumers)
        scheduler = current_scheduler()
        frame = scheduler._begin_round()
        try:
            for consumer in consumers:
                consumer.notify(occurrence)
        except BaseException:
            scheduler._abandon_round(frame)
            raise
        scheduler._finish_round(frame)
        return len(consumers)

    def _notify_consumers_traced(
        self, occurrence: EventOccurrence, consumers: tuple["Notifiable", ...]
    ) -> int:
        """Tracing slow path of :meth:`notify_consumers`.

        The occurrence span stays open across the delivery round, so
        detection spans *and* the immediate rules the round executes at
        its close all parent to the occurrence that caused them.
        """
        oid = getattr(occurrence, "source_oid", None)
        span = _tracer.begin(
            "occurrence",
            occurrence.signature_text,
            seq=occurrence.seq,
            method=occurrence.method,
            modifier=occurrence.modifier.value,
            **{"class": occurrence.class_name, "oid": oid.value if oid else None},
        )
        try:
            scheduler = current_scheduler()
            frame = scheduler._begin_round()
            try:
                for consumer in consumers:
                    consumer.notify(occurrence)
            except BaseException:
                scheduler._abandon_round(frame)
                raise
            scheduler._finish_round(frame)
        except BaseException as exc:
            _tracer.end(span, error=type(exc).__name__)
            raise
        _tracer.end(span, consumers=len(consumers))
        return len(consumers)

    def raise_event(
        self,
        name: str,
        modifier: EventModifier = EventModifier.EXPLICIT,
        result: Any = None,
        **params: Any,
    ) -> EventOccurrence:
        """Explicitly generate a primitive event from inside a method body.

        The paper (footnote 3) allows the class designer to raise events
        beyond the automatic bom/eom pairs; this is that hook.
        """
        occurrence = self._make_occurrence(
            method=name,
            modifier=modifier,
            args=(),
            kwargs=_NO_KWARGS,
            params=params,
            result=result,
        )
        self.notify_consumers(occurrence)
        return occurrence

    def _make_occurrence(
        self,
        method: str,
        modifier: EventModifier,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        params: dict[str, Any],
        result: Any,
    ) -> EventOccurrence:
        cls = type(self)
        return EventOccurrence(
            class_name=cls._p_class_name,  # type: ignore[attr-defined]
            method=method,
            modifier=modifier,
            source=self,
            source_oid=self._p_oid,
            args=args,
            # Event stubs pass a fresh kwargs dict per call; copying it
            # again would only burn the hot path.
            kwargs=kwargs if kwargs else _NO_KWARGS,
            params=params,
            result=result,
            class_names=_persistent_mro_names(cls),
        )


def _merged_class_consumers(cls: type, generation: int) -> tuple[Any, ...]:
    """Class-level consumers along ``cls``'s MRO, deduplicated by identity.

    Cached on the class, keyed by the class generation, so instance-cache
    rebuilds after a subscribe/unsubscribe do not re-walk the MRO.
    """
    cached = cls.__dict__.get("_class_consumer_merge")
    if cached is not None and cached[0] == generation:
        return cached[1]
    merged: list[Any] = []
    seen: set[int] = set()
    for klass in cls.__mro__:
        for consumer in klass.__dict__.get("_class_consumers", ()):
            if id(consumer) not in seen:
                seen.add(id(consumer))
                merged.append(consumer)
    result = tuple(merged)
    cls._class_consumer_merge = (generation, result)  # type: ignore[attr-defined]
    return result


def _persistent_mro_names(cls: type) -> tuple[str, ...]:
    # Cached per class: the persistent-class MRO never changes after
    # class creation, and this runs on every monitored invocation.
    cached = cls.__dict__.get("_p_mro_names")
    if cached is not None:
        return cached
    names: list[str] = []
    for klass in cls.__mro__:
        name = klass.__dict__.get("_p_class_name")
        if name is not None:
            names.append(name)
    result = tuple(names)
    cls._p_mro_names = result  # type: ignore[attr-defined]
    return result


def subscribe_all(objects: Iterable[Reactive], consumer: "Notifiable") -> None:
    """Subscribe ``consumer`` to every object in ``objects``."""
    for obj in objects:
        obj.subscribe(consumer)
