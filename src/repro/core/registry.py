"""Registries of first-class rules and events (§3.4).

Because rules and events are objects, they can be managed uniformly:
looked up by name, enumerated, enabled/disabled in groups, deleted.  The
registries provide that management surface.  Class-level rules register
under their class's scope at class-creation time; runtime rules register
under the scope they are created with (``"instance"`` by default).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from .events.base import Event
    from .rules import Rule

__all__ = ["RuleRegistry", "EventRegistry", "default_registry", "default_events"]


class RuleRegistry:
    """Name → rule mapping with scope grouping."""

    def __init__(self) -> None:
        self._rules: dict[str, "Rule"] = {}
        self._scopes: dict[str, list[str]] = {}

    def add(self, rule: "Rule", scope: str = "instance") -> "Rule":
        """Register ``rule``; duplicate names get a numeric suffix."""
        name = rule.name
        if name in self._rules and self._rules[name] is not rule:
            base, counter = name, 2
            while f"{base}#{counter}" in self._rules:
                counter += 1
            name = f"{base}#{counter}"
            rule.name = name
        self._rules[name] = rule
        self._scopes.setdefault(scope, []).append(name)
        return rule

    def remove(self, name: str) -> "Rule | None":
        rule = self._rules.pop(name, None)
        for names in self._scopes.values():
            if name in names:
                names.remove(name)
        return rule

    def get(self, name: str) -> "Rule":
        try:
            return self._rules[name]
        except KeyError:
            raise KeyError(f"no rule named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def __iter__(self) -> Iterator["Rule"]:
        return iter(list(self._rules.values()))

    def __len__(self) -> int:
        return len(self._rules)

    def names(self) -> list[str]:
        return sorted(self._rules)

    def in_scope(self, scope: str) -> list["Rule"]:
        return [self._rules[n] for n in self._scopes.get(scope, []) if n in self._rules]

    def enable_all(self, scope: str | None = None) -> int:
        rules = self.in_scope(scope) if scope else list(self)
        for rule in rules:
            rule.enable()
        return len(rules)

    def disable_all(self, scope: str | None = None) -> int:
        rules = self.in_scope(scope) if scope else list(self)
        for rule in rules:
            rule.disable()
        return len(rules)

    def clear(self) -> None:
        self._rules.clear()
        self._scopes.clear()


class EventRegistry:
    """Name → event mapping for shared, reusable event objects."""

    def __init__(self) -> None:
        self._events: dict[str, "Event"] = {}

    def add(self, event: "Event") -> "Event":
        self._events[event.name] = event
        return event

    def remove(self, name: str) -> "Event | None":
        return self._events.pop(name, None)

    def get(self, name: str) -> "Event":
        try:
            return self._events[name]
        except KeyError:
            raise KeyError(f"no event named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._events

    def __iter__(self) -> Iterator["Event"]:
        return iter(list(self._events.values()))

    def __len__(self) -> int:
        return len(self._events)

    def names(self) -> list[str]:
        return sorted(self._events)

    def clear(self) -> None:
        self._events.clear()


_default_rules: RuleRegistry | None = None
_default_events: EventRegistry | None = None


def default_registry() -> RuleRegistry:
    """Process-wide rule registry (class rules land here at import time)."""
    global _default_rules
    if _default_rules is None:
        _default_rules = RuleRegistry()
    return _default_rules


def default_events() -> EventRegistry:
    global _default_events
    if _default_events is None:
        _default_events = EventRegistry()
    return _default_events
