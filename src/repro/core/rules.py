"""ECA rules as first-class notifiable objects (§3.4, §4.4, Fig 7).

A :class:`Rule` bundles an **E**\\ vent (any :class:`~repro.core.events.base.Event`,
primitive or composite), a **C**\\ ondition, and an **A**\\ ction, plus a
coupling mode, a priority for conflict resolution, and an enabled flag.
Rules are:

* **notifiable** — they subscribe to reactive objects and feed the
  occurrences they receive into their event tree (Fig 2: "rules receive
  events from reactive objects, send them to their local event detector");
* **reactive** — their own ``enable``/``disable``/``fire`` methods are
  event generators, so *rules can be monitored by other rules* ("treatment
  of events and rules as objects ... permits specification of rules on any
  set of objects, including rules themselves");
* **persistent-capable** — create, modify, delete, persist like any
  object, under the same transaction semantics.

Conditions and actions are callables taking a :class:`RuleContext`.  The
context exposes the triggering occurrence, its merged parameters, the
source object(s), and ``abort()`` — the paper's transaction-aborting rule
action.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from ..obs.slowlog import slow_op_log as _slowlog
from ..obs.tracer import tracer as _tracer
from ..oodb.errors import TransactionAborted
from .coupling import Coupling
from .events.base import Event
from .generations import bump_class_generation
from .events.primitive import Primitive
from .notifiable import Notifiable
from .occurrence import Occurrence
from .reactive import Reactive
from .runtime import current_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import RuleScheduler

__all__ = ["Rule", "RuleContext", "RuleError"]

Condition = Callable[["RuleContext"], bool]
Action = Callable[["RuleContext"], Any]

_anonymous_rules = itertools.count(1)


class RuleError(Exception):
    """Structural misuse of a rule (bad event, missing action...)."""


@dataclass(slots=True)
class RuleContext:
    """Everything a condition or action can see about the triggering event."""

    rule: "Rule"
    occurrence: Occurrence
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def sources(self) -> list[Any]:
        """The reactive objects whose events built this occurrence."""
        return self.occurrence.sources()

    @property
    def source(self) -> Any:
        """The object that produced the terminating constituent (or None)."""
        constituents = self.occurrence.constituents
        if not constituents:
            return None
        last = max(constituents, key=lambda c: c.seq)
        return last.source

    @property
    def result(self) -> Any:
        """Return value of the (last) triggering method, for eom events."""
        constituents = self.occurrence.constituents
        if not constituents:
            return None
        return max(constituents, key=lambda c: c.seq).result

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def abort(self, reason: str = "") -> None:
        """Abort the triggering transaction (the paper's ``abort`` action).

        With a database transaction active, that transaction rolls back
        and :class:`TransactionAborted` unwinds the triggering call; with
        no transaction, the exception alone plays that role.
        """
        scheduler = self.rule.resolved_scheduler()
        db = getattr(scheduler, "db", None)
        txn = db.txn_manager.current if db is not None else None
        reason = reason or f"aborted by rule {self.rule.name!r}"
        if txn is not None and txn.is_active:
            txn.abort(reason)
        raise TransactionAborted(reason)


class Rule(Reactive, Notifiable):
    """An Event-Condition-Action rule (Fig 7).

    Parameters mirror the paper's Rule class: the event object, pointers
    to the condition and action, the coupling mode, and the enabled flag;
    ``priority`` feeds the scheduler's conflict resolution.

    ``fire``/``enable``/``disable`` are themselves event generators, so a
    meta-rule can subscribe to a rule object and react when it fires.
    """

    __event_interface__ = {
        "fire": "begin|end",
        "enable": "end",
        "disable": "end",
    }

    _p_transient = ("_scheduler",) + Notifiable._p_transient + Reactive._p_transient

    def __init__(
        self,
        name: str | None = None,
        event: Event | str | None = None,
        condition: Condition | None = None,
        action: Action | None = None,
        coupling: Coupling | str = Coupling.IMMEDIATE,
        priority: int = 0,
        enabled: bool = True,
        scheduler: "RuleScheduler | None" = None,
        description: str = "",
    ) -> None:
        super().__init__()
        if event is None:
            raise RuleError("a rule needs a triggering event")
        if isinstance(event, str):
            event = Primitive(event)
        if not isinstance(event, Event):
            raise RuleError(
                f"event must be an Event or signature text, got "
                f"{type(event).__name__}"
            )
        self.name = name or f"rule_{next(_anonymous_rules)}"
        self.event = event
        self.condition = condition
        self.action = action
        self.coupling = Coupling.parse(coupling)
        self.priority = priority
        self.enabled = enabled
        self.description = description
        self.times_triggered = 0
        self.times_fired = 0
        object.__setattr__(self, "_scheduler", scheduler)
        event.add_listener(self)

    def _p_after_load(self) -> None:
        """Re-attach to the event tree after materialization from storage."""
        object.__setattr__(self, "_scheduler", None)
        self.event.add_listener(self)

    # ------------------------------------------------------------------
    # Consumption: occurrences arriving from subscribed reactive objects
    # ------------------------------------------------------------------
    def notify(self, occurrence: Occurrence) -> None:
        """Pass the occurrence to this rule's event tree (local detection)."""
        if not self.enabled:
            return
        self.record(occurrence)
        self.event.notify(occurrence)

    # ------------------------------------------------------------------
    # Listener: the rule's event signalled
    # ------------------------------------------------------------------
    def on_event(self, event: Event, occurrence: Occurrence) -> None:
        if not self.enabled:
            return
        self.resolved_scheduler().schedule(self, occurrence)

    def resolved_scheduler(self) -> "RuleScheduler":
        scheduler = getattr(self, "_scheduler", None)
        return scheduler if scheduler is not None else current_scheduler()

    def bind_scheduler(self, scheduler: "RuleScheduler | None") -> None:
        object.__setattr__(self, "_scheduler", scheduler)

    # ------------------------------------------------------------------
    # Execution (called by the scheduler per coupling mode)
    # ------------------------------------------------------------------
    def fire(self, occurrence: Occurrence) -> bool:
        """Evaluate the condition; run the action if it holds.

        Returns True when the action ran.  This method is itself an event
        generator (rules on rules).
        """
        if _tracer.enabled:
            return self._fire_traced(occurrence)
        if _slowlog.enabled:
            return self._fire_timed(occurrence)
        context = RuleContext(
            rule=self,
            occurrence=occurrence,
            params=occurrence.parameters(),
        )
        self.times_triggered += 1
        if self.condition is not None and not self.condition(context):
            return False
        self.times_fired += 1
        if self.action is not None:
            self.action(context)
        return True

    def _fire_timed(self, occurrence: Occurrence) -> bool:
        """Slow-op timing path of :meth:`fire`: same protocol, with the
        condition and action bodies timed separately so the slow-op log
        can attribute a slow firing to the right phase.  Entries are
        recorded in ``finally`` blocks so a slow body that raises still
        logs before the exception unwinds."""
        context = RuleContext(
            rule=self,
            occurrence=occurrence,
            params=occurrence.parameters(),
        )
        self.times_triggered += 1
        if self.condition is not None:
            started = perf_counter()
            try:
                passed = bool(self.condition(context))
            finally:
                self._note_phase("condition", occurrence.seq, started)
            if not passed:
                return False
        self.times_fired += 1
        if self.action is not None:
            started = perf_counter()
            try:
                self.action(context)
            finally:
                self._note_phase("action", occurrence.seq, started)
        return True

    def _note_phase(self, phase: str, seq: int, started: float) -> None:
        """Record a slow-op entry when a condition/action body overran."""
        if not _slowlog.enabled:
            return
        micros = (perf_counter() - started) * 1e6
        if micros < _slowlog.slow_rule_us:
            return
        _slowlog.record(
            "rule",
            micros,
            _slowlog.slow_rule_us,
            signal="rule_slow",
            signal_payload={
                "rule": self.name,
                "phase": phase,
                "seq": seq,
                "micros": round(micros, 1),
                "threshold_us": _slowlog.slow_rule_us,
            },
            rule=self.name,
            phase=phase,
            seq=seq,
            coupling=self.coupling.value,
        )

    def _fire_traced(self, occurrence: Occurrence) -> bool:
        """Tracing slow path of :meth:`fire`: same protocol, with a
        "condition" span, an "action" span, and an "outcome" point (the
        join key for per-rule reports)."""
        context = RuleContext(
            rule=self,
            occurrence=occurrence,
            params=occurrence.parameters(),
        )
        self.times_triggered += 1
        if self.condition is not None:
            span = _tracer.begin(
                "condition", self.name, rule=self.name, seq=occurrence.seq
            )
            started = perf_counter()
            try:
                passed = bool(self.condition(context))
            except BaseException as exc:
                _tracer.end(span, error=type(exc).__name__)
                raise
            finally:
                self._note_phase("condition", occurrence.seq, started)
            _tracer.end(span, passed=passed)
            if not passed:
                _tracer.point(
                    "outcome", self.name,
                    rule=self.name, fired=False, seq=occurrence.seq,
                )
                return False
        self.times_fired += 1
        if self.action is not None:
            span = _tracer.begin(
                "action", self.name, rule=self.name, seq=occurrence.seq
            )
            started = perf_counter()
            try:
                self.action(context)
            except BaseException as exc:
                _tracer.end(span, error=type(exc).__name__)
                raise
            finally:
                self._note_phase("action", occurrence.seq, started)
            _tracer.end(span)
        _tracer.point(
            "outcome", self.name, rule=self.name, fired=True, seq=occurrence.seq
        )
        return True

    # ------------------------------------------------------------------
    # Rule operations (create/delete are object lifecycle; these remain)
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True
        # Consumer-snapshot caches key on the class generation; bumping it
        # here guarantees the state flip is observed by the next monitored
        # call even if a cache should ever grow enabled-dependent data.
        bump_class_generation()

    def disable(self) -> None:
        self.enabled = False
        bump_class_generation()

    def update(
        self,
        event: Event | None = None,
        condition: Condition | None = None,
        action: Action | None = None,
        coupling: Coupling | str | None = None,
        priority: int | None = None,
    ) -> None:
        """Modify the rule in place — rules are ordinary objects (§3.4)."""
        if event is not None:
            self.event.remove_listener(self)
            self.event = event
            event.add_listener(self)
        if condition is not None:
            self.condition = condition
        if action is not None:
            self.action = action
        if coupling is not None:
            self.coupling = Coupling.parse(coupling)
        if priority is not None:
            self.priority = priority

    # ------------------------------------------------------------------
    # Subscription sugar (the paper writes Fred.Subscribe(IncomeLevel))
    # ------------------------------------------------------------------
    def subscribe_to(self, *objects: Reactive) -> "Rule":
        """Monitor ``objects``: subscribe this rule to each of them."""
        for obj in objects:
            obj.subscribe(self)
        return self

    def unsubscribe_from(self, *objects: Reactive) -> "Rule":
        for obj in objects:
            obj.unsubscribe(self)
        return self

    def monitored_leaves(self) -> Iterable[Event]:
        """The primitive events this rule's tree watches (introspection)."""
        return self.event.leaves()

    def monitored_signatures(self) -> list["EventSignature"]:
        """The parsed signatures of this rule's primitive leaves.

        Non-primitive leaves (timer operators and the like) have no
        signature and are skipped.  Pure introspection, used by the
        static analyzer and the CLI tools.
        """
        return [
            leaf.signature
            for leaf in self.event.leaves()
            if isinstance(leaf, Primitive)
        ]

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Rule {self.name!r} on {self.event.name!r} "
            f"{self.coupling.value} {state}>"
        )
