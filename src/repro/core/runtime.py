"""Runtime context: the current scheduler and Sentinel system.

Rules fire through a scheduler (which implements the coupling modes and
conflict resolution).  Most applications create one
:class:`~repro.core.system.Sentinel` system and work inside it; class-level
rules, however, are materialized at *import time*, before any system
exists.  This module provides the indirection: a process-wide default
scheduler, plus a stack so that ``with sentinel:`` temporarily installs a
system's scheduler as current.

The stack is **per thread**: a rule-worker thread (or a rule-server
connection thread) installing its system's scheduler does not disturb
the main thread's ambient scheduler.  A thread that has pushed nothing
falls back to the last scheduler pushed by *any* thread (a system
``__enter__``-ed on the main thread is the process's system — worker
threads it spawns should fire rules through it), and finally to the
process-wide default.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import RuleScheduler

__all__ = [
    "current_scheduler",
    "push_scheduler",
    "pop_scheduler",
    "default_scheduler",
]

_local = threading.local()
#: The most recent scheduler pushed by any thread (process-wide hint);
#: threads with their own stack never consult it.  Mutations serialize
#: on ``_shared_lock`` (reads are one racy-but-atomic tail peek).
_shared: list[Any] = []
_shared_lock = threading.Lock()
_default: "RuleScheduler | None" = None
_default_lock = threading.Lock()


def _stack() -> list[Any]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def default_scheduler() -> "RuleScheduler":
    """The process-wide fallback scheduler (created on first use)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                from .scheduler import RuleScheduler

                _default = RuleScheduler()
    return _default


def current_scheduler() -> "RuleScheduler":
    """The innermost scheduler this thread pushed, else the most recent
    push by any thread, else the process default."""
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    if _shared:
        return _shared[-1]
    return default_scheduler()


def push_scheduler(scheduler: "RuleScheduler") -> None:
    _stack().append(scheduler)
    with _shared_lock:
        _shared.append(scheduler)


def pop_scheduler(scheduler: "RuleScheduler") -> None:
    """Remove the most recent push of ``scheduler`` (LIFO discipline)."""
    stack = _stack()
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] is scheduler:
            del stack[i]
            break
    with _shared_lock:
        for i in range(len(_shared) - 1, -1, -1):
            if _shared[i] is scheduler:
                del _shared[i]
                return
