"""Runtime context: the current scheduler and Sentinel system.

Rules fire through a scheduler (which implements the coupling modes and
conflict resolution).  Most applications create one
:class:`~repro.core.system.Sentinel` system and work inside it; class-level
rules, however, are materialized at *import time*, before any system
exists.  This module provides the indirection: a process-wide default
scheduler, plus a stack so that ``with sentinel:`` temporarily installs a
system's scheduler as current.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import RuleScheduler

__all__ = [
    "current_scheduler",
    "push_scheduler",
    "pop_scheduler",
    "default_scheduler",
]

_stack: list[Any] = []
_default: "RuleScheduler | None" = None


def default_scheduler() -> "RuleScheduler":
    """The process-wide fallback scheduler (created on first use)."""
    global _default
    if _default is None:
        from .scheduler import RuleScheduler

        _default = RuleScheduler()
    return _default


def current_scheduler() -> "RuleScheduler":
    """The innermost active scheduler, or the process default."""
    if _stack:
        return _stack[-1]
    return default_scheduler()


def push_scheduler(scheduler: "RuleScheduler") -> None:
    _stack.append(scheduler)


def pop_scheduler(scheduler: "RuleScheduler") -> None:
    """Remove the most recent push of ``scheduler`` (LIFO discipline)."""
    for i in range(len(_stack) - 1, -1, -1):
        if _stack[i] is scheduler:
            del _stack[i]
            return
