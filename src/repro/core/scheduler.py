"""Rule scheduling: coupling modes, conflict resolution, cascade control.

The scheduler is the runtime half of §4.4: when a rule's event signals,
the rule is handed here, and the coupling mode decides what happens:

* **immediate** — executed inside the current *delivery round*.  A round
  groups all the rules triggered by one propagated occurrence, orders
  them with the conflict-resolution policy (priority by default, FIFO
  otherwise), then runs them.  Rules whose actions generate further
  events create nested rounds, giving the nested ("subtransaction-like")
  execution the paper describes for immediate coupling.  A depth guard
  stops runaway cascades.
* **deferred** — queued on the current database transaction and executed
  at commit (before the WAL write), still inside the transaction.  With
  no database, the scheduler keeps its own queue; ``flush_deferred()``
  runs it (the Sentinel system calls this on ``commit()``).
* **decoupled** — queued to run after commit in a fresh transaction of
  its own; aborts of that transaction do not disturb the (committed)
  triggering transaction.  With a :class:`~repro.core.workers.
  RuleWorkerPool` attached (``scheduler.worker_pool``), the post-commit
  hook hands the rule to a worker thread instead of running it on the
  committing thread: each job opens its own transaction, retries
  retryable aborts (deadlock victim, lock timeout) up to the pool's
  budget, and isolates any remaining error — a decoupled rule can never
  unwind into either the triggering thread or the worker.  A saturated
  pool rejects the job and it runs inline (exactly-once beats async).

The scheduler also keeps the counters the benchmarks read (rules
triggered, executed, per-mode totals).

Concurrency: the *ambient* execution state — open delivery rounds, the
cascade depth, the executing-rule stack — is per-thread, so rule workers
and server connection threads cascade independently.  The stats counters
are advisory throughput indicators bumped without a lock on the hot path
(same trade as ``PipelineStats``); the decoupled-path counters that
tests assert on (`decoupled_aborts`, ``decoupled_retries``,
``decoupled_errors``, ``decoupled_rejected``) are bumped under a lock,
off the hot path.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import TYPE_CHECKING, Callable, Iterator

from ..obs.audit import audit_log as _audit
from ..obs.flight import flight_recorder as _flight
from ..obs.metrics import metrics as _metrics
from ..obs.signals import engine_signals as _signals, occurrence_from_sysmon
from ..obs.tracer import tracer as _tracer
from ..oodb.errors import OODBError, TransactionAborted
from . import runtime
from .coupling import Coupling
from .occurrence import Occurrence

if TYPE_CHECKING:  # pragma: no cover
    from ..oodb.database import Database
    from .rules import Rule
    from .workers import RuleWorkerPool

__all__ = [
    "RuleScheduler",
    "SchedulerStats",
    "TraceEntry",
    "CascadeError",
    "RuleCascadeError",
    "by_priority",
    "fifo",
]

#: A conflict resolver orders the (rule, occurrence) pairs of one round.
Resolver = Callable[[list[tuple["Rule", Occurrence]]], list[tuple["Rule", Occurrence]]]


def by_priority(
    batch: list[tuple["Rule", Occurrence]]
) -> list[tuple["Rule", Occurrence]]:
    """Higher priority first; stable, so FIFO breaks ties."""
    return sorted(batch, key=lambda pair: -pair[0].priority)


def fifo(batch: list[tuple["Rule", Occurrence]]) -> list[tuple["Rule", Occurrence]]:
    """Triggering order."""
    return list(batch)


_RESOLVERS: dict[str, Resolver] = {"priority": by_priority, "fifo": fifo}


class CascadeError(RuntimeError):
    """Rule cascade exceeded the configured depth limit.

    ``witness`` is the rule-name path through the cascade that breached
    the limit — when the cascade is a cycle, the slice from the first
    repeat of the offending rule, closed with that rule (the same shape
    the static analyzer's SA001 witness uses).
    """

    def __init__(self, message: str, witness: list[str] | None = None) -> None:
        super().__init__(message)
        self.witness: list[str] = list(witness or [])


#: Alias: the docs and the analyzer call this a *rule* cascade error.
RuleCascadeError = CascadeError


@dataclass(slots=True)
class SchedulerStats:
    triggered: int = 0
    executed: int = 0
    fired: int = 0
    immediate: int = 0
    deferred: int = 0
    decoupled: int = 0
    decoupled_aborts: int = 0
    #: Worker-pool path: retryable aborts rerun, errors isolated, and
    #: saturation fallbacks to inline execution.
    decoupled_retries: int = 0
    decoupled_errors: int = 0
    decoupled_rejected: int = 0
    max_depth_seen: int = 0
    errors: list[Exception] = field(default_factory=list)


class _ThreadExecState:
    """One thread's ambient execution state (rounds, depth, rule stack)."""

    __slots__ = ("frames", "depth", "exec_stack")

    def __init__(self) -> None:
        self.frames: list[list[tuple["Rule", Occurrence]]] = []
        self.depth = 0
        self.exec_stack: list[str] = []


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One rule execution, as recorded by scheduler tracing."""

    rule_name: str
    event_name: str
    occurrence_seq: int
    depth: int
    fired: bool
    error: str | None = None

    def __str__(self) -> str:
        outcome = "fired" if self.fired else "skipped"
        if self.error:
            outcome = f"error: {self.error}"
        return (
            f"[seq {self.occurrence_seq}] {self.rule_name} "
            f"on {self.event_name} (depth {self.depth}) -> {outcome}"
        )


class RuleScheduler:
    """Executes triggered rules according to their coupling modes.

    ``error_policy`` is ``"propagate"`` (default: rule exceptions unwind
    into the triggering operation, which is what lets ``abort`` work) or
    ``"isolate"`` (exceptions other than transaction aborts are collected
    in ``stats.errors`` and execution continues).
    """

    def __init__(
        self,
        db: "Database | None" = None,
        resolver: Resolver | str = "priority",
        max_depth: int = 32,
        error_policy: str = "propagate",
    ) -> None:
        if isinstance(resolver, str):
            try:
                resolver = _RESOLVERS[resolver]
            except KeyError:
                raise ValueError(
                    f"unknown resolver {resolver!r}; expected one of "
                    f"{sorted(_RESOLVERS)} or a callable"
                ) from None
        if error_policy not in ("propagate", "isolate"):
            raise ValueError("error_policy must be 'propagate' or 'isolate'")
        self.db = db
        self.resolver = resolver
        self.max_depth = max_depth
        self.error_policy = error_policy
        self.stats = SchedulerStats()
        #: Optional bounded pool for decoupled rules (see
        #: :meth:`Sentinel.enable_worker_pool`).  ``None`` = run inline.
        self.worker_pool: "RuleWorkerPool | None" = None
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._orphan_deferred: list[tuple["Rule", Occurrence]] = []
        self._trace: "deque[TraceEntry] | None" = None

    def _exec_state(self) -> _ThreadExecState:
        try:
            return self._local.state  # type: ignore[no-any-return]
        except AttributeError:
            state = _ThreadExecState()
            self._local.state = state
            return state

    # Back-compat views of the ambient state (tests peek at these).
    @property
    def _frames(self) -> list[list[tuple["Rule", Occurrence]]]:
        return self._exec_state().frames

    @property
    def _depth(self) -> int:
        return self._exec_state().depth

    @property
    def _exec_stack(self) -> list[str]:
        return self._exec_state().exec_stack

    # ------------------------------------------------------------------
    # Tracing (debugging / auditing aid)
    # ------------------------------------------------------------------
    def enable_tracing(self, limit: int = 1000) -> None:
        """Record every rule execution in a bounded trace buffer."""
        self._trace = deque(maxlen=limit)

    def disable_tracing(self) -> None:
        self._trace = None

    def trace(self) -> list[TraceEntry]:
        """The recorded executions, oldest first (empty if not tracing)."""
        return list(self._trace) if self._trace is not None else []

    def _record_trace(
        self,
        rule: "Rule",
        occurrence: Occurrence,
        fired: bool,
        error: str | None,
    ) -> None:
        if self._trace is not None:
            self._trace.append(
                TraceEntry(
                    rule_name=rule.name,
                    event_name=rule.event.name,
                    occurrence_seq=occurrence.seq,
                    depth=self._depth,
                    fired=fired,
                    error=error,
                )
            )

    # ------------------------------------------------------------------
    # Delivery rounds (conflict resolution scope)
    # ------------------------------------------------------------------
    @contextmanager
    def delivery_round(self) -> Iterator[None]:
        """Group the immediate rules triggered by one occurrence.

        Reactive objects wrap consumer notification in a round; at round
        exit the buffered rules run in conflict-resolution order.
        """
        frame = self._begin_round()
        try:
            yield
        except BaseException:
            self._abandon_round(frame)
            raise
        self._finish_round(frame)

    # The three-call form below is the contextmanager unrolled: the hot
    # path (Reactive.notify_consumers, once per propagated occurrence)
    # calls it directly to skip the generator machinery.
    def _begin_round(self) -> list[tuple["Rule", Occurrence]]:
        frame: list[tuple["Rule", Occurrence]] = []
        self._exec_state().frames.append(frame)
        return frame

    def _abandon_round(self, frame: list[tuple["Rule", Occurrence]]) -> None:
        """Pop the round without running it (delivery raised)."""
        popped = self._exec_state().frames.pop()
        assert popped is frame

    def _finish_round(self, frame: list[tuple["Rule", Occurrence]]) -> None:
        popped = self._exec_state().frames.pop()
        assert popped is frame
        if frame:
            for rule, occurrence in self.resolver(frame):
                self._execute(rule, occurrence)

    # ------------------------------------------------------------------
    # Scheduling (rules call this when their event signals)
    # ------------------------------------------------------------------
    def schedule(self, rule: "Rule", occurrence: Occurrence) -> None:
        self.stats.triggered += 1
        mode = rule.coupling
        if _tracer.enabled:
            _tracer.point(
                "schedule",
                rule.name,
                rule=rule.name,
                coupling=mode.value,
                seq=occurrence.seq,
            )
        if mode is Coupling.IMMEDIATE:
            self.stats.immediate += 1
            frames = self._exec_state().frames
            if frames:
                frames[-1].append((rule, occurrence))
            else:
                self._execute(rule, occurrence)
            return
        if mode is Coupling.DEFERRED:
            self.stats.deferred += 1
            txn = self.db.txn_manager.current if self.db is not None else None
            if txn is not None and txn.is_active:
                txn.add_pre_commit_hook(
                    lambda r=rule, o=occurrence: self._execute(r, o)
                )
            else:
                self._orphan_deferred.append((rule, occurrence))
            return
        # DECOUPLED
        self.stats.decoupled += 1
        txn = self.db.txn_manager.current if self.db is not None else None
        if txn is not None and txn.is_active:
            txn.add_post_commit_hook(
                lambda r=rule, o=occurrence: self._run_decoupled(r, o)
            )
        else:
            self._run_decoupled(rule, occurrence)

    def flush_deferred(self) -> int:
        """Run deferred rules queued outside any transaction."""
        count = 0
        while self._orphan_deferred:
            rule, occurrence = self._orphan_deferred.pop(0)
            self._execute(rule, occurrence)
            count += 1
        return count

    def pending_deferred(self) -> int:
        return len(self._orphan_deferred)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, rule: "Rule", occurrence: Occurrence) -> None:
        if _tracer.enabled:
            span = _tracer.begin(
                "rule",
                rule.name,
                rule=rule.name,
                coupling=rule.coupling.value,
                seq=occurrence.seq,
                depth=self._depth,
            )
            try:
                self._execute_inner(rule, occurrence)
            except BaseException as exc:
                _tracer.end(span, error=type(exc).__name__)
                raise
            _tracer.end(span)
            return
        self._execute_inner(rule, occurrence)

    def _execute_inner(self, rule: "Rule", occurrence: Occurrence) -> None:
        state = self._exec_state()
        if state.depth >= self.max_depth:
            witness = self._cascade_witness(rule.name)
            witness_text = " -> ".join(witness)
            if _signals.active:
                _signals.emit(
                    "scheduler_depth_exceeded",
                    depth=state.depth + 1,
                    threshold=self.max_depth,
                    witness=witness_text,
                )
            if _flight.enabled:
                _flight.record(
                    "error",
                    rule.name,
                    occurrence.seq,
                    f"cascade depth {state.depth + 1}",
                )
                _flight.auto_dump("rule_cascade", witness_text)
            raise CascadeError(
                f"rule cascade deeper than {self.max_depth} "
                f"(at rule {rule.name!r}); check for mutually-triggering "
                f"rules (cascade: {witness_text})",
                witness=witness,
            )
        state.depth += 1
        state.exec_stack.append(rule.name)
        self.stats.max_depth_seen = max(self.stats.max_depth_seen, state.depth)
        if _signals.active and state.depth == _signals.depth_threshold:
            # Crossing the sysmon alert threshold (softer than max_depth,
            # which aborts the cascade) raises an event a rule can act on.
            _signals.emit(
                "scheduler_depth_exceeded",
                depth=state.depth,
                threshold=_signals.depth_threshold,
                witness=" -> ".join(self._cascade_witness()),
            )
        if _audit.enabled or _signals.active:
            # Observed path: same semantics, plus audit/signals/counters.
            # It does its own trace recording and error-policy handling,
            # so only the depth unwind wraps it.
            try:
                self._fire_observed(rule, occurrence)
            finally:
                state.exec_stack.pop()
                state.depth -= 1
            return
        try:
            self.stats.executed += 1
            fired = rule.fire(occurrence)
            if fired:
                self.stats.fired += 1
            self._record_trace(rule, occurrence, fired, None)
            if _flight.enabled:
                _flight.record(
                    "firing",
                    rule.name,
                    occurrence.seq,
                    "fired" if fired else "rejected",
                )
        except TransactionAborted as exc:
            self._record_trace(rule, occurrence, True, str(exc))
            if _flight.enabled:
                _flight.record("firing", rule.name, occurrence.seq, "aborted")
            raise
        except Exception as exc:
            self._record_trace(rule, occurrence, False, str(exc))
            if _flight.enabled:
                _flight.record("error", rule.name, occurrence.seq, repr(exc))
                # A CascadeError already dumped (reason "rule_cascade") at
                # its raise site; don't re-dump per unwinding frame.
                if self.error_policy == "propagate" and not isinstance(
                    exc, CascadeError
                ):
                    _flight.auto_dump("rule_error", f"{rule.name}: {exc!r}")
            if self.error_policy == "propagate":
                raise
            self.stats.errors.append(exc)
        finally:
            state.exec_stack.pop()
            state.depth -= 1

    def current_cascade(self) -> list[str]:
        """The names of the rules currently executing, outermost first."""
        return list(self._exec_stack)

    def _cascade_witness(self, next_rule: str | None = None) -> list[str]:
        """The cascade path to report when the depth guard trips.

        If ``next_rule`` (the rule about to execute) already appears in
        the execution stack, the cascade is a cycle: return the slice
        from its most recent occurrence, closed with the repeat — the
        minimal cycle, matching the witness shape of the static
        analyzer's SA001 finding.  Otherwise return the stack tail
        (bounded, so a deep linear cascade doesn't produce a page-long
        message).
        """
        stack = self._exec_stack
        if next_rule is not None:
            if next_rule in stack:
                last = len(stack) - 1 - stack[::-1].index(next_rule)
                return stack[last:] + [next_rule]
            stack = stack + [next_rule]
        return stack[-16:]

    def _fire_observed(self, rule: "Rule", occurrence: Occurrence) -> None:
        """:meth:`_execute_inner` body with the observation hooks live.

        Runs only when the audit log is open or a sysmon sink is
        attached; the unobserved hot path above stays two flag loads.
        Rules *triggered by* sysmon occurrences execute under signal
        suppression (re-entrancy guard: their firings must not
        manufacture further sysmon events) but are still audited and
        counted — operators see them; the monitor does not.
        """
        from_sysmon = _signals.active and occurrence_from_sysmon(occurrence)
        if from_sysmon:
            _signals.push_suppression()
        outcome = "rejected"
        error: str | None = None
        start = perf_counter()
        try:
            self.stats.executed += 1
            fired = rule.fire(occurrence)
            if fired:
                outcome = "fired"
                self.stats.fired += 1
            self._record_trace(rule, occurrence, fired, None)
        except TransactionAborted as exc:
            outcome, error = "aborted", str(exc)
            self._record_trace(rule, occurrence, True, str(exc))
            raise
        except Exception as exc:
            outcome, error = "error", repr(exc)
            self._record_trace(rule, occurrence, False, str(exc))
            if self.error_policy == "propagate":
                raise
            self.stats.errors.append(exc)
        finally:
            latency_us = (perf_counter() - start) * 1e6
            if from_sysmon:
                _signals.pop_suppression()
            self._observe(rule, occurrence, outcome, error, latency_us,
                          from_sysmon)

    def _observe(
        self,
        rule: "Rule",
        occurrence: Occurrence,
        outcome: str,
        error: str | None,
        latency_us: float,
        from_sysmon: bool,
    ) -> None:
        name = rule.name
        coupling = rule.coupling.value
        if _flight.enabled:
            if outcome == "error":
                _flight.record("error", name, occurrence.seq, error or "")
                # error is repr(exc); CascadeError dumped at its raise site.
                if self.error_policy == "propagate" and not (
                    error or ""
                ).startswith("CascadeError"):
                    _flight.auto_dump("rule_error", f"{name}: {error}")
            else:
                _flight.record("firing", name, occurrence.seq, outcome)
        if _audit.enabled:
            _audit.record(
                rule=name,
                seq=occurrence.seq,
                coupling=coupling,
                condition=outcome in ("fired", "aborted"),
                outcome=outcome,
                error=error,
                latency_us=latency_us,
            )
        _metrics.counter(f"rule_firings{{rule={name},outcome={outcome}}}").inc()
        if not _signals.active or from_sysmon:
            return
        if outcome == "fired":
            _signals.emit(
                "rule_fired",
                rule=name,
                seq=occurrence.seq,
                coupling=coupling,
                latency_us=round(latency_us, 1),
            )
        elif outcome == "rejected":
            _signals.emit(
                "condition_rejected",
                rule=name,
                seq=occurrence.seq,
                coupling=coupling,
            )
        elif outcome == "error":
            _signals.emit(
                "rule_error",
                rule=name,
                seq=occurrence.seq,
                coupling=coupling,
                error=error or "",
            )
        # "aborted": the transaction manager emits txn_aborted itself.

    def _run_decoupled(self, rule: "Rule", occurrence: Occurrence) -> None:
        """Run a decoupled rule in its own transaction.

        With a worker pool attached the rule becomes a pool job; a
        rejected (saturated) submission falls back to the inline path so
        the rule still runs exactly once.
        """
        pool = self.worker_pool
        if pool is not None and self.db is not None:
            if pool.submit(
                lambda r=rule, o=occurrence: self._run_decoupled_job(r, o),
                rule.name,
            ):
                return
            with self._stats_lock:
                self.stats.decoupled_rejected += 1
        if self.db is None:
            try:
                self._execute(rule, occurrence)
            except TransactionAborted:
                self.stats.decoupled_aborts += 1
            return
        try:
            with self.db.transaction():
                self._execute(rule, occurrence)
        except TransactionAborted:
            # The decoupled transaction rolled back; the triggering one is
            # already committed and unaffected.
            self.stats.decoupled_aborts += 1

    def _run_decoupled_job(self, rule: "Rule", occurrence: Occurrence) -> None:
        """One worker-pool job: own transaction, deadlock retry, isolation.

        Runs on a ``rule-worker`` thread.  The scheduler installs itself
        as the thread's ambient scheduler so events the rule's action
        raises cascade back through *this* scheduler, not the process
        default.  Retryable aborts (deadlock victim, lock timeout) rerun
        the rule in a fresh transaction up to the pool's ``max_retries``;
        every other failure is isolated into the stats — a decoupled
        rule's error never escapes its job.
        """
        db = self.db
        assert db is not None
        pool = self.worker_pool
        retries = pool.max_retries if pool is not None else 5
        runtime.push_scheduler(self)
        try:
            attempt = 0
            while True:
                try:
                    with db.transaction():
                        self._execute(rule, occurrence)
                    return
                except TransactionAborted:
                    # The rule aborted itself — deliberate, not retryable.
                    with self._stats_lock:
                        self.stats.decoupled_aborts += 1
                    return
                except OODBError as exc:
                    if not exc.retryable or attempt >= retries:
                        with self._stats_lock:
                            self.stats.decoupled_errors += 1
                            self.stats.errors.append(exc)
                        _metrics.counter("decoupled_retry_exhausted").inc()
                        if _flight.enabled:
                            _flight.record(
                                "error", rule.name, occurrence.seq, repr(exc)
                            )
                        return
                    attempt += 1
                    with self._stats_lock:
                        self.stats.decoupled_retries += 1
                    _metrics.counter("decoupled_retries").inc()
                    # Linear backoff breaks livelock between two workers
                    # repeatedly deadlocking on the same object pair.
                    sleep(0.001 * attempt)
                except Exception as exc:
                    with self._stats_lock:
                        self.stats.decoupled_errors += 1
                        self.stats.errors.append(exc)
                    if _flight.enabled:
                        _flight.record(
                            "error", rule.name, occurrence.seq, repr(exc)
                        )
                    return
        finally:
            runtime.pop_scheduler(self)

    def drain_decoupled(self, timeout: float | None = None) -> bool:
        """Wait for the worker pool to finish its backlog (True if idle)."""
        pool = self.worker_pool
        if pool is None:
            return True
        return pool.drain(timeout)

    def reset_stats(self) -> None:
        self.stats = SchedulerStats()
