"""The Sentinel system façade (§4).

:class:`Sentinel` wires the pieces into the system the paper describes:
the Zeitgeist-like object store (``repro.oodb``), a rule scheduler with
its coupling modes and conflict resolution, the rule/event registries,
and an event detector.  Used as a context manager it installs its
scheduler as the current one, so rules created inside fire through this
system's transactions::

    with Sentinel(path="/tmp/appdb") as sentinel:
        with sentinel.transaction():
            fred = Employee("Fred", 50_000)
            sentinel.db.add(fred)
        rule = sentinel.monitor([fred], on="end Employee::set_salary(float x)",
                                action=lambda ctx: print("salary changed"))

A Sentinel without a database (``Sentinel()``) runs the full active-object
machinery in memory — events, rules, coupling fall back to sensible
non-transactional behaviour — which is what most of the micro-benchmarks
use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from ..oodb.database import Database
from .coupling import Coupling
from .events.base import Event
from .events.detector import EventDetector
from .monitor import monitor as _monitor
from .reactive import Reactive
from .registry import EventRegistry, RuleRegistry, default_registry
from .rules import Rule
from .runtime import pop_scheduler, push_scheduler
from .scheduler import RuleScheduler

__all__ = ["Sentinel"]


class Sentinel:
    """An active object-oriented database system."""

    def __init__(
        self,
        path: str | None = None,
        db: Database | None = None,
        resolver: str | Callable = "priority",
        max_cascade_depth: int = 32,
        error_policy: str = "propagate",
        adopt_class_rules: bool = True,
    ) -> None:
        if db is not None and path is not None:
            raise ValueError("pass either a path or a Database, not both")
        self.db = db if db is not None else (Database(path) if path else None)
        self.scheduler = RuleScheduler(
            db=self.db,
            resolver=resolver,
            max_depth=max_cascade_depth,
            error_policy=error_policy,
        )
        self.rules = RuleRegistry()
        self.events = EventRegistry()
        self.detector = EventDetector()
        self._txn_monitor = None
        self._sys_monitor = None
        self._obs_server = None
        self._entered = 0
        if adopt_class_rules:
            self._adopt_class_rules()

    def transaction_monitor(self):
        """The reactive object that raises transaction-boundary events.

        Created (and attached to the transaction manager) on first use;
        requires a database.  Subscribe rules to it to react to commits
        and aborts — see :mod:`repro.core.txn_events`.
        """
        if self.db is None:
            raise RuntimeError("transaction events need a database")
        if self._txn_monitor is None:
            from .txn_events import TransactionMonitor

            self._txn_monitor = TransactionMonitor().attach(self.db.txn_manager)
        return self._txn_monitor

    def system_monitor(
        self,
        depth_threshold: int | None = None,
        fsync_slow_us: float | None = None,
    ):
        """The reactive object that raises engine-health events.

        Created (and attached to the engine signal hub) on first use.
        Subscribe rules to it to react to rule errors, rejected
        conditions, transaction aborts, cascade-depth alerts, and slow
        WAL fsyncs — see :mod:`repro.obs.sysmon`.
        """
        if self._sys_monitor is None:
            from ..obs.sysmon import SystemMonitor

            self._sys_monitor = SystemMonitor().attach(
                depth_threshold=depth_threshold, fsync_slow_us=fsync_slow_us
            )
        return self._sys_monitor

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start (or return) the HTTP exporter for this system.

        Serves ``/metrics`` (OpenMetrics), ``/healthz`` and ``/vars``
        from a daemon thread; ``port=0`` picks an ephemeral port (read
        ``.port``/``.url`` on the returned server).
        """
        if self._obs_server is None:
            from ..obs.exporter import ObservabilityServer

            self._obs_server = ObservabilityServer(
                sentinel=self, host=host, port=port
            ).start()
        return self._obs_server

    def enable_worker_pool(
        self,
        max_workers: int = 4,
        queue_limit: int = 64,
        max_retries: int = 5,
    ):
        """Run decoupled rules on a bounded worker pool.

        Without a pool, *decoupled* rules run as post-commit callbacks on
        the committing thread — correct but serial.  With one, the
        committing thread hands the rule off and returns immediately; the
        worker runs it in its own transaction with a deadlock-retry loop
        (``max_retries`` attempts).  ``queue_limit`` bounds outstanding
        jobs; when the pool is full the rule falls back to running inline
        (and a ``worker_pool_saturated`` signal fires).  Returns the
        pool; :meth:`drain_decoupled` waits for outstanding jobs and
        :meth:`close` shuts the pool down.
        """
        from .workers import RuleWorkerPool

        if self.scheduler.worker_pool is not None:
            return self.scheduler.worker_pool
        pool = RuleWorkerPool(
            max_workers=max_workers,
            queue_limit=queue_limit,
            max_retries=max_retries,
        )
        self.scheduler.worker_pool = pool
        return pool

    def disable_worker_pool(self) -> None:
        """Drain and shut down the decoupled-rule worker pool."""
        pool = self.scheduler.worker_pool
        if pool is None:
            return
        self.scheduler.worker_pool = None
        pool.drain(timeout=30.0)
        pool.shutdown(wait=True)

    def drain_decoupled(self, timeout: float | None = None) -> bool:
        """Wait for all queued decoupled rule jobs; False on timeout."""
        return self.scheduler.drain_decoupled(timeout=timeout)

    def enable_lockdep(self):
        """Attach the runtime lock-order sanitizer to the database.

        Every first-time lock grant then records ordering edges at
        lock-class granularity; observing two classes acquired in both
        orders reports a ``lock_order_inversion`` (metrics counter,
        flight-recorder entry, engine signal — see
        :mod:`repro.oodb.lockdep`).  Returns the recorder; its
        ``export()`` feeds ``tools.analyze --lockdep-graph``.
        """
        if self.db is None:
            raise RuntimeError("lockdep needs a database")
        return self.db.enable_lockdep()

    def disable_lockdep(self) -> None:
        """Detach the lock-order sanitizer (no-op without a database)."""
        if self.db is not None:
            self.db.disable_lockdep()

    def enable_audit(self, path: str, max_bytes: int = 1 << 20, keep: int = 3):
        """Open the durable rule-firing audit trail at ``path``.

        The audit log is process-wide (:data:`repro.obs.audit.audit_log`);
        this convenience opens it and returns it.  Query with
        ``python -m repro.tools.audit``.
        """
        from ..obs.audit import audit_log

        return audit_log.open(path, max_bytes=max_bytes, keep=keep)

    def enable_slow_log(
        self,
        path: str,
        max_bytes: int = 1 << 20,
        keep: int = 3,
        **thresholds: float,
    ):
        """Open the slow-operation log at ``path``.

        Once open, queries, rule condition/action bodies, WAL fsyncs and
        transactions that overrun their thresholds are appended as JSONL
        with enough context to reproduce them, and the matching sysmon
        signals (``query_slow``/``rule_slow``/``txn_long``) fire.
        Thresholds (``slow_query_us``, ``slow_rule_us``, ``slow_fsync_us``,
        ``long_txn_us``) pass through as keywords.  The log is
        process-wide (:data:`repro.obs.slowlog.slow_op_log`); this
        convenience opens it and returns it.
        """
        from ..obs.slowlog import slow_op_log

        return slow_op_log.open(
            path, max_bytes=max_bytes, keep=keep, **thresholds
        )

    def disable_slow_log(self) -> None:
        """Close the slow-operation log and restore default thresholds."""
        from ..obs.slowlog import slow_op_log

        slow_op_log.close()
        slow_op_log.reset_thresholds()

    def enable_telemetry(
        self,
        path: str,
        interval: float = 5.0,
        slos: Any = (),
        start: bool = True,
        **store_opts: Any,
    ):
        """Start continuous telemetry: scrape metrics into ``path``.

        Opens the process-wide telemetry handle
        (:data:`repro.obs.tsdb.telemetry`) over an on-disk time-series
        store at ``path`` and launches the background collector, which
        scrapes ``metrics.snapshot()`` every ``interval`` seconds and
        evaluates any :class:`repro.obs.slo.SLO` objectives in ``slos``
        — breaches fire ``slo_breach`` sysmon events, so attach a
        :meth:`system_monitor` to route them into rules.  ``start=False``
        opens the store without the thread (drive
        ``telemetry.collector.scrape_once()`` yourself — tests do).
        Store options (``segment_bytes``, ``retain_bytes``,
        ``retain_age_s``) pass through.  Inspect with ``python -m
        repro.tools.tsdb`` and the exporter's ``/history`` endpoint;
        returns the handle.
        """
        from ..obs.tsdb import telemetry

        return telemetry.open(
            path, interval=interval, slos=slos, start=start, **store_opts
        )

    def disable_telemetry(self) -> None:
        """Stop the telemetry collector and close the store."""
        from ..obs.tsdb import telemetry

        telemetry.close()

    def flight_recorder(self):
        """The process-wide flight recorder (always on by default).

        Returns :data:`repro.obs.flight.flight_recorder`; read
        ``snapshot()`` for the last-N engine events or ``dump(path)`` to
        write them out.  See :meth:`configure_flight` to size the ring or
        point automatic crash dumps at a directory.
        """
        from ..obs.flight import flight_recorder

        return flight_recorder

    def configure_flight(self, **kwargs: Any):
        """Configure the flight recorder (capacity/dump_dir/dump_keep/enabled).

        Keyword arguments pass through to
        :meth:`repro.obs.flight.FlightRecorder.configure`; returns the
        recorder for chaining.
        """
        from ..obs.flight import flight_recorder

        flight_recorder.configure(**kwargs)
        return flight_recorder

    def _adopt_class_rules(self) -> None:
        """Bind already-materialized class rules to this system's scheduler.

        Class rules are created at import time against the process default
        scheduler; a system that wants them transactional adopts them.
        """
        for rule in default_registry():
            rule.bind_scheduler(self.scheduler)
            self.rules.add(rule)

    # ------------------------------------------------------------------
    # Context management: install this system's scheduler as current
    # ------------------------------------------------------------------
    def __enter__(self) -> "Sentinel":
        push_scheduler(self.scheduler)
        self._entered += 1
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._entered -= 1
        pop_scheduler(self.scheduler)

    def close(self) -> None:
        self.disable_worker_pool()
        if self._obs_server is not None:
            self._obs_server.stop()
            self._obs_server = None
        from ..obs.tsdb import telemetry

        telemetry.close()
        if self._sys_monitor is not None:
            self._sys_monitor.detach()
            self._sys_monitor = None
        if self.db is not None:
            self.db.close()

    # ------------------------------------------------------------------
    # Transactions (pass-through plus deferred-rule flushing)
    # ------------------------------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator[Any]:
        if self.db is None:
            # No store: a "transaction" is just a deferred-rule scope.
            try:
                yield None
            finally:
                self.scheduler.flush_deferred()
            return
        with self.db.transaction() as txn:
            yield txn

    def commit(self) -> None:
        if self.db is not None:
            self.db.commit()
        self.scheduler.flush_deferred()

    def abort(self) -> None:
        if self.db is not None:
            self.db.abort()

    # ------------------------------------------------------------------
    # Rule and event creation
    # ------------------------------------------------------------------
    def create_rule(
        self,
        name: str | None = None,
        event: "Event | str | None" = None,
        condition: Any = None,
        action: Any = None,
        coupling: "Coupling | str" = Coupling.IMMEDIATE,
        priority: int = 0,
        enabled: bool = True,
        persist: bool = False,
    ) -> Rule:
        """Create (and register) a rule bound to this system's scheduler."""
        from .dsl import compile_action, compile_condition, parse_event

        if isinstance(event, str):
            event = parse_event(event)
        if isinstance(condition, str):
            condition = compile_condition(condition)
        if isinstance(action, str):
            action = compile_action(action)
        rule = Rule(
            name=name,
            event=event,
            condition=condition,
            action=action,
            coupling=coupling,
            priority=priority,
            enabled=enabled,
            scheduler=self.scheduler,
        )
        self.rules.add(rule)
        if persist:
            self.persist(rule)
        return rule

    def rule_from_spec(self, text: str, persist: bool = False) -> Rule:
        """Create a rule from an R/E/C/A/M specification block."""
        from .dsl import parse_rule

        rule = parse_rule(text, scheduler=self.scheduler)
        self.rules.add(rule)
        if persist:
            self.persist(rule)
        return rule

    def create_event(self, spec: "str | Event", name: str | None = None) -> Event:
        """Create (and register) an event from an expression or tree."""
        from .dsl import parse_event

        event = parse_event(spec) if isinstance(spec, str) else spec
        if name is not None:
            event.name = name
        self.events.add(event)
        self.detector.register(event)
        return event

    def monitor(
        self,
        objects: "Reactive | Iterable[Reactive]",
        on: "str | Event",
        condition: Any = None,
        action: Any = None,
        name: str | None = None,
        coupling: "Coupling | str" = Coupling.IMMEDIATE,
        priority: int = 0,
    ) -> Rule:
        """External monitoring viewpoint: rule + subscriptions in one call."""
        rule = _monitor(
            objects,
            on,
            condition=condition,
            action=action,
            name=name,
            coupling=coupling,
            priority=priority,
            scheduler=self.scheduler,
            register=False,
        )
        self.rules.add(rule)
        return rule

    # ------------------------------------------------------------------
    # Persistence of rules/events (first-class objects, §3.4)
    # ------------------------------------------------------------------
    def persist(self, obj: Any) -> None:
        """Store a rule/event (or any persistent object) in the database."""
        if self.db is None:
            raise RuntimeError("this Sentinel system has no database")
        implicit = self.db.txn_manager.current is None
        self.db.add(obj)
        if implicit:
            self.db.commit()

    def load_rules(self) -> list[Rule]:
        """Fetch every stored rule, re-register, and bind to this system."""
        if self.db is None:
            return []
        stored: list[Rule] = []
        for rule in self.db.query(Rule):
            rule.bind_scheduler(self.scheduler)
            if rule.name not in self.rules:
                self.rules.add(rule)
            stored.append(rule)
        return stored

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def max_cascade_depth(self) -> int:
        """The scheduler's cascade depth limit (runtime-adjustable)."""
        return self.scheduler.max_depth

    @max_cascade_depth.setter
    def max_cascade_depth(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("max_cascade_depth must be at least 1")
        self.scheduler.max_depth = depth

    def analyze(self, **kwargs: Any):
        """Run the static rule-set analyzer over this system.

        Returns an :class:`repro.analysis.AnalysisReport`: the triggering
        graph plus termination / confluence / dead-rule / signature
        findings.  Pure inspection — no rule fires, no state changes.
        Keyword arguments pass through to :func:`repro.analysis.analyze`.
        """
        from ..analysis import analyze as _analyze

        return _analyze(self, **kwargs)

    def stats(self) -> dict[str, Any]:
        s = self.scheduler.stats
        return {
            "rules": len(self.rules),
            "events": len(self.events),
            "triggered": s.triggered,
            "executed": s.executed,
            "fired": s.fired,
            "immediate": s.immediate,
            "deferred": s.deferred,
            "decoupled": s.decoupled,
            "transactions_committed": (
                self.db.txn_manager.committed if self.db else 0
            ),
            "transactions_aborted": (
                self.db.txn_manager.aborted if self.db else 0
            ),
        }
