"""Transaction events: rules triggered by transaction boundaries.

Because events and rules are first-class, nothing stops the *transaction
manager itself* from being an event producer — the paper's "specification
of rules on any set of objects" taken to its natural conclusion, and a
standard capability of later active database systems.

:class:`TransactionMonitor` is a reactive object whose methods are driven
by the :class:`~repro.oodb.transactions.TransactionManager` observer hook:

* ``txn_begin(txn_id)``
* ``txn_commit(txn_id, objects_touched)``
* ``txn_abort(txn_id, objects_touched)``

Rules subscribe to it like to any reactive object::

    monitor = sentinel.transaction_monitor()
    sentinel.monitor(
        [monitor],
        on="end TransactionMonitor::txn_commit(int txn_id, int objects_touched)",
        condition=lambda ctx: ctx.param("objects_touched") > 100,
        action=lambda ctx: log.warn("large transaction committed"),
    )

Reentrancy: rules fired by a commit event may themselves run transactions
(decoupled coupling always does).  Events for those *nested* transactions
are suppressed, so a decoupled rule on ``txn_commit`` cannot re-trigger
itself forever.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .interface import event_method
from .reactive import Reactive

if TYPE_CHECKING:  # pragma: no cover
    from ..oodb.transactions import Transaction, TransactionManager

__all__ = ["TransactionMonitor"]


class TransactionMonitor(Reactive):
    """The transaction manager's event-generating face."""

    _p_transient = Reactive._p_transient + ("_manager", "_emitting")

    def __init__(self) -> None:
        super().__init__()
        self.begins = 0
        self.commits = 0
        self.aborts = 0
        object.__setattr__(self, "_manager", None)
        object.__setattr__(self, "_emitting", False)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, manager: "TransactionManager") -> "TransactionMonitor":
        """Start receiving life-cycle notifications from ``manager``."""
        object.__setattr__(self, "_manager", manager)
        manager.add_observer(self._observe)
        return self

    def detach(self) -> None:
        manager = getattr(self, "_manager", None)
        if manager is not None:
            manager.remove_observer(self._observe)
            object.__setattr__(self, "_manager", None)

    def _observe(self, kind: str, txn: "Transaction") -> None:
        if getattr(self, "_emitting", False):
            return  # nested transaction from a rule we triggered
        object.__setattr__(self, "_emitting", True)
        try:
            touched = len(txn.touched_oids()) + len(txn.deleted_oids())
            if kind == "begin":
                self.txn_begin(txn.id)
            elif kind == "commit":
                self.txn_commit(txn.id, touched)
            elif kind == "abort":
                self.txn_abort(txn.id, touched)
        finally:
            object.__setattr__(self, "_emitting", False)

    # ------------------------------------------------------------------
    # Event generators (the observable surface)
    # ------------------------------------------------------------------
    @event_method
    def txn_begin(self, txn_id: int) -> None:
        self.begins += 1

    @event_method
    def txn_commit(self, txn_id: int, objects_touched: int) -> None:
        self.commits += 1

    @event_method
    def txn_abort(self, txn_id: int, objects_touched: int) -> None:
        self.aborts += 1
