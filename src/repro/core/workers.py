"""A bounded worker pool for decoupled rule execution.

The paper's *decoupled* coupling mode runs a rule **after** its
triggering transaction commits, in a transaction of its own.  The
single-threaded engine realizes that as a post-commit callback on the
committing thread — correct, but the triggering thread still pays the
rule's latency.  This pool restores the mode's point: post-commit hooks
hand the rule to a worker thread and the triggering thread returns
immediately.

Design constraints, in order:

* **Bounded.**  ``queue_limit`` caps submitted-but-unfinished jobs via a
  semaphore acquired *non-blocking* at submit time.  A full pool rejects
  the job — the caller falls back to running it inline (decoupled rules
  must run exactly once; silently dropping one is not an option) — and
  the rejection is observable: a ``worker_pool_saturated`` engine signal,
  a metrics counter, and the ``rejected`` stat all fire.
* **Isolated.**  Each job is one rule in its own transaction with its own
  deadlock-retry loop (the scheduler owns that logic); a job that still
  fails must never unwind into the worker thread, so :meth:`submit` wraps
  every job in a last-resort catch that counts, audits to
  ``stats()['failed']``, and moves on.
* **Drainable.**  Tests and orderly shutdown need "all submitted work
  finished": :meth:`drain` blocks until the backlog hits zero.

The pool itself knows nothing about rules or databases — it runs
callables.  The scheduler (:mod:`repro.core.scheduler`) builds the rule
transaction/retry wrapper and submits it here.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import monotonic
from typing import Any, Callable

from ..obs.metrics import metrics as _metrics
from ..obs.signals import engine_signals as _signals

__all__ = ["RuleWorkerPool"]


class RuleWorkerPool:
    """Bounded ``ThreadPoolExecutor`` front end for decoupled rule jobs."""

    def __init__(
        self,
        max_workers: int = 4,
        queue_limit: int = 64,
        max_retries: int = 5,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_workers = max_workers
        self.queue_limit = queue_limit
        #: Deadlock/lock-timeout retry budget the scheduler grants each job.
        self.max_retries = max_retries
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="rule-worker"
        )
        # One slot per submitted-but-unfinished job; non-blocking acquire
        # at submit is what makes the pool *bounded* instead of queueing
        # without limit.
        self._slots = threading.BoundedSemaphore(queue_limit)
        self._state = threading.Condition(threading.Lock())
        self._backlog = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, job: Callable[[], None], label: str = "") -> bool:
        """Run ``job`` on a worker thread; False if the pool is full/closed.

        On False the caller still owns the job (run it inline).  The
        rejection emits ``worker_pool_saturated`` so a sysmon ECA rule —
        or a ``/healthz`` probe — can see sustained saturation.
        """
        if self._closed:
            return False
        if not self._slots.acquire(blocking=False):
            with self._state:
                self._rejected += 1
                backlog = self._backlog
            _metrics.counter("worker_pool_rejections").inc()
            if _signals.active:
                _signals.emit(
                    "worker_pool_saturated",
                    backlog=backlog,
                    queue_limit=self.queue_limit,
                    rule=label,
                )
            return False
        with self._state:
            self._submitted += 1
            self._backlog += 1

        def run() -> None:
            try:
                job()
            except BaseException:
                # The scheduler's job wrapper already isolates rule
                # errors; anything that reaches here is a harness bug.
                # Count it rather than killing the worker thread.
                with self._state:
                    self._failed += 1
                _metrics.counter("worker_pool_job_failures").inc()
            finally:
                self._slots.release()
                with self._state:
                    self._backlog -= 1
                    self._completed += 1
                    self._state.notify_all()

        try:
            self._executor.submit(run)
        except RuntimeError:
            # Shut down between the closed-check and here.
            self._slots.release()
            with self._state:
                self._submitted -= 1
                self._backlog -= 1
                self._rejected += 1
            return False
        return True

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Jobs submitted but not yet finished (queued + running)."""
        with self._state:
            return self._backlog

    def stats(self) -> dict[str, Any]:
        with self._state:
            return {
                "max_workers": self.max_workers,
                "queue_limit": self.queue_limit,
                "backlog": self._backlog,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
            }

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job finished; False on timeout."""
        with self._state:
            if timeout is None:
                while self._backlog:
                    self._state.wait()
                return True
            deadline = monotonic() + timeout
            while self._backlog:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    return False
                self._state.wait(remaining)
            return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight jobs."""
        self._closed = True
        self._executor.shutdown(wait=wait)
