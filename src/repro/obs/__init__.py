"""``repro.obs`` — observability for the event→rule pipeline and the OODB.

The passive half is deliberately free of imports from ``repro.core`` and
``repro.oodb`` (they feed *into* this package, never the reverse):

* :mod:`repro.obs.metrics` — a process-wide registry of named counters
  and latency histograms (p50/p95/p99).  The PR-1 fast-path counters
  (``PipelineStats``) now live here; ``repro.stats`` remains as a thin
  compatibility alias.
* :mod:`repro.obs.tracer` — a causality tracer: lightweight spans linking
  method invocation → bom/eom occurrence → detector evaluation → rule
  condition → action (and, on the OODB side, transaction commits and WAL
  writes), recorded into a bounded ring buffer with JSONL export; an
  ``enable(sample=N)`` knob records one chain in every N.
* :mod:`repro.obs.signals` — the dependency-free hub engine layers emit
  health signals into.
* :mod:`repro.obs.audit` — the durable, size-rotated JSONL audit trail
  of rule firings (queried by ``python -m repro.tools.audit``).
* :mod:`repro.obs.slowlog` — the threshold-driven slow-operation log:
  slow queries (with their analyzed plans), slow rule bodies, slow WAL
  fsyncs, and long transactions, as rotated JSONL.
* :mod:`repro.obs.flight` — the always-on flight recorder: a bounded
  ring of the last N transactions/queries/firings/errors, snapshotted
  automatically when something goes wrong (``python -m
  repro.tools.doctor`` bundles it).
* :mod:`repro.obs.slo` — declarative service-level objectives with
  multi-window burn-rate thresholds, evaluated over telemetry history.
* :mod:`repro.obs.tsdb` — continuous telemetry: a background collector
  scraping the registry into a crash-safe on-disk time-series store
  (append-only delta-encoded segments, size/age retention, range/rate
  read API; ``python -m repro.tools.tsdb`` inspects it), raising SLO
  breaches as ``slo_breach`` sysmon events.

The operational half builds *on top of* the engine and is therefore
imported lazily (``repro.obs.sysmon`` needs ``repro.core``, which itself
imports the tracer — an eager import here would be a cycle):

* :mod:`repro.obs.sysmon` — the ``SystemMonitor`` reactive object that
  turns engine signals into first-class events for ECA rules.
* :mod:`repro.obs.exporter` — OpenMetrics/``/healthz``/``/vars`` HTTP
  exporter on a background thread.

Instrumented code checks one flag (``tracer.enabled``, ``signals.active``,
``audit_log.enabled``) and takes a single guarded branch; with everything
off the hot paths pay an attribute load per instrumented function.
``benchmarks/test_bench_obs.py`` holds that cost to ≤5% of the committed
per-event overhead baseline, and holds 1-in-16 sampled tracing to ≤1.5×
the disabled-mode figure.
"""

from .audit import AuditLog, audit_log
from .flight import FlightRecorder, flight_recorder
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    PipelineStats,
    metrics,
    pipeline_stats,
    reset_pipeline_stats,
)
from .signals import SIGNAL_KINDS, EngineSignals, engine_signals
from .slo import DEFAULT_BURN_WINDOWS, SLO, SLOStatus, Window, evaluate_slo
from .slowlog import SlowOpLog, slow_op_log
from .tracer import CausalityTracer, Span, tracer
from .tsdb import (
    Telemetry,
    TelemetryCollector,
    TimeSeriesStore,
    flatten_snapshot,
    telemetry,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "PipelineStats",
    "pipeline_stats",
    "reset_pipeline_stats",
    "CausalityTracer",
    "Span",
    "tracer",
    "AuditLog",
    "audit_log",
    "EngineSignals",
    "engine_signals",
    "SIGNAL_KINDS",
    "SlowOpLog",
    "slow_op_log",
    "FlightRecorder",
    "flight_recorder",
    "SLO",
    "SLOStatus",
    "Window",
    "evaluate_slo",
    "DEFAULT_BURN_WINDOWS",
    "TimeSeriesStore",
    "TelemetryCollector",
    "Telemetry",
    "telemetry",
    "flatten_snapshot",
    # lazy (see __getattr__):
    "SystemMonitor",
    "occurrence_from_sysmon",
    "ObservabilityServer",
    "render_openmetrics",
]

_LAZY = {
    "SystemMonitor": "sysmon",
    "occurrence_from_sysmon": "sysmon",
    "ObservabilityServer": "exporter",
    "render_openmetrics": "exporter",
    "build_checks": "exporter",
    "run_checks": "exporter",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module_name}", __name__), name)
