"""``repro.obs`` — observability for the event→rule pipeline and the OODB.

Two halves, both deliberately free of imports from ``repro.core`` and
``repro.oodb`` (they feed *into* this package, never the reverse):

* :mod:`repro.obs.metrics` — a process-wide registry of named counters
  and latency histograms (p50/p95/p99).  The PR-1 fast-path counters
  (``PipelineStats``) now live here; ``repro.stats`` remains as a thin
  compatibility alias.
* :mod:`repro.obs.tracer` — a causality tracer: lightweight spans linking
  method invocation → bom/eom occurrence → detector evaluation → rule
  condition → action (and, on the OODB side, transaction commits and WAL
  writes), recorded into a bounded ring buffer with JSONL export.

Instrumented code checks one flag (``tracer.enabled``) and takes a single
guarded branch; with tracing disabled the hot paths pay one attribute
load per instrumented function.  ``benchmarks/test_bench_obs.py`` holds
that cost to ≤5% of the committed per-event overhead baseline.
"""

from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    PipelineStats,
    metrics,
    pipeline_stats,
    reset_pipeline_stats,
)
from .tracer import CausalityTracer, Span, tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "PipelineStats",
    "pipeline_stats",
    "reset_pipeline_stats",
    "CausalityTracer",
    "Span",
    "tracer",
]
