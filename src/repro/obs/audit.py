"""Durable audit trail: every rule firing, append-only, as JSONL.

Traces are sampled and ring-buffered; metrics are aggregates.  Neither
answers "what did rule X actually do at 14:02?".  The audit log does: the
scheduler appends one JSON object per rule execution — fired, rejected by
its condition, errored, or aborted by its own transaction — regardless of
trace sampling, to a size-rotated file that survives the process.

One entry per line::

    {"ts": 1754380800.123, "rule": "audit_salary", "seq": 42,
     "coupling": "immediate", "condition": true, "outcome": "fired",
     "error": null, "latency_us": 18.4}

``outcome`` is one of :data:`OUTCOMES`; ``error`` carries the exception
repr for ``error`` outcomes and the abort reason for ``aborted`` ones.

Rotation is by size: when an append pushes the file past ``max_bytes``
the file is renamed to ``<path>.1`` (existing ``.1`` → ``.2``, …) and a
fresh file is started; at most ``keep`` rotated generations are retained.
Entries are flushed per append (the log is crash-readable up to the last
line), not fsynced (that budget belongs to the WAL).

Like the other hot-path observability hooks, the scheduler guards its
call site with one flag load (``if _audit.enabled:``); an unopened log
costs nothing.  Appends are serialized by an internal mutex, so rule
workers audit from any thread; entries written off the main thread carry
a ``thread`` field naming the worker that ran the rule.

``python -m repro.tools.audit`` queries the log (filters, tail, summary).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import IO, Any, Iterator

__all__ = [
    "AuditLog",
    "audit_log",
    "OUTCOMES",
    "read_entries",
    "tail_entries",
]

#: The verdicts a rule execution can audit as.
OUTCOMES = ("fired", "rejected", "error", "aborted")


class AuditLog:
    """Append-only, size-rotated JSONL log of rule firings."""

    __slots__ = (
        "enabled",
        "path",
        "max_bytes",
        "keep",
        "_handle",
        "_size",
        "_lock",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.path: str | None = None
        self.max_bytes = 1 << 20
        self.keep = 3
        self._handle: IO[str] | None = None
        self._size = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(
        self, path: str, max_bytes: int = 1 << 20, keep: int = 3
    ) -> "AuditLog":
        """Start auditing to ``path`` (appends if it already exists)."""
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.close()
        with self._lock:
            self.path = path
            self.max_bytes = max_bytes
            self.keep = keep
            self._handle = open(path, "a", encoding="utf-8")
            self._size = self._handle.tell()
            self.enabled = True
        return self

    def close(self) -> None:
        self.enabled = False
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Writing (any thread; appends serialize on the mutex)
    # ------------------------------------------------------------------
    def record(
        self,
        rule: str,
        seq: int,
        coupling: str,
        condition: bool,
        outcome: str,
        error: str | None = None,
        latency_us: float = 0.0,
    ) -> None:
        """Append one firing entry (call sites guard on :attr:`enabled`)."""
        entry = {
            "ts": round(time.time(), 3),
            "rule": rule,
            "seq": seq,
            "coupling": coupling,
            "condition": condition,
            "outcome": outcome,
            "error": error,
            "latency_us": round(latency_us, 1),
        }
        current = threading.current_thread()
        if current is not threading.main_thread():
            entry["thread"] = current.name
        line = json.dumps(entry, default=str)
        with self._lock:
            handle = self._handle
            if handle is None:
                return
            handle.write(line)
            handle.write("\n")
            handle.flush()
            self._size += len(line) + 1
            if self._size >= self.max_bytes:
                self._rotate()

    def _rotate(self) -> None:
        assert self.path is not None and self._handle is not None
        self._handle.close()
        oldest = f"{self.path}.{self.keep}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for i in range(self.keep - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0


def read_entries(
    path: str, include_rotated: bool = True
) -> Iterator[dict[str, Any]]:
    """Yield audit entries oldest-first, rotated generations included.

    Unparseable lines (a torn final line after a crash) are skipped.
    """
    paths: list[str] = []
    if include_rotated:
        generation = 1
        rotated = []
        while os.path.exists(f"{path}.{generation}"):
            rotated.append(f"{path}.{generation}")
            generation += 1
        paths.extend(reversed(rotated))
    if os.path.exists(path):
        paths.append(path)
    for name in paths:
        with open(name, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue


def tail_entries(
    path: str, count: int, include_rotated: bool = True
) -> list[dict[str, Any]]:
    """The last ``count`` entries, oldest-first, spanning rotations.

    Walks generations newest-first (``path``, then ``.1``, ``.2``, …)
    and stops as soon as enough entries are collected, so a short tail
    over a heavily-rotated log reads only the files it needs.
    """
    if count <= 0:
        return []
    paths = [path] if os.path.exists(path) else []
    if include_rotated:
        generation = 1
        while os.path.exists(f"{path}.{generation}"):
            paths.append(f"{path}.{generation}")
            generation += 1
    collected: list[dict[str, Any]] = []
    for name in paths:  # newest generation first
        entries: list[dict[str, Any]] = []
        with open(name, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue
        # Prepend this (older) generation's contribution.
        needed = count - len(collected)
        collected = entries[-needed:] + collected
        if len(collected) >= count:
            break
    return collected


#: The process-wide audit log; the scheduler binds this to a local and
#: branches on ``_audit.enabled``.
audit_log = AuditLog()
