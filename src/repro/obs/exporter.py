"""OpenMetrics/health HTTP exporter over the metrics registry.

The registry and tracer are in-process structures; this module puts an
operational surface in front of them using only the stdlib.  A
:class:`ObservabilityServer` runs a ``http.server`` daemon thread with
three endpoints:

``/metrics``
    :func:`render_openmetrics` over ``metrics.snapshot()`` — counters as
    ``<name>_total``, histograms as OpenMetrics *summary* families
    (``quantile`` labels plus ``_count``/``_sum``) and, when they carry
    samples, as true cumulative *histogram* families under
    ``<name>_hist`` (``_bucket{le=...}`` over the log-spaced
    :data:`repro.obs.metrics.BUCKET_BOUNDS`, so external scrapers can
    aggregate across processes — summaries can't be merged, buckets
    can), terminated by ``# EOF``.
``/healthz``
    structured health checks (WAL writable, rule error rate, scheduler
    queue depth, worker-pool backlog, recovery clean, and — when
    continuous telemetry is on —
    a *windowed* error rate over the store) as JSON; HTTP 200 when every
    check passes, 503 when any is degraded.
``/vars``
    the raw snapshot as JSON (what ``repro.tools.top`` polls).
``/history``
    range queries over the on-disk telemetry store
    (:mod:`repro.obs.tsdb`): no parameters lists series and SLO
    statuses; ``?series=NAME[&start=][&end=][&window=&fn=avg]`` returns
    samples or a windowed aggregate.  503 while telemetry is disabled.

The server thread only ever *reads*: ``snapshot()``/``summary()`` take
copies under the registry lock (see :mod:`repro.obs.metrics`), so the
engine thread stays the single writer and pays no new cost.

**Labeled counters.**  The engine encodes labels in counter names with a
brace convention — ``rule_firings{rule=audit_salary,outcome=fired}`` —
because the registry itself is a flat namespace.  The renderer parses
that back into proper OpenMetrics labels (escaping ``\\``, ``"`` and
newlines per the spec) and groups same-base series under one family.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs

from .metrics import MetricsRegistry, metrics
from .slo import sum_increase

__all__ = [
    "render_openmetrics",
    "build_checks",
    "run_checks",
    "history_payload",
    "ObservabilityServer",
    "OPENMETRICS_CONTENT_TYPE",
]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


# ----------------------------------------------------------------------
# OpenMetrics rendering
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    """A legal OpenMetrics metric name (``.`` and friends become ``_``)."""
    name = _NAME_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def parse_metric_name(name: str) -> tuple[str, dict[str, str]]:
    """Split ``base{k=v,k2=v2}`` into ``(base, labels)``.

    Values run to the next ``,`` or the closing ``}`` — the convention
    deliberately has no quoting, so label values must not contain those
    two characters (rule names never do).
    """
    brace = name.find("{")
    if brace < 0 or not name.endswith("}"):
        return name, {}
    labels: dict[str, str] = {}
    for pair in name[brace + 1 : -1].split(","):
        key, sep, value = pair.partition("=")
        if sep:
            labels[key.strip()] = value.strip()
    return name[:brace], labels


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return format(value, "g")
    return str(value)


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_sanitize(k)}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def render_openmetrics(snapshot: dict[str, Any]) -> str:
    """Render a ``metrics.snapshot()`` dict as OpenMetrics text.

    Scalar values (counters, collector counts) become ``counter``
    families; histogram summary dicts become ``summary`` families.
    Families are emitted in sorted order so output is stable for tests.
    """
    counters: dict[str, list[tuple[dict[str, str], Any]]] = {}
    summaries: dict[str, dict[str, Any]] = {}
    for name, value in snapshot.items():
        base, labels = parse_metric_name(name)
        base = _sanitize(base)
        if isinstance(value, dict):
            summaries[base] = value
        else:
            counters.setdefault(base, []).append((labels, value))

    lines: list[str] = []
    for base in sorted(counters):
        lines.append(f"# TYPE {base} counter")
        lines.append(f"# HELP {base} Engine counter {base}.")
        for labels, value in counters[base]:
            lines.append(
                f"{base}_total{_label_str(labels)} {_format_value(value)}"
            )
    for base in sorted(summaries):
        summary = summaries[base]
        lines.append(f"# TYPE {base} summary")
        lines.append(f"# HELP {base} Latency summary {base} (microseconds).")
        for key, quantile in _QUANTILES:
            if key in summary:
                lines.append(
                    f'{base}{{quantile="{quantile}"}} '
                    f"{_format_value(summary[key])}"
                )
        lines.append(f"{base}_count {_format_value(summary.get('count', 0))}")
        lines.append(f"{base}_sum {_format_value(summary.get('sum', 0.0))}")
        buckets = summary.get("buckets")
        if isinstance(buckets, dict) and buckets:
            # A true cumulative histogram family.  It gets its own name:
            # the OpenMetrics spec forbids one family being two types,
            # and the summary above already owns `<base>_count`/`_sum`.
            hist = f"{base}_hist"
            lines.append(f"# TYPE {hist} histogram")
            lines.append(
                f"# HELP {hist} Cumulative latency buckets for {base} "
                "(microseconds)."
            )
            for le, cumulative in buckets.items():
                lines.append(
                    f'{hist}_bucket{{le="{le}"}} {_format_value(cumulative)}'
                )
            lines.append(
                f"{hist}_count {_format_value(summary.get('count', 0))}"
            )
            lines.append(
                f"{hist}_sum {_format_value(summary.get('sum', 0.0))}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Health checks
# ----------------------------------------------------------------------
Check = Callable[[], tuple[bool, str]]


def build_checks(
    sentinel: Any = None,
    registry: MetricsRegistry = metrics,
    max_error_ratio: float = 0.5,
    max_pending: int = 1000,
    max_windowed_error_ratio: float = 0.1,
    error_window_s: float = 300.0,
) -> dict[str, Check]:
    """The default ``/healthz`` check set.

    Registry-backed checks (error rate) always apply; engine-backed ones
    (WAL writable, scheduler depth, recovery clean) need a ``sentinel``
    and report healthy with an explanatory detail when none is attached.
    The windowed error-rate check judges the last ``error_window_s``
    seconds of history instead of process-lifetime totals — a deploy
    that starts erroring shows up even when yesterday's millions of good
    firings would drown it in the instantaneous ratio — and reports
    healthy with a detail while continuous telemetry is disabled.
    """

    def wal_writable() -> tuple[bool, str]:
        db = getattr(sentinel, "db", None)
        wal = getattr(db, "wal", None) if db is not None else None
        path = getattr(wal, "path", None)
        if path is None:
            return True, "no database attached"
        if os.access(path, os.W_OK):
            return True, f"wal writable: {path}"
        return False, f"wal not writable: {path}"

    def error_rate() -> tuple[bool, str]:
        errors = 0
        total = 0
        for name, value in registry.counters().items():
            base, labels = parse_metric_name(name)
            if base != "rule_firings":
                continue
            total += value
            if labels.get("outcome") == "error":
                errors += value
        if not total:
            return True, "no firings observed"
        ratio = errors / total
        detail = f"{errors}/{total} firings errored"
        return ratio <= max_error_ratio, detail

    def scheduler_depth() -> tuple[bool, str]:
        scheduler = getattr(sentinel, "scheduler", None)
        if scheduler is None:
            return True, "no scheduler attached"
        pending = scheduler.pending_deferred()
        detail = f"{pending} deferred rules pending"
        return pending <= max_pending, detail

    def recovery_clean() -> tuple[bool, str]:
        db = getattr(sentinel, "db", None)
        report = getattr(db, "last_recovery", None) if db is not None else None
        if report is None:
            return True, "no recovery report"
        if report.clean:
            return True, "recovery clean"
        return False, f"recovery replayed {report.redone_updates} updates"

    def worker_pool() -> tuple[bool, str]:
        scheduler = getattr(sentinel, "scheduler", None)
        pool = getattr(scheduler, "worker_pool", None)
        if pool is None:
            return True, "no worker pool configured"
        stats = pool.stats()
        backlog = stats["backlog"]
        limit = stats["queue_limit"]
        detail = (
            f"backlog {backlog}/{limit}, "
            f"rejected {stats['rejected']}, failed {stats['failed']}"
        )
        # Degraded when the queue is full (submits are being rejected
        # right now) — past rejections alone are history, not state.
        return backlog < limit, detail

    def windowed_error_rate() -> tuple[bool, str]:
        from .tsdb import telemetry  # lazy: tsdb sits above this module

        store = telemetry.store
        if store is None:
            return True, "telemetry disabled (instantaneous check only)"
        now = time.time()
        window = int(error_window_s)
        total = sum_increase(store, "rule_firings{*", error_window_s, now)
        if total is None or total <= 0:
            return True, f"no firings in the last {window}s"
        errors = (
            sum_increase(
                store, "rule_firings{*outcome=error}", error_window_s, now
            )
            or 0.0
        )
        ratio = errors / total
        detail = f"{errors:g}/{total:g} firings errored over {window}s"
        return ratio <= max_windowed_error_ratio, detail

    return {
        "wal_writable": wal_writable,
        "error_rate": error_rate,
        "scheduler_depth": scheduler_depth,
        "worker_pool": worker_pool,
        "recovery_clean": recovery_clean,
        "windowed_error_rate": windowed_error_rate,
    }


def run_checks(checks: dict[str, Check]) -> dict[str, Any]:
    """Execute checks; a check that raises counts as degraded."""
    results: dict[str, Any] = {}
    healthy = True
    for name, check in checks.items():
        try:
            ok, detail = check()
        except Exception as exc:  # a broken check is itself a finding
            ok, detail = False, f"check raised: {exc!r}"
        healthy = healthy and ok
        results[name] = {"ok": ok, "detail": detail}
    return {"status": "ok" if healthy else "degraded", "checks": results}


# ----------------------------------------------------------------------
# /history — range queries over the telemetry store
# ----------------------------------------------------------------------
def history_payload(query: str) -> tuple[int, dict[str, Any]]:
    """The ``/history`` response for a raw query string.

    Returns ``(http_status, payload)`` so the handler stays a one-liner
    and tests can call this without a socket.  Without a ``series``
    parameter the payload is an index (series names, SLO statuses, last
    scrape); with one it is the samples in ``[start, end]`` (default:
    the last 600 s), or a single windowed aggregate when ``window`` (and
    optionally ``fn``) is given.
    """
    from .tsdb import telemetry  # lazy: tsdb sits above this module

    store = telemetry.store
    collector = telemetry.collector
    if store is None or collector is None:
        return 503, {
            "enabled": False,
            "detail": "telemetry disabled; call Sentinel.enable_telemetry()",
        }
    params = parse_qs(query)

    def one(key: str) -> str | None:
        values = params.get(key)
        return values[-1] if values else None

    name = one("series")
    if name is None:
        return 200, {
            "enabled": True,
            "dir": store.directory,
            "interval_s": collector.interval,
            "scrapes": collector.scrapes,
            "scrape_errors": collector.scrape_errors,
            "last_scrape_ts": store.last_scrape_ts(),
            "series": store.series(),
            "slos": [s.as_dict() for s in collector.slo_statuses()],
        }
    try:
        end = float(one("end") or time.time())
        start_raw = one("start")
        start = float(start_raw) if start_raw is not None else end - 600.0
        window_raw = one("window")
    except ValueError as exc:
        return 400, {"error": f"bad parameter: {exc}"}
    if window_raw is not None:
        fn = one("fn") or "avg"
        try:
            window = float(window_raw)
            value = store.aggregate(name, window, fn, at=end)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        return 200, {
            "series": name,
            "window_s": window,
            "fn": fn,
            "end": end,
            "value": value,
            "rate": store.rate(name, window, at=end),
        }
    samples = store.query(name, start=start, end=end)
    return 200, {
        "series": name,
        "start": start,
        "end": end,
        "samples": [[ts, value] for ts, value in samples],
    }


def _json_safe(value: Any) -> Any:
    """Snapshot values with non-finite floats stringified (strict JSON)."""
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, float) and (
        value != value or value in (float("inf"), float("-inf"))
    ):
        return str(value)
    return value


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class ObservabilityServer:
    """Background ``/metrics`` + ``/healthz`` + ``/vars`` HTTP server.

    Binds on construction (``port=0`` picks an ephemeral port — read
    :attr:`port`/:attr:`url` after), serves from a daemon thread after
    :meth:`start`.  Use as a context manager in tests.
    """

    def __init__(
        self,
        sentinel: Any = None,
        registry: MetricsRegistry = metrics,
        checks: dict[str, Check] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.checks = (
            checks
            if checks is not None
            else build_checks(sentinel, registry=registry)
        )
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = render_openmetrics(server.registry.snapshot())
                    self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
                elif path == "/healthz":
                    report = run_checks(server.checks)
                    status = 200 if report["status"] == "ok" else 503
                    self._reply(
                        status, "application/json", json.dumps(report) + "\n"
                    )
                elif path == "/vars":
                    body = json.dumps(_json_safe(server.registry.snapshot()))
                    self._reply(200, "application/json", body + "\n")
                elif path == "/history":
                    parts = self.path.split("?", 1)
                    status, payload = history_payload(
                        parts[1] if len(parts) > 1 else ""
                    )
                    self._reply(
                        status,
                        "application/json",
                        json.dumps(_json_safe(payload)) + "\n",
                    )
                else:
                    self._reply(404, "text/plain", "not found\n")

            def _reply(self, status: int, ctype: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args: Any) -> None:
                pass  # keep the engine's stdout clean

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-obs-exporter",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
