"""Always-on flight recorder: the last N engine events, crash-dumpable.

The tracer answers "show me one chain in detail" and costs enough that
it ships disabled.  The audit log answers "what did rule X do at 14:02"
and needs a file opened first.  Neither helps when a process that was
never instrumented hits a ``RuleCascadeError`` at 3am — by then the
evidence is gone.  The flight recorder closes that gap: a fixed-size
ring buffer of the last N transactions, query executions, rule firings,
and errors that is **on by default** and cheap enough to stay on.

Design points, in tension order:

* **Allocation-light record path.**  One entry is one plain tuple
  ``(ts, kind, name, value, detail)`` appended to a bounded
  ``collections.deque`` — no dicts, no formatting, no I/O.  Call sites
  guard with ``if _flight.enabled:`` (the tracer's discipline), so
  turning the recorder off restores the bare hot path.  The record
  sites live on per-firing / per-transaction / per-query boundaries,
  never on the per-occurrence fan-out path, which is what keeps the
  ≤5% hot-path gate in ``benchmarks/test_bench_obs.py`` honest.
* **Automatic dumps.**  The engine snapshots the ring when evidence is
  about to become interesting: a transaction rolls back, a rule error
  propagates, a cascade blows the depth limit.  Snapshots are stored
  in memory (``dumps``, newest last, bounded) as raw tuple lists —
  rendering to dicts/JSON happens only when somebody reads them.  When
  a ``dump_dir`` is configured the snapshot is *also* written to
  ``flight-<seq>-<reason>.jsonl`` (at most ``dump_keep`` files kept).
* **Single-writer/concurrent-reader.**  The engine thread records;
  readers (``tools.doctor``, the exporter) take locked copies via
  :meth:`snapshot` / :meth:`snapshot_dumps`.

The registry gains a ``flight`` collector (``flight.depth``,
``flight.capacity``, ``flight.recorded``, ``flight.dumps``) so the
OpenMetrics exporter publishes recorder depth gauges for free.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from time import time
from typing import Any

from .metrics import metrics

__all__ = ["FlightRecorder", "flight_recorder", "ENTRY_KINDS", "DUMP_REASONS"]

#: The entry kinds the engine records.
ENTRY_KINDS = ("txn", "query", "firing", "error", "lock")

#: The reasons an automatic dump is taken (plus ``manual`` on demand).
DUMP_REASONS = ("txn_aborted", "rule_error", "rule_cascade", "manual")

_FIELDS = ("ts", "kind", "name", "value", "detail")


class FlightRecorder:
    """Bounded, always-on ring buffer of recent engine activity."""

    __slots__ = (
        "enabled",
        "dump_dir",
        "dump_keep",
        "recorded",
        "dumps",
        "_ring",
        "_dump_seq",
        "_lock",
    )

    def __init__(self, capacity: int = 512) -> None:
        #: The record-path guard; on by default.
        self.enabled = True
        #: When set, automatic dumps are also written here as JSONL.
        self.dump_dir: str | None = None
        #: How many on-disk dump files to retain.
        self.dump_keep = 8
        #: Total entries ever recorded (survives ring wrap).
        self.recorded = 0
        #: In-memory dump snapshots: (reason, ts, error, [entry tuples]).
        self.dumps: deque[tuple[str, float, str, list[tuple]]] = deque(
            maxlen=8
        )
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self._dump_seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording (engine thread only; guard call sites on ``enabled``)
    # ------------------------------------------------------------------
    def record(
        self, kind: str, name: str, value: int = 0, detail: str = ""
    ) -> None:
        """Append one entry.  One tuple, one deque append — nothing else."""
        self._ring.append((time(), kind, name, value, detail))
        self.recorded += 1

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def configure(
        self,
        *,
        capacity: int | None = None,
        dump_dir: str | None = None,
        dump_keep: int | None = None,
        enabled: bool | None = None,
    ) -> "FlightRecorder":
        """Adjust the recorder; resizing the ring keeps the newest entries."""
        with self._lock:
            if capacity is not None:
                if capacity < 1:
                    raise ValueError(
                        f"capacity must be >= 1, got {capacity}"
                    )
                self._ring = deque(self._ring, maxlen=capacity)
            if dump_dir is not None:
                self.dump_dir = dump_dir or None
            if dump_keep is not None:
                if dump_keep < 1:
                    raise ValueError(
                        f"dump_keep must be >= 1, got {dump_keep}"
                    )
                self.dump_keep = dump_keep
            if enabled is not None:
                self.enabled = enabled
        return self

    def clear(self) -> None:
        """Drop all entries and in-memory dumps (tests, mostly)."""
        with self._lock:
            self._ring.clear()
            self.dumps.clear()
            self.recorded = 0
            self._dump_seq = 0

    # ------------------------------------------------------------------
    # Reading (any thread)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        return len(self._ring)

    def snapshot(self) -> list[dict[str, Any]]:
        """The live ring as dicts, oldest first."""
        with self._lock:
            raw = list(self._ring)
        return [dict(zip(_FIELDS, entry)) for entry in raw]

    def snapshot_dumps(self) -> list[dict[str, Any]]:
        """The retained dump snapshots as dicts, oldest first."""
        with self._lock:
            raw = list(self.dumps)
        return [
            {
                "reason": reason,
                "ts": ts,
                "error": error,
                "entries": [dict(zip(_FIELDS, e)) for e in entries],
            }
            for reason, ts, error, entries in raw
        ]

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def auto_dump(self, reason: str, error: str = "") -> str | None:
        """Snapshot the ring because something just went wrong.

        Always records an in-memory snapshot (cheap: a list copy of the
        tuples); writes a JSONL file only when :attr:`dump_dir` is set.
        Returns the file path when one was written.
        """
        if not self.enabled:
            return None
        with self._lock:
            entries = list(self._ring)
            self.dumps.append((reason, time(), error, entries))
            self._dump_seq += 1
            seq = self._dump_seq
            dump_dir = self.dump_dir
        if dump_dir is None:
            return None
        return self._write_dump(dump_dir, seq, reason, error, entries)

    def dump(self, path: str | None = None) -> str | list[dict[str, Any]]:
        """On-demand dump: to ``path`` as JSONL, or returned as dicts."""
        snapshot = self.snapshot()
        if path is None:
            return snapshot
        with open(path, "w", encoding="utf-8") as handle:
            for entry in snapshot:
                handle.write(json.dumps(entry, default=str))
                handle.write("\n")
        return path

    def _write_dump(
        self,
        dump_dir: str,
        seq: int,
        reason: str,
        error: str,
        entries: list[tuple],
    ) -> str:
        os.makedirs(dump_dir, exist_ok=True)
        path = os.path.join(dump_dir, f"flight-{seq:04d}-{reason}.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            header = {"reason": reason, "ts": time(), "error": error}
            handle.write(json.dumps(header, default=str))
            handle.write("\n")
            for entry in entries:
                handle.write(json.dumps(dict(zip(_FIELDS, entry)), default=str))
                handle.write("\n")
        self._prune(dump_dir)
        return path

    def _prune(self, dump_dir: str) -> None:
        dumps = sorted(
            name
            for name in os.listdir(dump_dir)
            if name.startswith("flight-") and name.endswith(".jsonl")
        )
        for name in dumps[: -self.dump_keep]:
            try:
                os.remove(os.path.join(dump_dir, name))
            except OSError:  # pragma: no cover - racing cleanup
                pass


#: The process-wide recorder.  Engine modules bind this to a local
#: (``from ..obs.flight import flight_recorder as _flight``) and guard
#: record sites with ``if _flight.enabled:``.
flight_recorder = FlightRecorder()


def _flight_counts() -> dict[str, float]:
    return {
        "depth": float(flight_recorder.depth()),
        "capacity": float(flight_recorder.capacity),
        "recorded": float(flight_recorder.recorded),
        "dumps": float(len(flight_recorder.dumps)),
    }


metrics.register_collector(
    "flight", _flight_counts, flight_recorder.clear
)
