"""Named counters and latency histograms for the pipeline and the OODB.

The PR-1 optimizations introduced ad-hoc process-wide counters
(``repro.stats.PipelineStats``); this module generalizes them into a
:class:`MetricsRegistry` — named :class:`Counter` and :class:`Histogram`
instruments that the tracer, the benchmarks, and the tools all read from
one place.  ``PipelineStats`` itself is re-homed here (the hot paths keep
bumping plain integer attributes on it — one ``int`` add, no indirection)
and is exposed through the registry as a *collector*, so
``metrics.snapshot()`` includes the fast-path counters alongside
everything else.  ``repro.stats`` re-exports the compatibility names.

This module must not import ``repro.core`` or ``repro.oodb`` — both feed
metrics into it.

Thread-safety contract: **concurrent writers, concurrent readers**.  The
original single-writer contract was retired when the engine grew a
decoupled-rule worker pool and a rule server: counters and histograms
are now bumped from many threads at once.  Each instrument guards its
mutation with a per-instrument lock (one uncontended acquire — tens of
nanoseconds — on paths that are already doing dict lookups and float
math), so no increment is ever lost and no histogram invariant
(``count`` vs ``sum`` vs buckets) is ever torn by a racing writer.
:meth:`MetricsRegistry.snapshot` and :meth:`Histogram.summary` take
copies under a registry lock and may be called from any thread; the
metrics exporter's HTTP thread does exactly that.  Readers can still
observe a value mid-batch (a count bumped before its sum), never a torn
structure.  ``PipelineStats`` keeps plain unlocked attribute bumps: its
counters are advisory throughput indicators on the hottest paths, and a
rare lost bump there trades against every event paying for a lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, fields
from typing import Any, Callable, Deque

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "BUCKET_BOUNDS",
    "PipelineStats",
    "pipeline_stats",
    "reset_pipeline_stats",
]

#: How many recent samples a histogram keeps for percentile estimation.
#: Count/sum/min/max stay exact beyond the window; percentiles are over
#: the most recent samples (a sliding reservoir, not a decaying sketch).
DEFAULT_WINDOW = 4096

_PERCENTILES = (50.0, 95.0, 99.0)

#: Log-spaced cumulative bucket upper bounds (microseconds): three per
#: decade from 1µs to 10s.  Unlike the windowed percentiles, bucket
#: counts are exact over the histogram's whole lifetime, so external
#: scrapers can aggregate them across processes (the exporter renders
#: them as an OpenMetrics ``histogram`` family with ``le`` labels).
BUCKET_BOUNDS = tuple(round(10 ** (e / 3.0), 3) for e in range(22))


class Counter:
    """A monotonically increasing named counter (multi-writer safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        # ``value += amount`` alone can lose updates between the LOAD and
        # the STORE when another thread is bumping too; the per-instrument
        # lock makes the read-modify-write atomic.
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """A latency histogram: exact count/sum/min/max/buckets, windowed
    percentiles.

    **Empty-window contract** (the telemetry collector scrapes idle
    registries constantly, so this is explicit): with no samples
    recorded, :meth:`percentile` returns ``0.0`` and :meth:`summary`
    returns exactly ``{"count": 0}``.  If samples exist but the
    percentile window is empty (``window=0``, or a reset race), the
    percentiles are ``0.0`` rather than an error — never whatever falls
    out of an empty sort.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "_window", "_buckets", "_lock"
    )

    def __init__(self, name: str, window: int = DEFAULT_WINDOW) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._window: Deque[float] = deque(maxlen=window)
        # One slot per bound plus the +Inf overflow; exact, not windowed.
        self._buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._window.append(value)
            self._buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank) over the sample window.

        ``0.0`` when the window holds no samples (see the class
        docstring's empty-window contract).
        """
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, int(p / 100.0 * (len(ordered) - 1) + 0.5))
        return ordered[rank]

    def buckets(self) -> dict[str, int]:
        """Cumulative ``le`` bucket counts (``"+Inf"`` equals ``count``)."""
        out: dict[str, int] = {}
        running = 0
        counts = list(self._buckets)
        for bound, bucket in zip(BUCKET_BOUNDS, counts):
            running += bucket
            out[format(bound, "g")] = running
        out["+Inf"] = running + counts[-1]
        return out

    def summary(self) -> dict[str, Any]:
        """Count/sum/mean/min/max, windowed percentiles, bucket counts.

        Safe to call from a reader thread while the engine records:
        ``sorted`` copies the window in one C-level pass under the GIL,
        so a concurrent append cannot corrupt the read (the sample it
        adds lands in the next summary).  With no samples the summary is
        exactly ``{"count": 0}`` — no sum/percentiles/buckets keys.
        """
        count = self.count
        if not count:
            return {"count": 0}
        ordered = sorted(self._window)

        def at(p: float) -> float:
            if not ordered:  # window emptier than count (window=0 / reset race)
                return 0.0
            rank = min(len(ordered) - 1, int(p / 100.0 * (len(ordered) - 1) + 0.5))
            return ordered[rank]

        total = self.total
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": self.min,
            "max": self.max,
            **{f"p{int(p)}": at(p) for p in _PERCENTILES},
            "buckets": self.buckets(),
        }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = float("inf")
            self.max = float("-inf")
            self._window.clear()
            self._buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Creates, caches, and snapshots named instruments.

    ``counter(name)`` / ``histogram(name)`` are get-or-create: callers can
    hold the returned instrument and bump it directly (no per-update dict
    lookup on hot paths).  *Collectors* adapt externally-owned counter
    structs (``PipelineStats``) into the snapshot under a name prefix.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[
            str, tuple[Callable[[], dict[str, Any]], Callable[[], None] | None]
        ] = {}
        # Guards the instrument *dicts* (creation, enumeration) against a
        # concurrent reader thread.  Bumping an existing instrument never
        # locks: the get-or-create hit path below is lock-free too, so hot
        # callers holding an instrument pay nothing.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, window: int = DEFAULT_WINDOW) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(name, window)
        return histogram

    def register_collector(
        self,
        prefix: str,
        snapshot: Callable[[], dict[str, Any]],
        reset: Callable[[], None] | None = None,
    ) -> None:
        """Expose an external counter struct under ``prefix.*`` (idempotent)."""
        with self._lock:
            self._collectors[prefix] = (snapshot, reset)

    def unregister_collector(self, prefix: str) -> None:
        """Remove a collector registered under ``prefix`` (missing ok)."""
        with self._lock:
            self._collectors.pop(prefix, None)

    # ------------------------------------------------------------------
    # Reading and resetting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Every instrument's current value, flat, keyed by name.

        Safe to call from any thread: the instrument dicts are copied
        under the registry lock (so the engine creating a new instrument
        mid-snapshot cannot break iteration), then read without it.
        """
        with self._lock:
            counters = list(self._counters.items())
            histograms = list(self._histograms.items())
            collectors = list(self._collectors.items())
        out: dict[str, Any] = {name: counter.value for name, counter in counters}
        for name, histogram in histograms:
            out[name] = histogram.summary()
        for prefix, (collect, _reset) in collectors:
            for key, value in collect().items():
                out[f"{prefix}.{key}"] = value
        return out

    def counters(self) -> dict[str, int]:
        with self._lock:
            items = list(self._counters.items())
        return {name: c.value for name, c in items}

    def reset(self) -> None:
        """Zero every instrument (benchmark/test setup)."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
            collectors = list(self._collectors.values())
        for counter in counters:
            counter.reset()
        for histogram in histograms:
            histogram.reset()
        for _collect, reset in collectors:
            if reset is not None:
                reset()


#: The process-wide registry.  Like ``pipeline_stats`` before it, one
#: shared instance: both ``repro.core`` and ``repro.oodb`` feed it.
metrics = MetricsRegistry()


# ----------------------------------------------------------------------
# PipelineStats — the PR-1 fast-path counters, re-homed from repro.stats
# ----------------------------------------------------------------------
@dataclass(slots=True)
class PipelineStats:
    """Process-wide counters for the optimized hot paths.

    Hot paths bump attributes directly (one integer add; no indirection)
    rather than going through :class:`Counter` objects — the registry
    reads them through a collector instead.
    """

    #: consumer-snapshot cache on Reactive instances
    consumer_cache_hits: int = 0
    consumer_cache_misses: int = 0
    consumer_cache_invalidations: int = 0
    #: serializer: objects whose attributes were all plain scalars
    serializer_fast_objects: int = 0
    serializer_slow_objects: int = 0
    #: serializer: decoded records whose stored attributes were all scalars
    serializer_fast_decodes: int = 0
    serializer_slow_decodes: int = 0
    #: WAL group commit
    group_commits: int = 0
    group_commit_records: int = 0
    wal_syncs: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The process-wide instance (formerly ``repro.stats.pipeline_stats``).
pipeline_stats = PipelineStats()

metrics.register_collector(
    "pipeline", pipeline_stats.snapshot, pipeline_stats.reset
)


def reset_pipeline_stats() -> PipelineStats:
    """Zero every counter (benchmark/test setup) and return the instance."""
    pipeline_stats.reset()
    return pipeline_stats
