"""Engine health signals: the wire between the engine and ``sysmon``.

The self-monitoring bridge (:mod:`repro.obs.sysmon`) turns engine health
occurrences — a rule erroring, a transaction aborting, the cascade depth
blowing past a threshold, a slow WAL fsync — into first-class primitive
events that ordinary ECA rules can monitor.  But the engine layers that
*observe* those occurrences (``repro.core.scheduler``,
``repro.oodb.transactions``, ``repro.oodb.storage.wal``) cannot import
the monitor: ``sysmon`` is built on ``repro.core`` and importing it back
would be a cycle.

This module is the dependency-free middle: a process-wide
:class:`EngineSignals` hub the engine emits into and sinks (the
``SystemMonitor``) attach to.  Design points:

* **One-flag hot path.**  Every emission site is guarded by
  ``if _signals.active:`` — one attribute load and a jump when no
  monitor is attached, exactly the tracer's discipline.
* **Suppression scope.**  ``push_suppression()``/``pop_suppression()``
  bracket work that must not generate further signals; the scheduler
  uses it around rules *triggered by* sysmon events, so a rule reacting
  to ``rule_fired`` cannot recursively manufacture its own firings.
  Suppression depth is **per-thread**: a decoupled-rule worker running a
  sysmon-triggered rule silences only its own emissions, never a
  concurrent engine thread's.
* **No payload objects.**  Signals carry plain scalars (names, sequence
  numbers, microseconds), so emitting never pins engine objects.

Signals are emitted from any engine thread (the caller's thread, the
decoupled-rule worker pool, server connection handlers).  ``attach`` /
``detach`` mutate the sink list atomically (replace, not edit-in-place)
and ``emit`` iterates a stable copy, so attaching a monitor while
workers are emitting is safe.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = [
    "EngineSignals",
    "engine_signals",
    "occurrence_from_sysmon",
    "SIGNAL_KINDS",
]

#: The signal kinds the engine emits, matching the ``SystemMonitor``
#: event-method catalog one-to-one.
SIGNAL_KINDS = (
    "rule_fired",                 # a rule's condition held and its action ran
    "condition_rejected",         # a rule triggered but its condition said no
    "rule_error",                 # a condition/action raised an exception
    "txn_aborted",                # a transaction rolled back
    "scheduler_depth_exceeded",   # rule cascade crossed the depth threshold
    "wal_fsync_slow",             # one WAL fsync took longer than the budget
    "query_slow",                 # a query overran the slow-op threshold
    "rule_slow",                  # a condition/action body overran its budget
    "txn_long",                   # a transaction stayed open too long
    "slo_breach",                 # a telemetry SLO's burn-rate windows all fired
    "worker_pool_saturated",      # decoupled-rule pool rejected a submission
    "lock_order_inversion",       # lockdep saw two classes locked in both orders
)

Sink = Callable[[str, dict[str, Any]], None]


class EngineSignals:
    """Process-wide fan-out point for engine health signals."""

    __slots__ = (
        "active",
        "depth_threshold",
        "fsync_slow_us",
        "_sinks",
        "_suppress",
    )

    def __init__(self) -> None:
        #: True while at least one sink is attached — the emission guard.
        self.active = False
        #: Cascade depth at which ``scheduler_depth_exceeded`` fires.
        self.depth_threshold = 16
        #: Fsync latency (µs) above which ``wal_fsync_slow`` fires.
        self.fsync_slow_us = 10_000.0
        self._sinks: list[Sink] = []
        # Per-thread suppression depth: a worker thread suppressing its
        # own sysmon-triggered rule must not mute other threads.
        self._suppress = threading.local()

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def attach(self, sink: Sink) -> None:
        """Start delivering signals to ``sink(kind, payload)`` (idempotent)."""
        if sink not in self._sinks:
            self._sinks.append(sink)
        self.active = True

    def detach(self, sink: Sink) -> None:
        """Stop delivering to ``sink``; unknown sinks are ignored."""
        self._sinks = [s for s in self._sinks if s != sink]
        self.active = bool(self._sinks)

    # ------------------------------------------------------------------
    # Suppression (re-entrancy control)
    # ------------------------------------------------------------------
    @property
    def suppressed(self) -> bool:
        return getattr(self._suppress, "depth", 0) > 0

    def push_suppression(self) -> None:
        """Silence this thread's emissions until :meth:`pop_suppression`."""
        self._suppress.depth = getattr(self._suppress, "depth", 0) + 1

    def pop_suppression(self) -> None:
        depth = getattr(self._suppress, "depth", 0)
        if depth > 0:
            self._suppress.depth = depth - 1

    @property
    def suppression_depth(self) -> int:
        """This thread's suppression nesting depth (testing aid)."""
        return int(getattr(self._suppress, "depth", 0))

    def reset_suppression(self) -> None:
        """Clear suppression for *every* thread (test isolation)."""
        self._suppress = threading.local()

    # ------------------------------------------------------------------
    # Emission (engine side; call sites guard with ``if signals.active``)
    # ------------------------------------------------------------------
    def emit(self, kind: str, **payload: Any) -> None:
        if getattr(self._suppress, "depth", 0):
            return
        for sink in list(self._sinks):
            sink(kind, payload)


#: The process-wide hub.  Engine modules bind this to a local
#: (``from ..obs.signals import engine_signals as _signals``) and branch
#: on ``_signals.active``.
engine_signals = EngineSignals()


def occurrence_from_sysmon(occurrence: Any) -> bool:
    """True if any constituent of ``occurrence`` came from a sysmon object.

    The scheduler calls this (only while signals are active) to decide
    whether a rule execution must run under signal suppression — the
    second re-entrancy guard described in :mod:`repro.obs.sysmon`.  Duck
    typed (any object with ``constituents`` each carrying a ``source``)
    so this module stays free of ``repro.core`` imports.
    """
    for part in occurrence.constituents:
        if getattr(part.source, "_sysmon_source", False):
            return True
    return False
