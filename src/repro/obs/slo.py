"""Declarative service-level objectives over the telemetry store.

An :class:`SLO` names a target ("error rate under 0.1%", "p99 commit
under 500µs") and a set of burn-rate :class:`Window` thresholds; the
telemetry collector (:mod:`repro.obs.tsdb`) evaluates every objective
after each scrape and raises an ``slo_breach`` sysmon event on the
transition into breach, so ordinary ECA rules can react to *trends*
rather than instants.

**Burn rate** is the SRE multi-window idiom: how fast the error budget
is being consumed, as a multiple of the rate that would exactly exhaust
it.  ``burn = observed / target`` — an error ratio of 1% against a 0.1%
objective burns at 10×.  An objective breaches only when *every* window
exceeds its ``max_burn``: the fast window (default 60 s at 14.4×) makes
the alert respond in minutes, the slow window (default 300 s at 6×)
keeps a brief spike from paging.  Windows without enough samples don't
count as breaching — "no data" is not "on fire".

Three shapes cover the engine's surface:

* :meth:`SLO.error_rate` — a ratio of two counter families.  Series
  names are ``fnmatch`` patterns, so the labeled-counter convention
  (``rule_firings{rule=*,outcome=error}``) aggregates across labels.
  The ratio uses counter ``increase()`` semantics (sum of positive
  deltas), so process restarts never yield negative budgets.
* :meth:`SLO.latency` — a windowed average of a gauge-like series,
  typically a scraped percentile sub-series such as
  ``txn_commit_us.p99``.
* :meth:`SLO.threshold` — the general form of ``latency`` with a
  selectable aggregation (``avg``/``max``/``min``/``last``/…).

This module reads the store through duck typing (anything with
``increase``/``aggregate``/``series``) and imports nothing above
:mod:`repro.obs.metrics`, keeping the obs dependency order
``metrics < slo < tsdb < exporter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Protocol, Sequence

__all__ = [
    "Window",
    "WindowStatus",
    "SLO",
    "SLOStatus",
    "evaluate_slo",
    "sum_increase",
    "DEFAULT_BURN_WINDOWS",
]


class SeriesStore(Protocol):
    """What :func:`evaluate_slo` needs from a store (tsdb satisfies it)."""

    def series(self) -> list[str]: ...

    def increase(
        self, name: str, window_s: float, at: float | None = None
    ) -> float | None: ...

    def aggregate(
        self,
        name: str,
        window_s: float,
        fn: str = "avg",
        at: float | None = None,
    ) -> float | None: ...


@dataclass(frozen=True)
class Window:
    """One burn-rate window: breach requires ``burn > max_burn`` here."""

    seconds: float
    max_burn: float = 1.0

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError(f"window seconds must be > 0, got {self.seconds}")
        if self.max_burn <= 0:
            raise ValueError(f"max_burn must be > 0, got {self.max_burn}")


#: The SRE fast+slow pair: a 60 s window burning the budget 14.4× over,
#: confirmed by a 300 s window at 6× — responsive but spike-tolerant.
DEFAULT_BURN_WINDOWS = (Window(60.0, 14.4), Window(300.0, 6.0))


@dataclass(frozen=True)
class SLO:
    """A declarative objective the collector evaluates every scrape.

    Use the factories (:meth:`error_rate`, :meth:`latency`,
    :meth:`threshold`) rather than the constructor; ``kind`` selects the
    evaluation shape and the factories fill the right fields.
    """

    name: str
    kind: str  # "error_rate" | "threshold"
    target: float
    windows: tuple[Window, ...] = DEFAULT_BURN_WINDOWS
    #: error_rate: fnmatch patterns over series names.
    numerator: str = ""
    denominator: str = ""
    #: threshold: the series and aggregation to compare against target.
    series: str = ""
    fn: str = "avg"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("error_rate", "threshold"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.target <= 0:
            raise ValueError(f"SLO target must be > 0, got {self.target}")
        if not self.windows:
            raise ValueError("an SLO needs at least one window")

    @classmethod
    def error_rate(
        cls,
        name: str,
        numerator: str,
        denominator: str,
        target: float = 0.001,
        windows: Sequence[Window] = DEFAULT_BURN_WINDOWS,
        description: str = "",
    ) -> "SLO":
        """``increase(numerator) / increase(denominator) < target``."""
        return cls(
            name=name,
            kind="error_rate",
            target=target,
            windows=tuple(windows),
            numerator=numerator,
            denominator=denominator,
            description=description,
        )

    @classmethod
    def latency(
        cls,
        name: str,
        series: str,
        target_us: float,
        windows: Sequence[Window] = DEFAULT_BURN_WINDOWS,
        description: str = "",
    ) -> "SLO":
        """``avg(series) < target_us`` — for scraped percentile series."""
        return cls(
            name=name,
            kind="threshold",
            target=target_us,
            windows=tuple(windows),
            series=series,
            fn="avg",
            description=description,
        )

    @classmethod
    def threshold(
        cls,
        name: str,
        series: str,
        target: float,
        fn: str = "avg",
        windows: Sequence[Window] = DEFAULT_BURN_WINDOWS,
        description: str = "",
    ) -> "SLO":
        """``fn(series) < target`` over every window."""
        return cls(
            name=name,
            kind="threshold",
            target=target,
            windows=tuple(windows),
            series=series,
            fn=fn,
            description=description,
        )


@dataclass
class WindowStatus:
    """One window's share of an evaluation."""

    seconds: float
    max_burn: float
    value: float | None  # observed ratio / aggregate (None: no data)
    burn: float | None  # value / target

    @property
    def over(self) -> bool:
        return self.burn is not None and self.burn > self.max_burn


@dataclass
class SLOStatus:
    """The outcome of evaluating one objective at one instant."""

    slo: SLO
    at: float
    windows: list[WindowStatus] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.slo.name

    @property
    def breached(self) -> bool:
        """Every window has data and burns past its threshold."""
        return bool(self.windows) and all(w.over for w in self.windows)

    @property
    def has_data(self) -> bool:
        return any(w.value is not None for w in self.windows)

    @property
    def value(self) -> float:
        """The observed value over the fastest window (0.0 without data)."""
        for w in self.windows:
            if w.value is not None:
                return w.value
        return 0.0

    @property
    def worst_burn(self) -> float:
        burns = [w.burn for w in self.windows if w.burn is not None]
        return max(burns) if burns else 0.0

    @property
    def windows_text(self) -> str:
        """Compact per-window summary, e.g. ``60s:2.1x,300s:0.8x``."""
        parts = []
        for w in self.windows:
            burn = "-" if w.burn is None else f"{w.burn:.1f}x"
            parts.append(f"{int(w.seconds)}s:{burn}")
        return ",".join(parts)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe shape for ``/history``, the doctor, and tools."""
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "target": self.slo.target,
            "breached": self.breached,
            "value": self.value,
            "worst_burn": self.worst_burn,
            "windows": [
                {
                    "seconds": w.seconds,
                    "max_burn": w.max_burn,
                    "value": w.value,
                    "burn": w.burn,
                    "over": w.over,
                }
                for w in self.windows
            ],
        }


def sum_increase(
    store: SeriesStore, pattern: str, window_s: float, at: float
) -> float | None:
    """Total counter increase across every series matching ``pattern``.

    ``None`` when no matching series has two samples in the window —
    the distinction :class:`SLOStatus` needs between "no traffic data"
    and "zero errors".
    """
    if any(ch in pattern for ch in "*?["):
        names = [n for n in store.series() if fnmatchcase(n, pattern)]
    else:
        names = [pattern]
    total: float | None = None
    for name in names:
        increase = store.increase(name, window_s, at=at)
        if increase is not None:
            total = increase if total is None else total + increase
    return total


def evaluate_slo(slo: SLO, store: SeriesStore, at: float) -> SLOStatus:
    """Evaluate one objective against the store at time ``at``."""
    status = SLOStatus(slo=slo, at=at)
    for window in slo.windows:
        value: float | None
        if slo.kind == "error_rate":
            den = sum_increase(store, slo.denominator, window.seconds, at)
            if den is None or den <= 0:
                value = None
            else:
                num = sum_increase(store, slo.numerator, window.seconds, at)
                value = (num or 0.0) / den
        else:  # threshold
            value = store.aggregate(slo.series, window.seconds, slo.fn, at=at)
        burn = None if value is None else value / slo.target
        status.windows.append(
            WindowStatus(window.seconds, window.max_burn, value, burn)
        )
    return status
