"""Threshold-driven slow-operation log: the outliers, durably, as JSONL.

Metrics say *how slow on average*; the tracer says *why*, but only for
chains you sampled while it was on.  The slow-op log captures the tail
the moment it happens: any query, rule body, WAL fsync, or transaction
that overruns its threshold is appended — with enough context to
reproduce it — to a size-rotated JSONL file.  One entry per line::

    {"ts": 1754380800.123, "kind": "query", "duration_us": 84210.0,
     "threshold_us": 50000.0, "class": "Emp", "access_path": "extent_scan",
     "rows": 4021, "plan": {...analyzed plan with actuals...}}

Entry kinds and their context:

``query``   class, access path, rows returned, and the full analyzed
            plan (estimates next to actuals — see ``Query.explain``).
            While the log is open, query executions run through the
            instrumented path so the plan evidence exists to attach.
``rule``    rule name, phase (``condition``/``action``), occurrence
            seq, coupling.
``fsync``   WAL path and the fsync latency.
``txn``     transaction id, change count, final status.

Thresholds live on the singleton (``slow_query_us`` etc.) and are set
through :meth:`Sentinel.enable_slow_log`.  Every recorded breach also
bumps ``slow_ops_total{kind=...}`` and — when a :class:`SystemMonitor`
is attached — emits a sysmon signal (``query_slow``, ``rule_slow``,
``txn_long``; slow fsyncs already emit ``wal_fsync_slow``), so rules
can react to slowness the way they react to errors.

Like the audit log, the slow-op log is opt-in and its call sites are
one-flag guarded (``if _slowlog.enabled:``); closed, it costs an
attribute load.  Rotation and the read side reuse the audit-log
conventions (:func:`repro.obs.audit.read_entries` /
:func:`repro.obs.audit.tail_entries` work on slow-op files unchanged).
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Any

from .metrics import metrics
from .signals import engine_signals

__all__ = ["SlowOpLog", "slow_op_log", "SLOW_OP_KINDS"]

#: The operation kinds a breach can be recorded under.
SLOW_OP_KINDS = ("query", "rule", "fsync", "txn")

#: Default thresholds, generous enough that an idle system logs nothing.
DEFAULT_THRESHOLDS = {
    "slow_query_us": 50_000.0,   # 50 ms
    "slow_rule_us": 10_000.0,    # 10 ms per condition/action body
    "slow_fsync_us": 20_000.0,   # 20 ms per WAL fsync
    "long_txn_us": 1_000_000.0,  # 1 s begin→commit/abort
}


class SlowOpLog:
    """Append-only, size-rotated JSONL log of threshold breaches."""

    __slots__ = (
        "enabled",
        "path",
        "max_bytes",
        "keep",
        "slow_query_us",
        "slow_rule_us",
        "slow_fsync_us",
        "long_txn_us",
        "_handle",
        "_size",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.path: str | None = None
        self.max_bytes = 1 << 20
        self.keep = 3
        self._handle: IO[str] | None = None
        self._size = 0
        self.reset_thresholds()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(
        self,
        path: str,
        max_bytes: int = 1 << 20,
        keep: int = 3,
        **thresholds: float,
    ) -> "SlowOpLog":
        """Start logging breaches to ``path`` (appends if it exists).

        Keyword thresholds (``slow_query_us``, ``slow_rule_us``,
        ``slow_fsync_us``, ``long_txn_us``) override the defaults.
        """
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.close()
        self.configure(**thresholds)
        self.path = path
        self.max_bytes = max_bytes
        self.keep = keep
        self._handle = open(path, "a", encoding="utf-8")
        self._size = self._handle.tell()
        self.enabled = True
        return self

    def close(self) -> None:
        self.enabled = False
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def configure(self, **thresholds: float) -> "SlowOpLog":
        """Set thresholds by keyword; unknown names raise."""
        for name, value in thresholds.items():
            if name not in DEFAULT_THRESHOLDS:
                raise ValueError(
                    f"unknown slow-op threshold {name!r}; expected one of "
                    f"{sorted(DEFAULT_THRESHOLDS)}"
                )
            setattr(self, name, float(value))
        return self

    def reset_thresholds(self) -> None:
        for name, value in DEFAULT_THRESHOLDS.items():
            setattr(self, name, value)

    # ------------------------------------------------------------------
    # Writing (engine thread only; call sites guard on ``enabled``)
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        duration_us: float,
        threshold_us: float,
        signal: str | None = None,
        signal_payload: dict[str, Any] | None = None,
        **context: Any,
    ) -> None:
        """Append one breach entry; optionally raise it as a sysmon signal."""
        handle = self._handle
        if handle is None:
            return
        line = json.dumps(
            {
                "ts": round(time.time(), 3),
                "kind": kind,
                "duration_us": round(duration_us, 1),
                "threshold_us": round(threshold_us, 1),
                **context,
            },
            default=str,
        )
        handle.write(line)
        handle.write("\n")
        handle.flush()
        self._size += len(line) + 1
        if self._size >= self.max_bytes:
            self._rotate()
        metrics.counter(f"slow_ops_total{{kind={kind}}}").inc()
        if signal is not None and engine_signals.active:
            engine_signals.emit(signal, **(signal_payload or {}))

    def _rotate(self) -> None:
        assert self.path is not None and self._handle is not None
        self._handle.close()
        oldest = f"{self.path}.{self.keep}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for i in range(self.keep - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0


#: The process-wide slow-op log.  Engine modules bind this to a local
#: (``from ..obs.slowlog import slow_op_log as _slowlog``) and guard
#: call sites with ``if _slowlog.enabled:``.
slow_op_log = SlowOpLog()
