"""Self-monitoring: the engine as a reactive object ("rules on rules").

The paper's deepest structural claim is that events and rules are
ordinary objects, so rules can be written over *any* set of objects —
including the machinery that runs the rules.  :class:`SystemMonitor`
takes that claim literally for operations: it is a plain
:class:`~repro.core.reactive.Reactive` object whose event interface is
the engine's health surface.  Each health signal the engine emits (via
:mod:`repro.obs.signals`) drives one monitored method here, which raises
a first-class primitive event that any ECA rule — composite Sequence and
Conjunction events included — can trigger on::

    monitor = SystemMonitor().attach()
    errors = Primitive("end SystemMonitor::rule_error(rule, seq, coupling, error)")
    sentinel.monitor(
        [monitor],
        on=errors >> errors,                   # two errors in sequence
        action=lambda ctx: sentinel.rules.get(ctx.param("rule")).disable(),
    )

The event catalog (one method per :data:`repro.obs.signals.SIGNAL_KINDS`
entry):

=============================  =====================================
``rule_fired``                 a rule's action ran (rule, seq, coupling, latency_us)
``condition_rejected``         a condition said no (rule, seq, coupling)
``rule_error``                 condition/action raised (rule, seq, coupling, error)
``txn_aborted``                a transaction rolled back (txn_id, changes)
``scheduler_depth_exceeded``   cascade too deep (depth, threshold, witness)
``wal_fsync_slow``             one fsync overran its budget (micros, threshold_us)
``query_slow``                 a query breached the slow-op log threshold
                               (class_name, access_path, micros, threshold_us)
``rule_slow``                  a condition/action body overran its budget
                               (rule, phase, seq, micros, threshold_us)
``txn_long``                   a transaction stayed open too long
                               (txn_id, changes, micros, threshold_us)
``slo_breach``                 a telemetry objective's burn-rate windows
                               all fired (slo, value, target, burn, windows)
``worker_pool_saturated``      the decoupled-rule pool rejected a job
                               (backlog, queue_limit, rule)
``lock_order_inversion``       the lock-order sanitizer saw two lock
                               classes acquired in both orders
                               (first, second, txn_id)
=============================  =====================================

The three ``*_slow``/``*_long`` signals are raised by the slow-op log
(:mod:`repro.obs.slowlog`) when it is open, so "react to slowness" rules
need both a monitor attached *and* ``Sentinel.enable_slow_log()``.
``slo_breach`` likewise needs continuous telemetry running
(``Sentinel.enable_telemetry()``) — the collector evaluates the
objectives and emits on the transition into breach.

**Re-entrancy.**  A sysmon rule firing is itself a rule firing; naively
it would emit ``rule_fired``, trigger itself, and recurse.  Two guards
prevent that, and both are tested:

1. while the monitor is raising an event (synchronous delivery,
   immediate rules included), incoming signals are dropped
   (``_emitting``);
2. the scheduler suppresses *all* signal emission around any rule whose
   triggering occurrence originated from a sysmon object, which also
   covers deferred/decoupled sysmon rules executing later at commit
   time.  The marker is the ``_sysmon_source`` class attribute checked
   by :func:`occurrence_from_sysmon`.

The monitor keeps plain counters per event kind and exposes them to
``metrics.snapshot()`` under ``sysmon.*`` while attached.
"""

from __future__ import annotations

from ..core.interface import event_method
from ..core.reactive import Reactive
from .metrics import metrics
from .signals import engine_signals, occurrence_from_sysmon

__all__ = ["SystemMonitor", "occurrence_from_sysmon"]


class SystemMonitor(Reactive):
    """The engine's health signals as a reactive object's event interface."""

    #: Marks occurrences sourced here so the scheduler can suppress
    #: signal emission for the rules they trigger (re-entrancy guard 2).
    _sysmon_source = True

    _p_transient = Reactive._p_transient + ("_emitting",)

    def __init__(self) -> None:
        super().__init__()
        self.fired = 0
        self.rejected = 0
        self.errors = 0
        self.txn_aborts = 0
        self.depth_alerts = 0
        self.slow_fsyncs = 0
        self.slow_queries = 0
        self.slow_rules = 0
        self.long_txns = 0
        self.slo_breaches = 0
        self.pool_saturations = 0
        self.lock_inversions = 0
        self.dropped_reentrant = 0
        object.__setattr__(self, "_emitting", False)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(
        self,
        depth_threshold: int | None = None,
        fsync_slow_us: float | None = None,
    ) -> "SystemMonitor":
        """Start receiving engine signals (and publishing ``sysmon.*``).

        ``depth_threshold`` / ``fsync_slow_us`` tune the two thresholded
        signals process-wide (they live on the hub, because the emitting
        engine code cannot see the monitor).
        """
        if depth_threshold is not None:
            engine_signals.depth_threshold = depth_threshold
        if fsync_slow_us is not None:
            engine_signals.fsync_slow_us = fsync_slow_us
        engine_signals.attach(self._receive)
        metrics.register_collector("sysmon", self._counts)
        return self

    def detach(self) -> None:
        engine_signals.detach(self._receive)
        metrics.unregister_collector("sysmon")

    def _receive(self, kind: str, payload: dict) -> None:
        if getattr(self, "_emitting", False):
            # Re-entrancy guard 1: a signal generated while this monitor
            # is mid-delivery (e.g. by an immediate sysmon rule) is
            # dropped rather than recursing.
            self.dropped_reentrant += 1
            return
        handler = getattr(self, kind, None)
        if handler is None:
            return
        object.__setattr__(self, "_emitting", True)
        try:
            handler(**payload)
        finally:
            object.__setattr__(self, "_emitting", False)

    def _counts(self) -> dict[str, int]:
        return {
            "rule_fired": self.fired,
            "condition_rejected": self.rejected,
            "rule_error": self.errors,
            "txn_aborted": self.txn_aborts,
            "scheduler_depth_exceeded": self.depth_alerts,
            "wal_fsync_slow": self.slow_fsyncs,
            "query_slow": self.slow_queries,
            "rule_slow": self.slow_rules,
            "txn_long": self.long_txns,
            "slo_breach": self.slo_breaches,
            "worker_pool_saturated": self.pool_saturations,
            "lock_order_inversion": self.lock_inversions,
            "dropped_reentrant": self.dropped_reentrant,
        }

    # ------------------------------------------------------------------
    # Event generators (the monitorable surface)
    # ------------------------------------------------------------------
    @event_method
    def rule_fired(
        self, rule: str, seq: int, coupling: str, latency_us: float
    ) -> None:
        self.fired += 1

    @event_method
    def condition_rejected(self, rule: str, seq: int, coupling: str) -> None:
        self.rejected += 1

    @event_method
    def rule_error(
        self, rule: str, seq: int, coupling: str, error: str
    ) -> None:
        self.errors += 1

    @event_method
    def txn_aborted(self, txn_id: int, changes: int) -> None:
        self.txn_aborts += 1

    @event_method
    def scheduler_depth_exceeded(
        self, depth: int, threshold: int, witness: str = ""
    ) -> None:
        self.depth_alerts += 1

    @event_method
    def wal_fsync_slow(self, micros: float, threshold_us: float) -> None:
        self.slow_fsyncs += 1

    @event_method
    def query_slow(
        self,
        class_name: str,
        access_path: str,
        micros: float,
        threshold_us: float,
    ) -> None:
        self.slow_queries += 1

    @event_method
    def rule_slow(
        self,
        rule: str,
        phase: str,
        seq: int,
        micros: float,
        threshold_us: float,
    ) -> None:
        self.slow_rules += 1

    @event_method
    def txn_long(
        self, txn_id: int, changes: int, micros: float, threshold_us: float
    ) -> None:
        self.long_txns += 1

    @event_method
    def slo_breach(
        self, slo: str, value: float, target: float, burn: float, windows: str
    ) -> None:
        self.slo_breaches += 1

    @event_method
    def worker_pool_saturated(
        self, backlog: int, queue_limit: int, rule: str = ""
    ) -> None:
        self.pool_saturations += 1

    @event_method
    def lock_order_inversion(
        self, first: str, second: str, txn_id: int = 0
    ) -> None:
        self.lock_inversions += 1
