"""The causality tracer: spans over the event→rule pipeline and the OODB.

One rule firing in Sentinel crosses five layers — a method invocation
raises a bom/eom occurrence, the occurrence feeds event detection
(possibly buffering inside a composite operator), the signalled rule is
scheduled under a coupling mode, its condition is checked, its action
runs — and, for deferred/detached modes, the tail of that chain moves
into the committing transaction.  The tracer records each step as a
:class:`Span` with a parent link, so the whole chain renders as one tree
and exports as JSONL (``python -m repro.tools.trace`` renders it).

Span parentage follows the dynamic call structure: whatever span is open
when a new one begins becomes its parent.  Steps that happen *later* than
their cause (a deferred rule firing at commit) are linked causally by the
triggering occurrence's sequence number (``seq`` attribute) while being
*parented* to the span actually executing them (the committing
transaction), which is exactly the paper's coupling-mode semantics made
visible.

The tracer is disabled by default.  Instrumented hot paths check the
:attr:`CausalityTracer.enabled` flag and take a single guarded branch;
the disabled cost is one attribute load per instrumented function.  When
enabled, every finished span also feeds a ``<kind>_us`` latency histogram
in :data:`repro.obs.metrics.metrics`.

**Sampling.**  Enabled-mode tracing records every span, which costs a few
µs per monitored call.  ``enable(sample=N)`` records one causality chain
in every *N* instead: the keep/skip decision is made once, when a chain's
root span opens (the open-span stack is empty), so a sampled chain is
always recorded *complete* — method, occurrence, detection, rule,
condition, action, outcome together — and a skipped chain contributes
nothing at all.  Two exceptions to "nothing": spans that close with an
``error`` attribute are always promoted into the buffer (errors are never
sampled away), and top-level points outside any chain (transaction
begin/abort markers) are always recorded.

Thread-safety contract: **any thread records, any thread reads**.  The
ambient state — the open-span stack, the sampling clock, and the
skip-depth — is *per-thread*, so a rule-worker thread builds its own
causality chains without corrupting the engine thread's; spans opened
off the main thread carry a ``thread`` attribute naming their owner.
Span IDs come from one shared atomic counter and the ring buffer append
is a single C-level deque operation, so interleaved writers never tear
it.  :meth:`spans`, :meth:`find`, and :meth:`export_jsonl` take a copy
of the buffer under a lock and may be called from any thread (the
metrics exporter's HTTP thread does); :meth:`clear` and :meth:`enable`
take the same lock and bump an epoch that resets every thread's ambient
state lazily, so a concurrent reader sees either the old buffer or the
new one, never a torn state.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import IO, Any, Deque, Iterator

from .metrics import metrics

__all__ = ["Span", "CausalityTracer", "tracer", "SPAN_KINDS"]

#: The span kinds the instrumented layers emit, pipeline order first.
SPAN_KINDS = (
    "method",       # monitored method invocation (event stub)
    "occurrence",   # bom/eom occurrence propagated to consumers
    "detect",       # detector feed / composite operator evaluation
    "signal",       # an event (primitive or composite) signalled
    "schedule",     # a rule handed to the scheduler (coupling decision)
    "rule",         # one rule execution (condition + action)
    "condition",    # rule condition evaluation
    "action",       # rule action execution
    "outcome",      # per-firing verdict point (joins EXPLAIN RULE reports)
    "txn",          # transaction begin/commit/abort
    "wal",          # write-ahead-log writes
)


@dataclass(slots=True)
class Span:
    """One step in a causality chain.

    ``start_us`` is monotonic microseconds since the tracer was enabled;
    ``duration_us`` is 0.0 for instantaneous (point) spans.  ``attrs``
    carries the identifying payload: ``seq`` (occurrence sequence number),
    ``oid``, ``rule``, ``coupling``, ``class``/``method`` — whatever the
    emitting layer knows.
    """

    span_id: int
    parent_id: int | None
    kind: str
    name: str
    start_us: float
    duration_us: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "attrs": self.attrs,
        }

    @classmethod
    def from_json(cls, body: dict[str, Any]) -> "Span":
        return cls(
            span_id=body["span"],
            parent_id=body.get("parent"),
            kind=body["kind"],
            name=body["name"],
            start_us=body.get("start_us", 0.0),
            duration_us=body.get("duration_us", 0.0),
            attrs=body.get("attrs") or {},
        )

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return (
            f"[{self.span_id}<-{self.parent_id or '·'}] {self.kind} "
            f"{self.name} {self.duration_us:.1f}µs {extra}".rstrip()
        )


class _ThreadTraceState:
    """One thread's ambient tracing state (stack, sampling, skip depth)."""

    __slots__ = ("stack", "chain_count", "skip_depth", "epoch")

    def __init__(self, epoch: int) -> None:
        self.stack: list[Span] = []
        #: Chains this thread has seen since enable/clear — its sampling
        #: counter (sampling decisions are per-thread).
        self.chain_count = 0
        #: >0 while inside a skipped (unsampled) chain.
        self.skip_depth = 0
        #: The tracer epoch this state belongs to; a stale epoch means an
        #: intervening clear()/disable() and the state resets lazily.
        self.epoch = epoch


class CausalityTracer:
    """Bounded-ring-buffer span recorder with an ambient span stack."""

    __slots__ = (
        "enabled",
        "capacity",
        "sample_interval",
        "_buffer",
        "_ids",
        "_origin",
        "_local",
        "_epoch",
        "_read_lock",
    )

    def __init__(self, capacity: int = 8192) -> None:
        self.enabled = False
        self.capacity = capacity
        #: Record one chain in every ``sample_interval`` (1 = record all).
        self.sample_interval = 1
        self._buffer: Deque[Span] = deque(maxlen=capacity)
        #: Shared span-ID source; ``next()`` on a count is atomic under
        #: the GIL, so concurrent threads never mint the same ID.
        self._ids = itertools.count(1)
        self._origin = 0.0
        self._local = threading.local()
        self._epoch = 0
        self._read_lock = threading.Lock()

    def _state(self) -> _ThreadTraceState:
        state: _ThreadTraceState | None = getattr(self._local, "state", None)
        if state is None or state.epoch != self._epoch:
            state = _ThreadTraceState(self._epoch)
            self._local.state = state
        return state

    # The ambient fields read like plain attributes (instrumented call
    # sites pre-check ``_skip_depth``) but resolve per-thread.
    @property
    def _stack(self) -> list[Span]:
        return self._state().stack

    @property
    def _skip_depth(self) -> int:
        return self._state().skip_depth

    @_skip_depth.setter
    def _skip_depth(self, value: int) -> None:
        self._state().skip_depth = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(
        self, capacity: int | None = None, sample: int | None = None
    ) -> "CausalityTracer":
        """Start recording (optionally resizing the buffer / sampling).

        ``sample=N`` keeps one causality chain in every N (``1`` traces
        everything, the default).  Skipped chains cost a fraction of a
        traced one; errors are recorded regardless of the sample clock.
        """
        if sample is not None:
            if sample < 1:
                raise ValueError(f"sample interval must be >= 1, got {sample}")
            self.sample_interval = sample
        with self._read_lock:
            if capacity is not None and capacity != self.capacity:
                self.capacity = capacity
                self._buffer = deque(self._buffer, maxlen=capacity)
        if not self.enabled:
            self._origin = perf_counter()
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop recording.  Recorded spans stay readable until clear()."""
        self.enabled = False
        # Epoch bump: every thread's ambient stack/skip state resets
        # lazily on its next use.
        self._epoch += 1

    def clear(self) -> None:
        with self._read_lock:
            self._buffer.clear()
            self._ids = itertools.count(1)
        self._epoch += 1

    @contextmanager
    def session(
        self, capacity: int | None = None, sample: int | None = None
    ) -> Iterator["CausalityTracer"]:
        """``with tracer.session(): ...`` — enable, then disable on exit."""
        self.enable(capacity, sample=sample)
        try:
            yield self
        finally:
            self.disable()

    # ------------------------------------------------------------------
    # Recording (called only from guarded branches: tracer is enabled)
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return (perf_counter() - self._origin) * 1e6

    def chain_sampled(self) -> bool:
        """Decide — before building any span — whether the chain opening
        now should be traced.

        Instrumented chain roots (the event-method stub) call this ahead
        of their traced slow path so a skipped chain never pays for span
        names, attrs, or placeholder objects.  Inside an already-open
        chain the answer is always yes.  At a true root a skip consumes
        the sample clock's tick here; a keep leaves the tick for the
        root :meth:`begin`, which then reaches the same decision.
        """
        state = self._state()
        if state.stack or self.sample_interval <= 1:
            return True
        if (state.chain_count + 1) % self.sample_interval:
            state.chain_count += 1  # consume the skipped chain's tick
            return False
        return True

    def begin(self, kind: str, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the currently open span.

        At a chain root (no span open) the sampling decision is made: a
        skipped chain returns placeholder spans (``span_id == 0``) that
        :meth:`end` discards — unless they close with an ``error`` attr,
        which always promotes them into the buffer.
        """
        state = self._state()
        if state.skip_depth:
            state.skip_depth += 1
            return Span(0, None, kind, name, 0.0, attrs=attrs)
        if self.sample_interval > 1 and not state.stack:
            state.chain_count += 1
            if state.chain_count % self.sample_interval:
                state.skip_depth = 1
                return Span(0, None, kind, name, 0.0, attrs=attrs)
        thread = threading.current_thread()
        if thread is not threading.main_thread():
            attrs.setdefault("thread", thread.name)
        span = Span(
            span_id=next(self._ids),
            parent_id=state.stack[-1].span_id if state.stack else None,
            kind=kind,
            name=name,
            start_us=self._now(),
            attrs=attrs,
        )
        state.stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close ``span``, record it, and feed its latency histogram."""
        state = self._state()
        if span.span_id == 0:
            # Placeholder from a skipped chain.  Errors are never sampled
            # away: promote the erroring span (alone) into the buffer.
            if state.skip_depth:
                state.skip_depth -= 1
            if attrs:
                span.attrs.update(attrs)
            if "error" in span.attrs:
                span.span_id = next(self._ids)
                span.start_us = self._now()
                span.attrs["sampled"] = False
                self._buffer.append(span)
                metrics.counter("trace.errors_promoted").inc()
            return span
        span.duration_us = self._now() - span.start_us
        if attrs:
            span.attrs.update(attrs)
        # Unwind to this span even if an exception skipped inner end()s.
        stack = state.stack
        while stack:
            if stack.pop() is span:
                break
        self._buffer.append(span)
        metrics.histogram(f"{span.kind}_us").record(span.duration_us)
        return span

    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[Span]:
        opened = self.begin(kind, name, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def point(self, kind: str, name: str, **attrs: Any) -> Span:
        """Record an instantaneous span under the currently open span.

        Inside a skipped chain, points are dropped — except points carrying
        an ``error`` attribute, which are always recorded.  Points outside
        any chain (transaction markers) ignore sampling entirely.
        """
        state = self._state()
        if state.skip_depth and "error" not in attrs:
            return Span(0, None, kind, name, 0.0, attrs=attrs)
        thread = threading.current_thread()
        if thread is not threading.main_thread():
            attrs.setdefault("thread", thread.name)
        span = Span(
            span_id=next(self._ids),
            parent_id=state.stack[-1].span_id if state.stack else None,
            kind=kind,
            name=name,
            start_us=self._now(),
            attrs=attrs,
        )
        self._buffer.append(span)
        metrics.counter(f"trace.{kind}").inc()
        return span

    # ------------------------------------------------------------------
    # Reading and export
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Recorded spans, in recording (roughly end-time) order.

        Safe to call from any thread: the copy is taken under the read
        lock, so a concurrent :meth:`clear`/:meth:`enable` cannot swap the
        buffer out from underneath it.  (Span *appends* by the engine
        thread do not lock — copying a deque is a single C-level
        operation under the GIL.)
        """
        with self._read_lock:
            return list(self._buffer)

    def find(self, kind: str | None = None, **attrs: Any) -> list[Span]:
        """Spans matching ``kind`` and every given attr (test helper)."""
        out = []
        for span in self.spans():
            if kind is not None and span.kind != kind:
                continue
            if all(span.attrs.get(k) == v for k, v in attrs.items()):
                out.append(span)
        return out

    def export_jsonl(self, target: "str | IO[str]") -> int:
        """Write every recorded span as one JSON object per line.

        ``target`` is a path or an open text stream.  Returns the number
        of spans written.  Attributes that are not JSON-native are
        stringified (OIDs render as ``@n``).
        """
        spans = self.spans()
        if hasattr(target, "write"):
            self._write_jsonl(target, spans)  # type: ignore[arg-type]
        else:
            with open(target, "w") as handle:
                self._write_jsonl(handle, spans)
        return len(spans)

    @staticmethod
    def _write_jsonl(handle: "IO[str]", spans: list[Span]) -> None:
        for span in spans:
            handle.write(json.dumps(span.to_json(), default=str))
            handle.write("\n")


#: The process-wide tracer.  Instrumented modules bind this to a local
#: (``from ..obs.tracer import tracer as _tracer``) and branch on
#: ``_tracer.enabled`` — one load, one jump when disabled.
tracer = CausalityTracer()
