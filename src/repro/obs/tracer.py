"""The causality tracer: spans over the event→rule pipeline and the OODB.

One rule firing in Sentinel crosses five layers — a method invocation
raises a bom/eom occurrence, the occurrence feeds event detection
(possibly buffering inside a composite operator), the signalled rule is
scheduled under a coupling mode, its condition is checked, its action
runs — and, for deferred/detached modes, the tail of that chain moves
into the committing transaction.  The tracer records each step as a
:class:`Span` with a parent link, so the whole chain renders as one tree
and exports as JSONL (``python -m repro.tools.trace`` renders it).

Span parentage follows the dynamic call structure: whatever span is open
when a new one begins becomes its parent.  Steps that happen *later* than
their cause (a deferred rule firing at commit) are linked causally by the
triggering occurrence's sequence number (``seq`` attribute) while being
*parented* to the span actually executing them (the committing
transaction), which is exactly the paper's coupling-mode semantics made
visible.

The tracer is disabled by default.  Instrumented hot paths check the
:attr:`CausalityTracer.enabled` flag and take a single guarded branch;
the disabled cost is one attribute load per instrumented function.  When
enabled, every finished span also feeds a ``<kind>_us`` latency histogram
in :data:`repro.obs.metrics.metrics`.

Not thread-safe, by design — neither is the rule scheduler it observes.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import IO, Any, Deque, Iterator

from .metrics import metrics

__all__ = ["Span", "CausalityTracer", "tracer", "SPAN_KINDS"]

#: The span kinds the instrumented layers emit, pipeline order first.
SPAN_KINDS = (
    "method",       # monitored method invocation (event stub)
    "occurrence",   # bom/eom occurrence propagated to consumers
    "detect",       # detector feed / composite operator evaluation
    "signal",       # an event (primitive or composite) signalled
    "schedule",     # a rule handed to the scheduler (coupling decision)
    "rule",         # one rule execution (condition + action)
    "condition",    # rule condition evaluation
    "action",       # rule action execution
    "outcome",      # per-firing verdict point (joins EXPLAIN RULE reports)
    "txn",          # transaction begin/commit/abort
    "wal",          # write-ahead-log writes
)


@dataclass(slots=True)
class Span:
    """One step in a causality chain.

    ``start_us`` is monotonic microseconds since the tracer was enabled;
    ``duration_us`` is 0.0 for instantaneous (point) spans.  ``attrs``
    carries the identifying payload: ``seq`` (occurrence sequence number),
    ``oid``, ``rule``, ``coupling``, ``class``/``method`` — whatever the
    emitting layer knows.
    """

    span_id: int
    parent_id: int | None
    kind: str
    name: str
    start_us: float
    duration_us: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "attrs": self.attrs,
        }

    @classmethod
    def from_json(cls, body: dict[str, Any]) -> "Span":
        return cls(
            span_id=body["span"],
            parent_id=body.get("parent"),
            kind=body["kind"],
            name=body["name"],
            start_us=body.get("start_us", 0.0),
            duration_us=body.get("duration_us", 0.0),
            attrs=body.get("attrs") or {},
        )

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return (
            f"[{self.span_id}<-{self.parent_id or '·'}] {self.kind} "
            f"{self.name} {self.duration_us:.1f}µs {extra}".rstrip()
        )


class CausalityTracer:
    """Bounded-ring-buffer span recorder with an ambient span stack."""

    __slots__ = ("enabled", "capacity", "_buffer", "_stack", "_next_id", "_origin")

    def __init__(self, capacity: int = 8192) -> None:
        self.enabled = False
        self.capacity = capacity
        self._buffer: Deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._next_id = 0
        self._origin = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, capacity: int | None = None) -> "CausalityTracer":
        """Start recording (optionally resizing the ring buffer)."""
        if capacity is not None and capacity != self.capacity:
            self.capacity = capacity
            self._buffer = deque(self._buffer, maxlen=capacity)
        if not self.enabled:
            self._origin = perf_counter()
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop recording.  Recorded spans stay readable until clear()."""
        self.enabled = False
        self._stack.clear()

    def clear(self) -> None:
        self._buffer.clear()
        self._stack.clear()
        self._next_id = 0

    @contextmanager
    def session(self, capacity: int | None = None) -> Iterator["CausalityTracer"]:
        """``with tracer.session(): ...`` — enable, then disable on exit."""
        self.enable(capacity)
        try:
            yield self
        finally:
            self.disable()

    # ------------------------------------------------------------------
    # Recording (called only from guarded branches: tracer is enabled)
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return (perf_counter() - self._origin) * 1e6

    def begin(self, kind: str, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the currently open span."""
        self._next_id += 1
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            kind=kind,
            name=name,
            start_us=self._now(),
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close ``span``, record it, and feed its latency histogram."""
        span.duration_us = self._now() - span.start_us
        if attrs:
            span.attrs.update(attrs)
        # Unwind to this span even if an exception skipped inner end()s.
        while self._stack:
            if self._stack.pop() is span:
                break
        self._buffer.append(span)
        metrics.histogram(f"{span.kind}_us").record(span.duration_us)
        return span

    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[Span]:
        opened = self.begin(kind, name, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def point(self, kind: str, name: str, **attrs: Any) -> Span:
        """Record an instantaneous span under the currently open span."""
        self._next_id += 1
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            kind=kind,
            name=name,
            start_us=self._now(),
            attrs=attrs,
        )
        self._buffer.append(span)
        metrics.counter(f"trace.{kind}").inc()
        return span

    # ------------------------------------------------------------------
    # Reading and export
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Recorded spans, in recording (roughly end-time) order."""
        return list(self._buffer)

    def find(self, kind: str | None = None, **attrs: Any) -> list[Span]:
        """Spans matching ``kind`` and every given attr (test helper)."""
        out = []
        for span in self._buffer:
            if kind is not None and span.kind != kind:
                continue
            if all(span.attrs.get(k) == v for k, v in attrs.items()):
                out.append(span)
        return out

    def export_jsonl(self, target: "str | IO[str]") -> int:
        """Write every recorded span as one JSON object per line.

        ``target`` is a path or an open text stream.  Returns the number
        of spans written.  Attributes that are not JSON-native are
        stringified (OIDs render as ``@n``).
        """
        spans = self.spans()
        if hasattr(target, "write"):
            self._write_jsonl(target, spans)  # type: ignore[arg-type]
        else:
            with open(target, "w") as handle:
                self._write_jsonl(handle, spans)
        return len(spans)

    @staticmethod
    def _write_jsonl(handle: "IO[str]", spans: list[Span]) -> None:
        for span in spans:
            handle.write(json.dumps(span.to_json(), default=str))
            handle.write("\n")


#: The process-wide tracer.  Instrumented modules bind this to a local
#: (``from ..obs.tracer import tracer as _tracer``) and branch on
#: ``_tracer.enabled`` — one load, one jump when disabled.
tracer = CausalityTracer()
