"""Continuous telemetry: an on-disk metrics time-series store + collector.

Every other observability surface is instantaneous: ``metrics.snapshot()``
is *now*, ``/healthz`` judges one moment, ``tools.top`` forgets each
frame.  This module gives the registry a memory.  A
:class:`TelemetryCollector` scrapes the in-process
:class:`~repro.obs.metrics.MetricsRegistry` on a fixed interval into a
:class:`TimeSeriesStore` — compact, crash-safe, append-only segment
files — and evaluates declarative SLOs (:mod:`repro.obs.slo`) against
the history, raising breaches as first-class sysmon events so ordinary
ECA rules can react to *trends* (error-rate burn, latency drift), not
just instants.

**Segment format.**  A store is a directory of ``tsdb-<seq>.seg`` files.
Each segment is self-contained::

    header:  magic "RTS1" | u8 version | f64 base_ts
    NAME:    u8 tag=1 | u32 sid | u16 len | name bytes | u32 crc32(name)
    FRAME:   u8 tag=2 | u32 dt_ms | u16 n | n x (u32 sid, f64 value)
             | u32 crc32(samples)

Series names are interned per segment (a ``NAME`` record precedes a
series id's first use), frame timestamps are delta-encoded as whole
milliseconds from the segment's ``base_ts`` (4 bytes a frame instead of
8, reusing the struct-packing discipline of the record codec), and every
record carries a CRC.  One scrape is one ``write()`` + ``flush()``;
a crash can therefore tear at most the final record of the final
segment, and the reader stops cleanly at the first torn or corrupt
record (:func:`parse_segment` reports the torn byte count).  Reopening
a store never appends to an old segment — existing files are sealed
as-is and writing continues in a fresh one, so recovery is a no-op.

**Retention** is size- and age-based: when the active segment rolls
(``segment_bytes``), sealed segments are deleted oldest-first while the
store exceeds ``retain_bytes`` or a sealed segment's newest sample is
older than ``retain_age_s``.  :meth:`TimeSeriesStore.compact` merges
all sealed segments into one (re-interning names, dropping aged
samples) — ``python -m repro.tools.tsdb`` exposes it.

**Read API**: :meth:`~TimeSeriesStore.query` (range scan),
:meth:`~TimeSeriesStore.rate` / :meth:`~TimeSeriesStore.increase`
(counter semantics: sum of positive deltas, so process restarts do not
produce negative rates), and :meth:`~TimeSeriesStore.aggregate`
(windowed avg/min/max/sum/count/last over gauge-like series).  Readers
(the ``/history`` endpoint, ``tools.top --history``, ``tools.doctor``)
parse segment files directly; parsed segments are cached by file size,
so repeated SLO evaluation does not re-read sealed data.

Threading follows the package's single-writer discipline: the collector
thread is the only writer (``append``/roll/compact take the store lock);
readers parse flushed bytes and never block the writer.  Note the
corollary: while the background collector is running, *it* is the thread
that raises ``slo_breach`` sysmon events — breach rules should stick to
engine-safe reactions (disable a rule, write a log) or use decoupled
coupling; tests drive :meth:`TelemetryCollector.scrape_once`
synchronously instead.
"""

from __future__ import annotations

import os
import struct
import threading
import time
from typing import Any, Callable, Iterator, Mapping, Sequence
from zlib import crc32

from .metrics import MetricsRegistry, metrics
from .signals import engine_signals
from .slo import SLO, SLOStatus, evaluate_slo

__all__ = [
    "TimeSeriesStore",
    "TelemetryCollector",
    "Telemetry",
    "telemetry",
    "flatten_snapshot",
    "parse_segment",
    "ParsedSegment",
    "MAGIC",
    "VERSION",
]

MAGIC = b"RTS1"
VERSION = 1

_HEADER = struct.Struct("<4sBd")  # magic, version, base_ts
_NAME_HDR = struct.Struct("<BIH")  # tag=1, sid, name length
_FRAME_HDR = struct.Struct("<BIH")  # tag=2, dt_ms, sample count
_SAMPLE = struct.Struct("<Id")  # sid, value
_CRC = struct.Struct("<I")

_TAG_NAME = 1
_TAG_FRAME = 2

#: dt_ms is u32: one segment spans at most ~49 days before rolling.
_MAX_DT_MS = (1 << 32) - 1

_AGG_FNS: dict[str, Callable[[Sequence[float]], float]] = {
    "avg": lambda vs: sum(vs) / len(vs),
    "sum": sum,
    "min": min,
    "max": max,
    "count": lambda vs: float(len(vs)),
    "last": lambda vs: vs[-1],
}


class ParsedSegment:
    """One decoded segment: its names, frames, and torn-tail byte count."""

    __slots__ = ("base_ts", "names", "frames", "torn_bytes")

    def __init__(
        self,
        base_ts: float,
        names: dict[int, str],
        frames: list[tuple[float, list[tuple[int, float]]]],
        torn_bytes: int,
    ) -> None:
        self.base_ts = base_ts
        #: sid -> series name (per-segment interning).
        self.names = names
        #: (absolute ts, [(sid, value), ...]) per scrape, oldest first.
        self.frames = frames
        #: Bytes after the last intact record (non-zero after a crash).
        self.torn_bytes = torn_bytes

    @property
    def samples(self) -> int:
        return sum(len(frame[1]) for frame in self.frames)

    @property
    def end_ts(self) -> float:
        return self.frames[-1][0] if self.frames else self.base_ts


def parse_segment(data: bytes) -> ParsedSegment:
    """Decode one segment's bytes, stopping cleanly at a torn tail.

    Raises ``ValueError`` only for a bad magic/version (not a segment at
    all); truncation and CRC mismatches terminate the parse and are
    reported via :attr:`ParsedSegment.torn_bytes`.
    """
    if len(data) < _HEADER.size:
        raise ValueError("not a tsdb segment: short header")
    magic, version, base_ts = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise ValueError(f"not a tsdb segment: bad magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"unsupported tsdb segment version {version}")
    names: dict[int, str] = {}
    frames: list[tuple[float, list[tuple[int, float]]]] = []
    offset = _HEADER.size
    size = len(data)
    while offset < size:
        tag = data[offset]
        if tag == _TAG_NAME:
            if offset + _NAME_HDR.size > size:
                break
            _, sid, name_len = _NAME_HDR.unpack_from(data, offset)
            body_end = offset + _NAME_HDR.size + name_len
            if body_end + _CRC.size > size:
                break
            name_bytes = data[offset + _NAME_HDR.size : body_end]
            (crc,) = _CRC.unpack_from(data, body_end)
            if crc32(name_bytes) != crc:
                break
            names[sid] = name_bytes.decode("utf-8", "replace")
            offset = body_end + _CRC.size
        elif tag == _TAG_FRAME:
            if offset + _FRAME_HDR.size > size:
                break
            _, dt_ms, count = _FRAME_HDR.unpack_from(data, offset)
            body_end = offset + _FRAME_HDR.size + count * _SAMPLE.size
            if body_end + _CRC.size > size:
                break
            body = data[offset + _FRAME_HDR.size : body_end]
            (crc,) = _CRC.unpack_from(data, body_end)
            if crc32(body) != crc:
                break
            samples = [
                _SAMPLE.unpack_from(body, i * _SAMPLE.size)
                for i in range(count)
            ]
            frames.append((base_ts + dt_ms / 1000.0, samples))
            offset = body_end + _CRC.size
        else:  # unknown tag: corrupt tail
            break
    return ParsedSegment(base_ts, names, frames, size - offset)


def flatten_snapshot(snapshot: Mapping[str, Any]) -> dict[str, float]:
    """A ``metrics.snapshot()`` as flat float series.

    Counters pass through; histogram summary dicts fan out to
    ``<name>.count`` / ``<name>.sum`` / ``<name>.p50`` … sub-series.
    Non-numeric and non-finite values (an idle histogram's missing
    percentiles, bucket tables, string collector output) are skipped —
    scraping an idle registry must always succeed.
    """
    out: dict[str, float] = {}
    for name, value in snapshot.items():
        if isinstance(value, dict):
            for key, sub in value.items():
                if isinstance(sub, bool) or not isinstance(sub, (int, float)):
                    continue
                sub_f = float(sub)
                if sub_f == sub_f and sub_f not in (
                    float("inf"), float("-inf")
                ):
                    out[f"{name}.{key}"] = sub_f
        elif isinstance(value, bool):
            out[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            value_f = float(value)
            if value_f == value_f and value_f not in (
                float("inf"), float("-inf")
            ):
                out[name] = value_f
    return out


class TimeSeriesStore:
    """Append-only, crash-safe, segment-rotated metrics time series."""

    def __init__(
        self,
        directory: str,
        segment_bytes: int = 256 * 1024,
        retain_bytes: int = 8 * 1024 * 1024,
        retain_age_s: float = 24 * 3600.0,
    ) -> None:
        if segment_bytes < 1024:
            raise ValueError(f"segment_bytes must be >= 1024, got {segment_bytes}")
        if retain_bytes < segment_bytes:
            raise ValueError("retain_bytes must be >= segment_bytes")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.retain_bytes = retain_bytes
        self.retain_age_s = retain_age_s
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._handle: Any = None
        self._names: dict[str, int] = {}
        self._base_ts = 0.0
        self._size = 0
        existing = self._segment_seqs()
        # Never append to a pre-existing segment: a torn tail from a
        # previous process stays sealed where it is, and recovery is
        # nothing more than starting the next segment.
        self._seq = (existing[-1] + 1) if existing else 1
        #: path -> (file size when parsed, parsed segment).
        self._cache: dict[str, tuple[int, ParsedSegment]] = {}

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------
    def _segment_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"tsdb-{seq:08d}.seg")

    def _segment_seqs(self) -> list[int]:
        seqs: list[int] = []
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            return seqs
        for entry in entries:
            if entry.startswith("tsdb-") and entry.endswith(".seg"):
                try:
                    seqs.append(int(entry[5:-4]))
                except ValueError:
                    continue
        seqs.sort()
        return seqs

    def segments(self) -> list[dict[str, Any]]:
        """Every segment's seq/path/bytes/frames/torn bytes, oldest first."""
        out: list[dict[str, Any]] = []
        for seq in self._segment_seqs():
            path = self._segment_path(seq)
            parsed = self._load(path)
            if parsed is None:
                continue
            out.append(
                {
                    "seq": seq,
                    "path": path,
                    "bytes": os.path.getsize(path) if os.path.exists(path) else 0,
                    "frames": len(parsed.frames),
                    "samples": parsed.samples,
                    "series": len(parsed.names),
                    "start_ts": parsed.base_ts,
                    "end_ts": parsed.end_ts,
                    "torn_bytes": parsed.torn_bytes,
                }
            )
        return out

    def _load(self, path: str) -> ParsedSegment | None:
        try:
            size = os.path.getsize(path)
        except OSError:
            return None
        cached = self._cache.get(path)
        if cached is not None and cached[0] == size:
            return cached[1]
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        try:
            parsed = parse_segment(data)
        except ValueError:
            return None
        self._cache[path] = (len(data), parsed)
        return parsed

    def _iter_parsed(self) -> Iterator[ParsedSegment]:
        for seq in self._segment_seqs():
            parsed = self._load(self._segment_path(seq))
            if parsed is not None:
                yield parsed

    # ------------------------------------------------------------------
    # Writing (collector thread)
    # ------------------------------------------------------------------
    def append(self, samples: Mapping[str, float], ts: float | None = None) -> None:
        """Write one scrape: interleaved NAME records plus one FRAME."""
        if not samples:
            return
        when = time.time() if ts is None else ts
        with self._lock:
            if self._handle is None:
                self._open_segment(when)
            dt_ms = int(max(0.0, when - self._base_ts) * 1000)
            if self._size >= self.segment_bytes or dt_ms > _MAX_DT_MS:
                self._roll(when)
                dt_ms = int(max(0.0, when - self._base_ts) * 1000)
            buf = bytearray()
            for name in samples:
                if name not in self._names:
                    sid = self._names[name] = len(self._names)
                    name_bytes = name.encode("utf-8")
                    buf += _NAME_HDR.pack(_TAG_NAME, sid, len(name_bytes))
                    buf += name_bytes
                    buf += _CRC.pack(crc32(name_bytes))
            body = b"".join(
                _SAMPLE.pack(self._names[name], float(value))
                for name, value in samples.items()
            )
            buf += _FRAME_HDR.pack(_TAG_FRAME, dt_ms, len(samples))
            buf += body
            buf += _CRC.pack(crc32(body))
            self._handle.write(bytes(buf))
            self._handle.flush()
            self._size += len(buf)

    def _open_segment(self, when: float) -> None:
        path = self._segment_path(self._seq)
        self._handle = open(path, "wb")
        self._base_ts = when
        self._names = {}
        self._handle.write(_HEADER.pack(MAGIC, VERSION, when))
        self._handle.flush()
        self._size = _HEADER.size

    def _roll(self, when: float) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._seq += 1
        self._enforce_retention(when)
        self._open_segment(when)

    def _enforce_retention(self, now: float) -> None:
        seqs = self._segment_seqs()
        infos: list[tuple[int, str, int]] = []
        total = 0
        for seq in seqs:
            path = self._segment_path(seq)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            infos.append((seq, path, size))
            total += size
        for seq, path, size in infos[:-1]:  # never delete the newest
            parsed = self._load(path)
            aged = (
                parsed is not None
                and now - parsed.end_ts > self.retain_age_s
            )
            if total <= self.retain_bytes and not aged:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            self._cache.pop(path, None)
            total -= size

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Reading (any thread; parses flushed bytes only)
    # ------------------------------------------------------------------
    def series(self) -> list[str]:
        """Every series name present in any live segment, sorted."""
        names: set[str] = set()
        for parsed in self._iter_parsed():
            names.update(parsed.names.values())
        return sorted(names)

    def query(
        self,
        name: str,
        start: float | None = None,
        end: float | None = None,
    ) -> list[tuple[float, float]]:
        """``(ts, value)`` samples of ``name`` in ``[start, end]``, oldest first."""
        out: list[tuple[float, float]] = []
        for parsed in self._iter_parsed():
            sid = None
            for known_sid, known in parsed.names.items():
                if known == name:
                    sid = known_sid
                    break
            if sid is None:
                continue
            for ts, samples in parsed.frames:
                if start is not None and ts < start:
                    continue
                if end is not None and ts > end:
                    continue
                for sample_sid, value in samples:
                    if sample_sid == sid:
                        out.append((ts, value))
                        break
        return out

    def latest(self, name: str) -> tuple[float, float] | None:
        points = self.query(name)
        return points[-1] if points else None

    def last_scrape_ts(self) -> float | None:
        """The newest frame timestamp across all segments."""
        newest: float | None = None
        for parsed in self._iter_parsed():
            if parsed.frames:
                ts = parsed.frames[-1][0]
                if newest is None or ts > newest:
                    newest = ts
        return newest

    def scrape_times(
        self, start: float | None = None, end: float | None = None
    ) -> list[float]:
        """Every frame timestamp (one per scrape), oldest first."""
        times: list[float] = []
        for parsed in self._iter_parsed():
            for ts, _samples in parsed.frames:
                if start is not None and ts < start:
                    continue
                if end is not None and ts > end:
                    continue
                times.append(ts)
        times.sort()
        return times

    def snapshot_at(self, ts: float) -> dict[str, float]:
        """The flat sample dict written by the scrape at exactly ``ts``."""
        out: dict[str, float] = {}
        for parsed in self._iter_parsed():
            for frame_ts, samples in parsed.frames:
                if frame_ts == ts:
                    for sid, value in samples:
                        name = parsed.names.get(sid)
                        if name is not None:
                            out[name] = value
        return out

    def increase(
        self, name: str, window_s: float, at: float | None = None
    ) -> float | None:
        """Counter increase over the window: the sum of positive deltas.

        Negative deltas (a process restart reset the counter) contribute
        nothing rather than poisoning the rate.  Returns ``None`` when
        fewer than two samples fall inside the window — callers must
        treat "no data" and "zero" differently (an SLO cannot breach on
        an empty window).
        """
        end = time.time() if at is None else at
        points = self.query(name, start=end - window_s, end=end)
        if len(points) < 2:
            return None
        total = 0.0
        for (_, prev), (_, cur) in zip(points, points[1:]):
            delta = cur - prev
            if delta > 0:
                total += delta
        return total

    def rate(
        self, name: str, window_s: float, at: float | None = None
    ) -> float | None:
        """Per-second counter rate over the window (``None`` without data)."""
        end = time.time() if at is None else at
        points = self.query(name, start=end - window_s, end=end)
        if len(points) < 2:
            return None
        elapsed = points[-1][0] - points[0][0]
        if elapsed <= 0:
            return None
        total = 0.0
        for (_, prev), (_, cur) in zip(points, points[1:]):
            delta = cur - prev
            if delta > 0:
                total += delta
        return total / elapsed

    def aggregate(
        self,
        name: str,
        window_s: float,
        fn: str = "avg",
        at: float | None = None,
    ) -> float | None:
        """Windowed aggregation over gauge-like samples (``None`` if empty)."""
        agg = _AGG_FNS.get(fn)
        if agg is None:
            raise ValueError(
                f"unknown aggregation {fn!r}; pick from {sorted(_AGG_FNS)}"
            )
        end = time.time() if at is None else at
        points = self.query(name, start=end - window_s, end=end)
        if not points:
            return None
        return agg([value for _, value in points])

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def compact(self, now: float | None = None) -> dict[str, int]:
        """Merge every segment into one, dropping samples past retention.

        The active segment is sealed first; the next append starts a
        fresh one.  Returns before/after statistics.
        """
        when = time.time() if now is None else now
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            seqs = self._segment_seqs()
            paths = [self._segment_path(seq) for seq in seqs]
            bytes_before = sum(
                os.path.getsize(p) for p in paths if os.path.exists(p)
            )
            merged: list[tuple[float, dict[str, float]]] = []
            dropped = 0
            horizon = when - self.retain_age_s
            for path in paths:
                parsed = self._load(path)
                if parsed is None:
                    continue
                for ts, samples in parsed.frames:
                    if ts < horizon:
                        dropped += sum(1 for _ in samples)
                        continue
                    frame: dict[str, float] = {}
                    for sid, value in samples:
                        name = parsed.names.get(sid)
                        if name is not None:
                            frame[name] = value
                    if frame:
                        merged.append((ts, frame))
            merged.sort(key=lambda item: item[0])
            out_seq = (seqs[-1] if seqs else 0) + 1
            out_path = self._segment_path(out_seq)
            samples_after = 0
            if merged:
                tmp_path = out_path + ".tmp"
                names: dict[str, int] = {}
                with open(tmp_path, "wb") as handle:
                    handle.write(_HEADER.pack(MAGIC, VERSION, merged[0][0]))
                    base = merged[0][0]
                    for ts, frame in merged:
                        buf = bytearray()
                        for name in frame:
                            if name not in names:
                                sid = names[name] = len(names)
                                name_bytes = name.encode("utf-8")
                                buf += _NAME_HDR.pack(
                                    _TAG_NAME, sid, len(name_bytes)
                                )
                                buf += name_bytes
                                buf += _CRC.pack(crc32(name_bytes))
                        body = b"".join(
                            _SAMPLE.pack(names[name], value)
                            for name, value in frame.items()
                        )
                        dt_ms = min(_MAX_DT_MS, int(max(0.0, ts - base) * 1000))
                        buf += _FRAME_HDR.pack(_TAG_FRAME, dt_ms, len(frame))
                        buf += body
                        buf += _CRC.pack(crc32(body))
                        handle.write(bytes(buf))
                        samples_after += len(frame)
                os.replace(tmp_path, out_path)
            for path in paths:
                try:
                    os.remove(path)
                except OSError:
                    pass
                self._cache.pop(path, None)
            self._seq = out_seq + 1
            bytes_after = (
                os.path.getsize(out_path) if os.path.exists(out_path) else 0
            )
            return {
                "segments_before": len(paths),
                "segments_after": 1 if merged else 0,
                "bytes_before": bytes_before,
                "bytes_after": bytes_after,
                "samples": samples_after,
                "samples_dropped": dropped,
            }

    def stats(self) -> dict[str, float]:
        """Totals for the metrics collector / ``tools.tsdb info``."""
        segments = self.segments()
        return {
            "segments": float(len(segments)),
            "bytes": float(sum(s["bytes"] for s in segments)),
            "frames": float(sum(s["frames"] for s in segments)),
            "samples": float(sum(s["samples"] for s in segments)),
            "series": float(len(self.series())),
            "torn_bytes": float(sum(s["torn_bytes"] for s in segments)),
        }


class TelemetryCollector:
    """Background scraper: registry -> store, plus SLO evaluation.

    ``start()`` launches a daemon thread waking every ``interval``
    seconds; ``scrape_once()`` is the synchronous unit of work the
    thread repeats (tests and the doctor drive it directly).  A scrape
    that raises — a collector callback blowing up inside
    ``registry.snapshot()``, a full disk — is counted
    (``tsdb.scrape_errors``) and isolated: the thread survives and tries
    again next tick.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        registry: MetricsRegistry = metrics,
        interval: float = 5.0,
        slos: Sequence[SLO] = (),
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.store = store
        self.registry = registry
        self.interval = interval
        self.slos = list(slos)
        self.scrapes = 0
        self.scrape_errors = 0
        self.breaches = 0
        self._breached: set[str] = set()
        self._statuses: dict[str, SLOStatus] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryCollector":
        """Launch the scrape thread (idempotent: double-start is a no-op)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-tsdb", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread and join it; safe mid-scrape and when idle."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.scrape_once()

    # ------------------------------------------------------------------
    # One scrape
    # ------------------------------------------------------------------
    def scrape_once(self, now: float | None = None) -> bool:
        """Scrape + evaluate once; returns False when the scrape failed."""
        when = time.time() if now is None else now
        try:
            samples = flatten_snapshot(self.registry.snapshot())
            self.store.append(samples, ts=when)
            self.scrapes += 1
        except Exception:
            self.scrape_errors += 1
            return False
        try:
            self._evaluate_slos(when)
        except Exception:
            self.scrape_errors += 1
            return False
        return True

    def _evaluate_slos(self, now: float) -> None:
        for slo in self.slos:
            status = evaluate_slo(slo, self.store, now)
            self._statuses[slo.name] = status
            if status.breached and slo.name not in self._breached:
                self._breached.add(slo.name)
                self.breaches += 1
                self.registry.counter(
                    f"slo_breaches_total{{slo={slo.name}}}"
                ).inc()
                if engine_signals.active:
                    engine_signals.emit(
                        "slo_breach",
                        slo=slo.name,
                        value=round(status.value, 6),
                        target=slo.target,
                        burn=round(status.worst_burn, 3),
                        windows=status.windows_text,
                    )
            elif not status.breached:
                self._breached.discard(slo.name)

    def slo_statuses(self) -> list[SLOStatus]:
        """The most recent evaluation of every objective."""
        return [
            self._statuses[slo.name]
            for slo in self.slos
            if slo.name in self._statuses
        ]

    def counts(self) -> dict[str, float]:
        """The ``tsdb.*`` collector the registry publishes while open."""
        out = {
            "scrapes": float(self.scrapes),
            "scrape_errors": float(self.scrape_errors),
            "slo_breaches": float(self.breaches),
            "slos": float(len(self.slos)),
            "interval_s": float(self.interval),
        }
        out.update(self.store.stats())
        return out


class Telemetry:
    """The process-wide telemetry handle (the audit-log idiom).

    ``Sentinel.enable_telemetry(dir)`` opens it; ``tools.doctor`` and the
    ``/history`` endpoint read through it without holding a Sentinel.
    """

    def __init__(self) -> None:
        self.store: TimeSeriesStore | None = None
        self.collector: TelemetryCollector | None = None

    @property
    def enabled(self) -> bool:
        return self.store is not None

    def open(
        self,
        directory: str,
        interval: float = 5.0,
        slos: Sequence[SLO] = (),
        registry: MetricsRegistry = metrics,
        start: bool = True,
        segment_bytes: int = 256 * 1024,
        retain_bytes: int = 8 * 1024 * 1024,
        retain_age_s: float = 24 * 3600.0,
    ) -> "Telemetry":
        """Open the store at ``directory`` and (by default) start scraping."""
        self.close()
        self.store = TimeSeriesStore(
            directory,
            segment_bytes=segment_bytes,
            retain_bytes=retain_bytes,
            retain_age_s=retain_age_s,
        )
        self.collector = TelemetryCollector(
            self.store, registry=registry, interval=interval, slos=slos
        )
        registry.register_collector("tsdb", self.collector.counts)
        if start:
            self.collector.start()
        return self

    def close(self) -> None:
        if self.collector is not None:
            self.collector.stop()
            self.collector.registry.unregister_collector("tsdb")
            self.collector = None
        if self.store is not None:
            self.store.close()
            self.store = None


#: The process-wide handle, mirroring ``audit_log`` / ``slow_op_log``.
telemetry = Telemetry()
