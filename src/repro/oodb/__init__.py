"""``repro.oodb`` — a from-scratch object-oriented database substrate.

This package stands in for Zeitgeist, the OODBMS the paper built Sentinel
on.  It provides object identity (OIDs), persistence roots, ACID
transactions with write-ahead logging and crash recovery, class extents,
B-tree attribute indexes, and a query layer.

Quick use::

    from repro.oodb import Database, Persistent

    class Employee(Persistent):
        def __init__(self, name, salary):
            super().__init__()
            self.name = name
            self.salary = salary

    with Database("/tmp/db") as db:
        with db.transaction():
            fred = Employee("Fred", 50_000.0)
            db.set_root("fred", fred)
"""

from .buffer import BufferPool, BufferStats
from .codec import RecordSchema, compile_schema
from .database import Database, RootMap
from .errors import (
    DatabaseClosed,
    DeadlockDetected,
    DuplicateKey,
    LockTimeout,
    NoActiveTransaction,
    ObjectNotFound,
    OODBError,
    QueryError,
    SchemaError,
    SerializationError,
    StorageError,
    TransactionAborted,
    TransactionError,
    UnregisteredClass,
    WALError,
)
from .hashindex import ExtendibleHashIndex, HashIndexStats
from .index import INDEX_KINDS, BTree, IndexDefinition, IndexManager
from .locks import LockManager, LockMode
from .oid import NULL_OID, Oid, OidAllocator
from .query import Query
from .schema import ClassRegistry, Persistent, PersistentMeta, global_registry
from .serializer import Serializer
from .transactions import Transaction, TransactionManager, TransactionStatus

__all__ = [
    "Database",
    "RootMap",
    "Persistent",
    "PersistentMeta",
    "ClassRegistry",
    "global_registry",
    "Oid",
    "OidAllocator",
    "NULL_OID",
    "Transaction",
    "TransactionManager",
    "TransactionStatus",
    "Query",
    "BTree",
    "ExtendibleHashIndex",
    "HashIndexStats",
    "IndexDefinition",
    "IndexManager",
    "INDEX_KINDS",
    "RecordSchema",
    "compile_schema",
    "LockManager",
    "LockMode",
    "BufferPool",
    "BufferStats",
    "Serializer",
    "OODBError",
    "StorageError",
    "WALError",
    "SerializationError",
    "ObjectNotFound",
    "SchemaError",
    "UnregisteredClass",
    "TransactionError",
    "TransactionAborted",
    "NoActiveTransaction",
    "LockTimeout",
    "DeadlockDetected",
    "DuplicateKey",
    "QueryError",
    "DatabaseClosed",
]
