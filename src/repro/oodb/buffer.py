"""Buffer pool: an LRU cache of pages shared by all heap files.

The pool is the only component that reads or writes page files.  It keeps a
bounded number of pages in memory; dirty pages are written back on eviction
and on :meth:`BufferPool.flush_file`.  Statistics (hits, misses, evictions,
writebacks, readahead) are exposed for the substrate benchmarks, and every
live pool also reports into the process-wide metrics registry under
``buffer_pool.*`` so the exporter and ``inspect --stats`` can see hit rates
without holding a pool reference.

Sequential readers (extent scans, clustered batch fetches) can ask
:meth:`BufferPool.get` for *readahead*: on a miss the pool reads a run of
contiguous on-disk pages in one I/O and admits them all, so the next pages
of the scan are already cached.

Concurrency: one re-entrant lock serializes every public pool operation
(attach/detach, page gets, admits, flushes).  Page reads and writebacks
are small and hit the OS page cache, so holding the lock across them is
cheap; what matters is that an eviction writing back a dirty page can
never interleave with another thread reading the same slot.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

from ..obs.metrics import metrics as _metrics
from .errors import StorageError
from .storage.pages import PAGE_SIZE, Page

__all__ = ["BufferPool", "BufferStats"]


@dataclass(slots=True)
class BufferStats:
    """Counters for buffer-pool behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    #: pages admitted ahead of an explicit request (readahead runs)
    readahead_pages: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "readahead_pages": self.readahead_pages,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.readahead_pages = 0


#: Live pools, for the aggregated ``buffer_pool.*`` metrics collector.
_live_pools: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()


def _aggregate_stats() -> dict[str, float]:
    totals = BufferStats()
    for pool in list(_live_pools):
        stats = pool.stats
        totals.hits += stats.hits
        totals.misses += stats.misses
        totals.evictions += stats.evictions
        totals.writebacks += stats.writebacks
        totals.readahead_pages += stats.readahead_pages
    return totals.snapshot()


def _reset_stats() -> None:
    for pool in list(_live_pools):
        pool.stats.reset()


_metrics.register_collector("buffer_pool", _aggregate_stats, _reset_stats)


@dataclass(slots=True)
class _FileState:
    handle: object
    pins: int = 0
    pages_on_disk: set[int] = field(default_factory=set)


class BufferPool:
    """LRU page cache keyed by ``(file path, page id)``."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self._capacity = capacity
        self._pages: OrderedDict[tuple[str, int], Page] = OrderedDict()
        self._files: dict[str, _FileState] = {}
        self.stats = BufferStats()
        # Re-entrant: flush_file calls _write_page while already holding it.
        self._lock = threading.RLock()
        _live_pools.add(self)

    # ------------------------------------------------------------------
    # File management
    # ------------------------------------------------------------------
    def attach(self, path: str) -> None:
        """Register a page file with the pool (idempotent, ref-counted)."""
        with self._lock:
            state = self._files.get(path)
            if state is None:
                handle = open(path, "r+b")
                size = os.path.getsize(path)
                state = _FileState(handle=handle)
                state.pages_on_disk = set(range(size // PAGE_SIZE))
                self._files[path] = state
            state.pins += 1

    def detach(self, path: str) -> None:
        """Release one attachment; closes and drops pages at zero."""
        with self._lock:
            state = self._files.get(path)
            if state is None:
                return
            state.pins -= 1
            if state.pins <= 0:
                self.flush_file(path)
                state.handle.close()  # type: ignore[attr-defined]
                del self._files[path]
                for key in [k for k in self._pages if k[0] == path]:
                    del self._pages[key]

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    def get(self, path: str, page_id: int, readahead: int = 0) -> Page:
        """Return the page, reading it from disk on a miss.

        ``readahead`` asks the pool, on a miss, to read up to that many
        *contiguous on-disk* pages starting at ``page_id`` in a single
        I/O and admit them all — sequential scans hit the cache for the
        following pages.  Pages already cached are never overwritten
        (their in-memory copy may be dirty and newer than disk).
        """
        key = (path, page_id)
        with self._lock:
            page = self._pages.get(key)
            if page is not None:
                self.stats.hits += 1
                self._pages.move_to_end(key)
                return page
            self.stats.misses += 1
            if readahead > 1:
                run = self._read_run(path, page_id, readahead)
                if run is not None:
                    return run
            page = self._read_page(path, page_id)
            self._admit(key, page)
            return page

    def _read_run(self, path: str, page_id: int, length: int) -> Page | None:
        """Read a run of contiguous on-disk pages in one I/O.

        Returns the page at ``page_id`` or ``None`` when the run cannot be
        read as a block (first page not on disk — let ``_read_page`` raise
        its usual error).  The run is capped at the pool capacity so the
        requested page cannot be evicted by its own readahead.
        """
        state = self._require_file(path)
        if page_id not in state.pages_on_disk:
            return None
        length = min(length, self._capacity)
        run = 1
        while (
            run < length
            and page_id + run in state.pages_on_disk
        ):
            run += 1
        if run == 1:
            return None
        handle = state.handle
        handle.seek(page_id * PAGE_SIZE)  # type: ignore[attr-defined]
        data = handle.read(run * PAGE_SIZE)  # type: ignore[attr-defined]
        if len(data) != run * PAGE_SIZE:
            raise StorageError(
                f"short read of pages {page_id}..{page_id + run - 1} "
                f"from {path}: {len(data)} bytes"
            )
        requested: Page | None = None
        for offset in range(run):
            current = page_id + offset
            key = (path, current)
            if key in self._pages:
                # Keep the cached copy — it may be dirty and newer.
                if current == page_id:  # pragma: no cover - miss implies absent
                    requested = self._pages[key]
                continue
            page = Page.from_bytes(
                data[offset * PAGE_SIZE : (offset + 1) * PAGE_SIZE]
            )
            self._admit(key, page)
            if current == page_id:
                requested = page
            else:
                self.stats.readahead_pages += 1
        assert requested is not None
        return requested

    def put_new(self, path: str, page: Page) -> None:
        """Admit a freshly-allocated page that does not yet exist on disk."""
        with self._lock:
            state = self._require_file(path)
            key = (path, page.page_id)
            if key in self._pages or page.page_id in state.pages_on_disk:
                raise StorageError(
                    f"page {page.page_id} of {path} already exists; "
                    "put_new is for fresh pages only"
                )
            page.dirty = True
            self._admit(key, page)

    def _admit(self, key: tuple[str, int], page: Page) -> None:
        self._pages[key] = page
        self._pages.move_to_end(key)
        while len(self._pages) > self._capacity:
            old_key, old_page = self._pages.popitem(last=False)
            self.stats.evictions += 1
            if old_page.dirty:
                self._write_page(old_key[0], old_page)

    # ------------------------------------------------------------------
    # Disk I/O
    # ------------------------------------------------------------------
    def _require_file(self, path: str) -> _FileState:
        state = self._files.get(path)
        if state is None:
            raise StorageError(f"file {path} is not attached to the buffer pool")
        return state

    def _read_page(self, path: str, page_id: int) -> Page:
        state = self._require_file(path)
        if page_id not in state.pages_on_disk:
            raise StorageError(f"page {page_id} of {path} does not exist")
        handle = state.handle
        handle.seek(page_id * PAGE_SIZE)  # type: ignore[attr-defined]
        data = handle.read(PAGE_SIZE)  # type: ignore[attr-defined]
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"short read of page {page_id} from {path}: {len(data)} bytes"
            )
        return Page.from_bytes(data)

    def _write_page(self, path: str, page: Page) -> None:
        state = self._require_file(path)
        handle = state.handle
        handle.seek(page.page_id * PAGE_SIZE)  # type: ignore[attr-defined]
        handle.write(page.to_bytes())  # type: ignore[attr-defined]
        state.pages_on_disk.add(page.page_id)
        page.dirty = False
        self.stats.writebacks += 1

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def flush_file(self, path: str) -> None:
        """Write back every dirty cached page of ``path`` and fsync."""
        with self._lock:
            state = self._files.get(path)
            if state is None:
                return
            for (file_path, _page_id), page in list(self._pages.items()):
                if file_path == path and page.dirty:
                    self._write_page(path, page)
            state.handle.flush()  # type: ignore[attr-defined]
            os.fsync(state.handle.fileno())  # type: ignore[attr-defined]

    def flush_all(self) -> None:
        """Flush every attached file."""
        with self._lock:
            for path in list(self._files):
                self.flush_file(path)

    @property
    def capacity(self) -> int:
        return self._capacity

    def cached_page_count(self) -> int:
        return len(self._pages)
