"""Buffer pool: an LRU cache of pages shared by all heap files.

The pool is the only component that reads or writes page files.  It keeps a
bounded number of pages in memory; dirty pages are written back on eviction
and on :meth:`BufferPool.flush_file`.  Statistics (hits, misses, evictions,
writebacks) are exposed for the substrate benchmarks.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

from .errors import StorageError
from .storage.pages import PAGE_SIZE, Page

__all__ = ["BufferPool", "BufferStats"]


@dataclass(slots=True)
class BufferStats:
    """Counters for buffer-pool behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(slots=True)
class _FileState:
    handle: object
    pins: int = 0
    pages_on_disk: set[int] = field(default_factory=set)


class BufferPool:
    """LRU page cache keyed by ``(file path, page id)``."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        self._capacity = capacity
        self._pages: OrderedDict[tuple[str, int], Page] = OrderedDict()
        self._files: dict[str, _FileState] = {}
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    # File management
    # ------------------------------------------------------------------
    def attach(self, path: str) -> None:
        """Register a page file with the pool (idempotent, ref-counted)."""
        state = self._files.get(path)
        if state is None:
            handle = open(path, "r+b")
            size = os.path.getsize(path)
            state = _FileState(handle=handle)
            state.pages_on_disk = set(range(size // PAGE_SIZE))
            self._files[path] = state
        state.pins += 1

    def detach(self, path: str) -> None:
        """Release one attachment; closes and drops pages at zero."""
        state = self._files.get(path)
        if state is None:
            return
        state.pins -= 1
        if state.pins <= 0:
            self.flush_file(path)
            state.handle.close()  # type: ignore[attr-defined]
            del self._files[path]
            for key in [k for k in self._pages if k[0] == path]:
                del self._pages[key]

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    def get(self, path: str, page_id: int) -> Page:
        """Return the page, reading it from disk on a miss."""
        key = (path, page_id)
        page = self._pages.get(key)
        if page is not None:
            self.stats.hits += 1
            self._pages.move_to_end(key)
            return page
        self.stats.misses += 1
        page = self._read_page(path, page_id)
        self._admit(key, page)
        return page

    def put_new(self, path: str, page: Page) -> None:
        """Admit a freshly-allocated page that does not yet exist on disk."""
        state = self._require_file(path)
        key = (path, page.page_id)
        if key in self._pages or page.page_id in state.pages_on_disk:
            raise StorageError(
                f"page {page.page_id} of {path} already exists; "
                "put_new is for fresh pages only"
            )
        page.dirty = True
        self._admit(key, page)

    def _admit(self, key: tuple[str, int], page: Page) -> None:
        self._pages[key] = page
        self._pages.move_to_end(key)
        while len(self._pages) > self._capacity:
            old_key, old_page = self._pages.popitem(last=False)
            self.stats.evictions += 1
            if old_page.dirty:
                self._write_page(old_key[0], old_page)

    # ------------------------------------------------------------------
    # Disk I/O
    # ------------------------------------------------------------------
    def _require_file(self, path: str) -> _FileState:
        state = self._files.get(path)
        if state is None:
            raise StorageError(f"file {path} is not attached to the buffer pool")
        return state

    def _read_page(self, path: str, page_id: int) -> Page:
        state = self._require_file(path)
        if page_id not in state.pages_on_disk:
            raise StorageError(f"page {page_id} of {path} does not exist")
        handle = state.handle
        handle.seek(page_id * PAGE_SIZE)  # type: ignore[attr-defined]
        data = handle.read(PAGE_SIZE)  # type: ignore[attr-defined]
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"short read of page {page_id} from {path}: {len(data)} bytes"
            )
        return Page.from_bytes(data)

    def _write_page(self, path: str, page: Page) -> None:
        state = self._require_file(path)
        handle = state.handle
        handle.seek(page.page_id * PAGE_SIZE)  # type: ignore[attr-defined]
        handle.write(page.to_bytes())  # type: ignore[attr-defined]
        state.pages_on_disk.add(page.page_id)
        page.dirty = False
        self.stats.writebacks += 1

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def flush_file(self, path: str) -> None:
        """Write back every dirty cached page of ``path`` and fsync."""
        state = self._files.get(path)
        if state is None:
            return
        for (file_path, _page_id), page in list(self._pages.items()):
            if file_path == path and page.dirty:
                self._write_page(path, page)
        state.handle.flush()  # type: ignore[attr-defined]
        os.fsync(state.handle.fileno())  # type: ignore[attr-defined]

    def flush_all(self) -> None:
        """Flush every attached file."""
        for path in list(self._files):
            self.flush_file(path)

    @property
    def capacity(self) -> int:
        return self._capacity

    def cached_page_count(self) -> int:
        return len(self._pages)
