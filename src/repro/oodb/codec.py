"""Struct-packed binary record codec.

Classes may declare a ``_p_schema``: an ordered mapping of attribute name
to a type spec (``"int"``, ``"float"``, ``"bool"``, ``"str:<max-bytes>"``,
``"oid"``, ``"datetime"``).  Schema'd attributes are packed with
:mod:`struct` into a fixed-layout region; everything else — dynamic
attributes, ``None``, out-of-range ints, over-long strings, aware
datetimes — falls back to the existing tagged-JSON encoding in a trailing
*dynamic* region.  The result is one compact byte string per record that
the heap and the WAL store as-is.

Layout of a packed record payload::

    u8   format tag (0x01; legacy JSON records start with '{' = 0x7B)
    u8   codec version (1)
    u32  schema fingerprint (crc32 over the canonical schema spec)
    u32  body checksum (crc32 over everything after this field)
    u64  oid
    u16  class-name length, then that many UTF-8 bytes
    ...  presence bitmap, one bit per schema field (set = packed)
    ...  fixed region: struct.pack of every schema field (zeroes when
         the bit is clear — offsets stay constant)
    u32  dynamic length, then that many bytes of tagged-JSON attrs

Records in both formats coexist in the same heap file and WAL because the
first payload byte disambiguates them; :func:`record_meta` peeks the OID
and class name of either format without a full decode.

The fingerprint pins the layout: decoding a packed record with a class
whose ``_p_schema`` has changed raises a clear
:class:`~repro.oodb.errors.SerializationError` instead of misreading
offsets.  The body checksum turns corruption and truncation into the same
clear error — never silently-wrong attribute values.
"""

from __future__ import annotations

import datetime as _dt
import json
import struct
import zlib
from typing import Any, Callable

from .errors import SerializationError
from .oid import Oid

__all__ = [
    "FieldSpec",
    "RecordSchema",
    "PACKED_FORMAT",
    "schema_for",
    "compile_schema",
    "encode_packed",
    "decode_packed",
    "record_meta",
    "is_packed",
    "jsonable_record",
]

#: First payload byte of a packed record.  Legacy JSON records begin with
#: ``{`` (0x7B), so a single byte distinguishes the formats.
PACKED_FORMAT = 0x01

_CODEC_VERSION = 1

#: Fixed part of the header: tag, version, fingerprint, body crc, oid,
#: class-name length.
_HEADER = struct.Struct("<BBIIQH")
_DYN_LEN = struct.Struct("<I")
_HEAD = struct.Struct("<BBII")
_OID_NAME = struct.Struct("<QH")

#: Where the checksummed body begins: right after tag, version,
#: fingerprint, and the crc field itself.
_BODY_OFFSET = _HEAD.size

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1
_U64_MAX = 2**64 - 1
_MICROS_PER_DAY = 86_400_000_000
_DT_MIN = _dt.datetime.min  # 0001-01-01 00:00, ordinal 1

_TYPE_FORMATS: dict[str, str] = {
    "int": "q",
    "float": "d",
    "bool": "B",
    "oid": "Q",
    "datetime": "q",
}

# Values a schema field contributes to the fixed struct: strings pack as
# (length, padded bytes), everything else as a single value.
_SLOTS_PER_TYPE: dict[str, int] = {
    "int": 1,
    "float": 1,
    "bool": 1,
    "oid": 1,
    "datetime": 1,
    "str": 2,
}

_ZEROS: dict[str, tuple[Any, ...]] = {
    "int": (0,),
    "float": (0.0,),
    "bool": (0,),
    "oid": (0,),
    "datetime": (0,),
}

_ENCODER = json.JSONEncoder(separators=(",", ":"), sort_keys=True)


class FieldSpec:
    """One compiled ``_p_schema`` entry."""

    __slots__ = ("name", "type", "max_len", "slot", "bit", "mask")

    def __init__(
        self, name: str, type_: str, max_len: int, slot: int, bit: int
    ) -> None:
        self.name = name
        self.type = type_
        self.max_len = max_len  # str only; 0 otherwise
        self.slot = slot  # first value index in the unpacked tuple
        self.bit = bit  # position in the presence bitmap
        self.mask = 1 << bit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spec = f"str:{self.max_len}" if self.type == "str" else self.type
        return f"FieldSpec({self.name!r}, {spec!r})"


class RecordSchema:
    """The compiled fixed layout for one persistent class."""

    __slots__ = (
        "class_name",
        "class_bytes",
        "fields",
        "field_index",
        "fingerprint",
        "packer",
        "bitmap_size",
        "fixed_size",
        "zero_slots",
        "full_mask",
        "fast_decode",
        "fast_encode",
    )

    def __init__(self, class_name: str, fields: list[FieldSpec]) -> None:
        self.class_name = class_name
        self.class_bytes = class_name.encode("utf-8")
        self.fields = fields
        self.field_index = {f.name: f for f in fields}
        canonical = tuple(
            (f.name, f"str:{f.max_len}" if f.type == "str" else f.type)
            for f in fields
        )
        self.fingerprint = zlib.crc32(repr(canonical).encode())
        fmt = "<"
        zero: list[Any] = []
        for field in fields:
            if field.type == "str":
                fmt += f"H{field.max_len}s"
                zero.append(0)
                zero.append(b"")
            else:
                fmt += _TYPE_FORMATS[field.type]
                zero.extend(_ZEROS[field.type])
        self.packer = struct.Struct(fmt)
        self.bitmap_size = (len(fields) + 7) // 8
        self.fixed_size = self.packer.size
        # Encode-time template: copied with ``list()`` per record so the
        # hot path never rebuilds the all-absent slot layout.
        self.zero_slots = tuple(zero)
        self.full_mask = (1 << len(fields)) - 1
        self.fast_decode = _compile_fast_decode(fields)
        self.fast_encode = _compile_fast_encode(fields)


def _bad_str_length(name: str, length: int, max_len: int) -> None:
    raise _corrupt(
        f"string field {name!r} claims {length} bytes, max is {max_len}"
    )


def _compile_fast_decode(
    fields: list[FieldSpec],
) -> Callable[[tuple[Any, ...], dict[str, Any]], None]:
    """Generate the every-field-present decoder for one schema.

    The generic decode loop pays a Python-level type dispatch per field
    per record; for the common case — every schema'd attribute packed —
    a purpose-built function with the field names and slot indexes baked
    in (the ``namedtuple`` technique) converts the whole record in
    straight-line code.  Field names appear only as ``repr`` string
    literals (dict keys), never as identifiers.
    """
    lines = ["def fast(slots, attrs):"]
    for f in fields:
        slot = f.slot
        if f.type == "str":
            lines.append(f"    length = slots[{slot}]")
            lines.append(
                f"    if length > {f.max_len}:"
                f" _bad({f.name!r}, length, {f.max_len})"
            )
            lines.append(
                f"    attrs[{f.name!r}] ="
                f" slots[{slot + 1}][:length].decode('utf-8')"
            )
        elif f.type == "oid":
            # The ``<Q`` slot is a non-negative int by construction, so
            # skip the dataclass ctor (and its redundant validation):
            # allocate + set the frozen slot directly.
            lines.append("    ref = _new(_Oid)")
            lines.append(f"    _set(ref, 'value', slots[{slot}])")
            lines.append(f"    attrs[{f.name!r}] = ref")
        elif f.type == "datetime":
            lines.append(
                f"    attrs[{f.name!r}] ="
                f" _DT_MIN + _td(microseconds=slots[{slot}] - _DAY)"
            )
        elif f.type == "bool":
            lines.append(f"    attrs[{f.name!r}] = slots[{slot}] != 0")
        else:
            lines.append(f"    attrs[{f.name!r}] = slots[{slot}]")
    namespace: dict[str, Any] = {
        "_Oid": Oid,
        "_new": object.__new__,
        "_set": object.__setattr__,
        "_DT_MIN": _DT_MIN,
        "_td": _dt.timedelta,
        "_DAY": _MICROS_PER_DAY,
        "_bad": _bad_str_length,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 - static codegen
    fast: Callable[[tuple[Any, ...], dict[str, Any]], None] = namespace[
        "fast"
    ]
    return fast


def _compile_fast_encode(
    fields: list[FieldSpec],
) -> Callable[..., tuple[int, dict[str, Any] | None]]:
    """Generate the attribute-walking encoder for one schema.

    Same technique as :func:`_compile_fast_decode`, applied to the write
    path: the per-attribute ``field_index`` lookup and the per-field type
    dispatch in ``_pack_field`` are baked into an ``if``/``elif`` chain
    over the schema's (interned) attribute names, with the slot indexes
    and bitmap masks as literals.  An attribute that matches a field name
    but fails its type/range check falls through to the dynamic region,
    exactly like the generic path.  Returns ``(bitmap, dynamic_or_None)``.
    """
    lines = [
        "def fast(items, slots, transient, encode_dynamic):",
        "    bitmap = 0",
        "    dynamic = None",
        "    for name, value in items:",
        # Schema fields can never be named ``_p_*`` (compile_schema
        # rejects them), so the bookkeeping-attr skip goes first.
        "        if name.startswith('_p_'):",
        "            continue",
    ]
    branch = "if"
    for f in fields:
        slot = f.slot
        lines.append(f"        {branch} name == {f.name!r}:")
        branch = "elif"
        if f.type == "str":
            lines.append(
                "            if value.__class__ is str"
                " and name not in transient:"
            )
            lines.append("                raw = value.encode('utf-8')")
            lines.append(f"                if len(raw) <= {f.max_len}:")
            lines.append(f"                    slots[{slot}] = len(raw)")
            lines.append(f"                    slots[{slot + 1}] = raw")
            lines.append(f"                    bitmap |= {f.mask}")
            lines.append("                    continue")
            continue
        if f.type == "int":
            lines.append(
                f"            if value.__class__ is int and"
                f" {_I64_MIN} <= value <= {_I64_MAX} and"
                f" name not in transient:"
            )
            lines.append(f"                slots[{slot}] = value")
        elif f.type == "float":
            lines.append(
                "            if value.__class__ is float"
                " and name not in transient:"
            )
            lines.append(f"                slots[{slot}] = value")
        elif f.type == "bool":
            lines.append(
                "            if value.__class__ is bool"
                " and name not in transient:"
            )
            lines.append(f"                slots[{slot}] = 1 if value else 0")
        elif f.type == "oid":
            lines.append(
                f"            if value.__class__ is _Oid and"
                f" 0 <= value.value <= {_U64_MAX} and"
                f" name not in transient:"
            )
            lines.append(f"                slots[{slot}] = value.value")
        else:  # datetime
            lines.append(
                "            if value.__class__ is _datetime and"
                " value.tzinfo is None and value.fold == 0 and"
                " name not in transient:"
            )
            lines.append(
                f"                slots[{slot}] ="
                f" value.toordinal() * {_MICROS_PER_DAY} +"
                " value.hour * 3600000000 +"
                " value.minute * 60000000 +"
                " value.second * 1000000 + value.microsecond"
            )
        lines.append(f"                bitmap |= {f.mask}")
        lines.append("                continue")
    lines.append("        if name in transient:")
    lines.append("            continue")
    lines.append("        if dynamic is None:")
    lines.append("            dynamic = {}")
    lines.append("        dynamic[name] = encode_dynamic(name, value)")
    lines.append("    return bitmap, dynamic")
    namespace: dict[str, Any] = {
        "_Oid": Oid,
        "_datetime": _dt.datetime,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 - static codegen
    fast: Callable[..., tuple[int, dict[str, Any] | None]] = namespace["fast"]
    return fast


def _parse_spec(name: str, spec: object) -> tuple[str, int]:
    if not isinstance(spec, str):
        raise SerializationError(
            f"_p_schema entry {name!r} must be a type-spec string, "
            f"got {type(spec).__name__}"
        )
    if spec in _TYPE_FORMATS:
        return spec, 0
    if spec.startswith("str:"):
        try:
            max_len = int(spec[4:])
        except ValueError:
            max_len = -1
        if max_len <= 0 or max_len > 0xFFFF:
            raise SerializationError(
                f"_p_schema entry {name!r}: bad string spec {spec!r}; "
                "expected 'str:<max-bytes>' with 1 <= max <= 65535"
            )
        return "str", max_len
    raise SerializationError(
        f"_p_schema entry {name!r}: unknown type spec {spec!r}; expected "
        "one of int, float, bool, oid, datetime, or str:<max-bytes>"
    )


def compile_schema(class_name: str, declared: Any) -> RecordSchema:
    """Compile a raw ``_p_schema`` declaration into a :class:`RecordSchema`.

    ``declared`` is a mapping (or sequence of pairs) of attribute name to
    type spec; declaration order fixes the physical layout.
    """
    if hasattr(declared, "items"):
        pairs = list(declared.items())
    else:
        try:
            pairs = [(name, spec) for name, spec in declared]
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"_p_schema of {class_name} must be a mapping or a "
                f"sequence of (name, spec) pairs: {exc}"
            ) from exc
    if not pairs:
        raise SerializationError(
            f"_p_schema of {class_name} is empty; omit it instead"
        )
    fields: list[FieldSpec] = []
    slot = 0
    seen: set[str] = set()
    for name, spec in pairs:
        if not isinstance(name, str) or not name or name.startswith("_p_"):
            raise SerializationError(
                f"_p_schema of {class_name}: invalid attribute name {name!r}"
            )
        if name in seen:
            raise SerializationError(
                f"_p_schema of {class_name}: duplicate attribute {name!r}"
            )
        seen.add(name)
        type_, max_len = _parse_spec(name, spec)
        fields.append(FieldSpec(name, type_, max_len, slot, len(fields)))
        slot += _SLOTS_PER_TYPE[type_]
    return RecordSchema(class_name, fields)


# Compiled-schema cache, keyed by class.  ``None`` marks classes without a
# schema so the lookup is one dict hit on the hot path either way.
_schema_cache: dict[type[Any], RecordSchema | None] = {}


def schema_for(cls: type[Any]) -> RecordSchema | None:
    """The compiled schema of ``cls`` (inherited declarations included)."""
    cached = _schema_cache.get(cls, False)
    if cached is not False:
        return cached  # type: ignore[return-value]
    declared = getattr(cls, "_p_schema", None)
    schema: RecordSchema | None = None
    if declared is not None:
        class_name = getattr(cls, "_p_class_name", cls.__name__)
        schema = compile_schema(class_name, declared)
    _schema_cache[cls] = schema
    return schema


def _clear_schema_cache() -> None:
    """Testing aid: forget compiled schemas (e.g. after class redefinition)."""
    _schema_cache.clear()


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_packed(
    oid_value: int,
    obj: Any,
    schema: RecordSchema,
    transient: frozenset[str],
    encode_dynamic: Callable[[str, Any], Any],
) -> bytes:
    """Encode ``obj`` into a packed record payload.

    ``encode_dynamic(name, value)`` must return the tagged-JSON form of a
    value that cannot be packed (it is the serializer's ``encode_value``
    with error context added) — persistence by reachability happens there.
    """
    slots = list(schema.zero_slots)
    bitmap, dynamic = schema.fast_encode(
        vars(obj).items(), slots, transient, encode_dynamic
    )
    if dynamic is not None:
        dyn_bytes = _ENCODER.encode(dynamic).encode()
    else:
        dyn_bytes = b""
    class_bytes = schema.class_bytes
    body = b"".join(
        (
            _OID_NAME.pack(oid_value, len(class_bytes)),
            class_bytes,
            bitmap.to_bytes(schema.bitmap_size, "little"),
            schema.packer.pack(*slots),
            _DYN_LEN.pack(len(dyn_bytes)),
            dyn_bytes,
        )
    )
    head = _HEAD.pack(
        PACKED_FORMAT,
        _CODEC_VERSION,
        schema.fingerprint,
        zlib.crc32(body),
    )
    return head + body


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def is_packed(payload: bytes) -> bool:
    """True when ``payload`` is in the packed format (vs legacy JSON)."""
    return bool(payload) and payload[0] == PACKED_FORMAT


def _corrupt(reason: str) -> SerializationError:
    return SerializationError(f"corrupt packed record: {reason}")


def _parse_header(payload: bytes) -> tuple[int, int, int, str, int]:
    """``(fingerprint, body_crc, oid, class_name, offset_after_name)``."""
    if len(payload) < _HEADER.size:
        raise _corrupt(
            f"truncated header ({len(payload)} < {_HEADER.size} bytes)"
        )
    tag, version, fingerprint, body_crc, oid_value, name_len = _HEADER.unpack_from(
        payload
    )
    if tag != PACKED_FORMAT:
        raise _corrupt(f"bad format tag 0x{tag:02x}")
    if version != _CODEC_VERSION:
        raise _corrupt(f"unsupported codec version {version}")
    offset = _HEADER.size
    if len(payload) < offset + name_len:
        raise _corrupt("truncated class name")
    try:
        class_name = payload[offset : offset + name_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise _corrupt(f"undecodable class name: {exc}") from None
    return fingerprint, body_crc, oid_value, class_name, offset + name_len


def _check_body(payload: bytes, body_crc: int) -> None:
    # The body starts right after the fixed header prefix (tag, version,
    # fingerprint, crc) — i.e. at the oid field.
    if zlib.crc32(payload[_BODY_OFFSET:]) != body_crc:
        raise _corrupt("body checksum mismatch (bit rot or truncation)")


def record_meta(payload: bytes) -> tuple[int, str]:
    """``(oid, class_name)`` of a record in either format, cheaply.

    Packed records answer from the header alone; JSON records pay one
    ``json.loads``.  Open-time scans use this so rebuilding the OID map
    and the extents never decodes packed attribute data.
    """
    if is_packed(payload):
        _fingerprint, body_crc, oid_value, class_name, _ = _parse_header(payload)
        _check_body(payload, body_crc)
        return oid_value, class_name
    try:
        record = json.loads(payload.decode())
        return record["oid"], record["class"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SerializationError(f"corrupt record payload: {exc}") from exc


def decode_packed(
    payload: bytes, class_for_name: Callable[[str], type[Any]]
) -> dict[str, Any]:
    """Decode a packed payload into a record dict.

    The result has the same shape as a decoded JSON record —
    ``{"oid": ..., "class": ..., "attrs": {...}}`` — except that packed
    fields appear as live values (``int``/``float``/``bool``/``str``/
    :class:`Oid`/naive ``datetime``) rather than tagged forms.  Dynamic
    attributes keep their tagged-JSON encoding; the serializer's
    ``decode_object`` handles both.
    """
    # Header parsing is inlined (vs delegating to ``_parse_header``) —
    # this function is the per-record read hot path.
    if len(payload) < _HEADER.size:
        raise _corrupt(
            f"truncated header ({len(payload)} < {_HEADER.size} bytes)"
        )
    tag, version, fingerprint, body_crc, oid_value, name_len = _HEADER.unpack_from(
        payload
    )
    if tag != PACKED_FORMAT:
        raise _corrupt(f"bad format tag 0x{tag:02x}")
    if version != _CODEC_VERSION:
        raise _corrupt(f"unsupported codec version {version}")
    offset = _HEADER.size + name_len
    if len(payload) < offset:
        raise _corrupt("truncated class name")
    if zlib.crc32(payload[_BODY_OFFSET:]) != body_crc:
        raise _corrupt("body checksum mismatch (bit rot or truncation)")
    try:
        class_name = payload[_HEADER.size : offset].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise _corrupt(f"undecodable class name: {exc}") from None
    cls = class_for_name(class_name)
    schema = schema_for(cls)
    if schema is None:
        raise SerializationError(
            f"packed record for {class_name} but the class declares no "
            "_p_schema; restore the schema declaration to read this store"
        )
    if schema.fingerprint != fingerprint:
        raise SerializationError(
            f"packed record fingerprint mismatch for {class_name}: the "
            "stored layout differs from the class's current _p_schema "
            "(changing a schema on a non-empty store is not supported)"
        )
    bitmap_end = offset + schema.bitmap_size
    fixed_end = bitmap_end + schema.fixed_size
    if len(payload) < fixed_end + _DYN_LEN.size:
        raise _corrupt("truncated fixed region")
    bitmap = int.from_bytes(payload[offset:bitmap_end], "little")
    try:
        slots = schema.packer.unpack_from(payload, bitmap_end)
    except struct.error as exc:  # pragma: no cover - length checked above
        raise _corrupt(str(exc)) from None
    (dyn_len,) = _DYN_LEN.unpack_from(payload, fixed_end)
    dyn_start = fixed_end + _DYN_LEN.size
    if len(payload) != dyn_start + dyn_len:
        raise _corrupt(
            f"dynamic region length mismatch "
            f"({len(payload) - dyn_start} != {dyn_len} bytes)"
        )
    attrs: dict[str, Any] = {}
    if dyn_len:
        try:
            attrs = json.loads(payload[dyn_start:].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _corrupt(f"undecodable dynamic region: {exc}") from None
    if bitmap == schema.full_mask:
        schema.fast_decode(slots, attrs)
        if not dyn_len:
            # Every attribute came out of the fixed region, so every
            # value is live by construction (scalar/str/Oid/datetime,
            # nothing tagged): materialization may bulk-assign without
            # inspecting a single value.
            return {
                "oid": oid_value,
                "class": class_name,
                "attrs": attrs,
                "live": True,
            }
        return {"oid": oid_value, "class": class_name, "attrs": attrs}
    for field in schema.fields:
        if not bitmap & field.mask:
            continue
        slot = field.slot
        type_ = field.type
        if type_ == "str":
            length = slots[slot]
            raw = slots[slot + 1]
            if length > field.max_len:
                raise _corrupt(
                    f"string field {field.name!r} claims {length} bytes, "
                    f"max is {field.max_len}"
                )
            attrs[field.name] = raw[:length].decode("utf-8")
        elif type_ == "oid":
            attrs[field.name] = Oid(slots[slot])
        elif type_ == "datetime":
            # Ordinal 1 is 0001-01-01, so the proleptic offset is one day.
            attrs[field.name] = _DT_MIN + _dt.timedelta(
                microseconds=slots[slot] - _MICROS_PER_DAY
            )
        elif type_ == "bool":
            attrs[field.name] = bool(slots[slot])
        else:
            attrs[field.name] = slots[slot]
    return {"oid": oid_value, "class": class_name, "attrs": attrs}


# ----------------------------------------------------------------------
# JSON sanitization (WAL undo images, inspect tooling)
# ----------------------------------------------------------------------
def jsonable_record(record: dict[str, Any]) -> dict[str, Any]:
    """A JSON-safe copy of a decoded record.

    Packed decode leaves :class:`Oid` and ``datetime`` instances at the
    top level of ``attrs``; WAL undo images must be JSON.  Converts them
    back to their tagged forms (``$oid`` / ``$datetime``), leaving
    everything else alone.  Returns the input unchanged (not copied)
    when no conversion is needed.
    """
    attrs = record.get("attrs")
    if not isinstance(attrs, dict):
        return record
    converted: dict[str, Any] | None = None
    for name, value in attrs.items():
        kind = value.__class__
        if kind is Oid:
            fixed: Any = {"$oid": value.value}
        elif kind is _dt.datetime:
            fixed = {"$datetime": value.isoformat()}
        else:
            continue
        if converted is None:
            converted = dict(attrs)
        converted[name] = fixed
    if converted is None and "live" not in record:
        return record
    out = dict(record)
    # The "live" marker means "attrs hold live values"; it must not
    # survive into a JSON image whose attrs are tagged again.
    out.pop("live", None)
    if converted is not None:
        out["attrs"] = converted
    return out
