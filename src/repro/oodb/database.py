"""The database façade.

:class:`Database` is the substrate the paper builds Sentinel on — our
stand-in for Zeitgeist.  It wires together the buffer pool, heap file,
write-ahead log, serializer, class registry, extents, indexes, locks, and
transaction manager, and exposes the object-store surface that the Sentinel
layer (and applications) use:

* ``add`` / ``fetch`` / ``delete`` persistent objects,
* ``transaction()`` / ``begin`` / ``commit`` / ``abort``,
* named roots (persistence by reachability from roots, Zeitgeist-style),
* ``query(Class)`` over class extents,
* ``create_index`` for attribute indexes,
* crash recovery on open, ``checkpoint`` to truncate the log.

Databases can also run fully in memory (``path=None``): the same code paths
minus the disk, which is what the event/rule benchmarks use so that storage
I/O does not drown out the costs the paper reasons about.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from ..obs.metrics import metrics
from . import codec
from .buffer import BufferPool
from .errors import (
    DatabaseClosed,
    ObjectNotFound,
    OODBError,
    SerializationError,
    TransactionAborted,
    TransactionError,
)
from .index import IndexDefinition, IndexManager
from .locks import LockManager, LockMode
from .oid import NULL_OID, Oid, OidAllocator
from .query import Query
from .recovery import RecoveryReport, replay
from .schema import ClassRegistry, Extents, Persistent, global_registry
from .serializer import Serializer
from .storage.heap import HeapFile, RecordId
from .storage.wal import WriteAheadLog
from .transactions import Transaction, TransactionManager
from .versions import VersionStore

__all__ = ["Database", "RootMap", "Snapshot"]

_MISSING = object()


class RootMap(Persistent):
    """The named-roots object: a persistent dictionary of name → object."""

    def __init__(self) -> None:
        super().__init__()
        self.entries: dict[str, Any] = {}


class Database:
    """An object database with ACID transactions and crash recovery.

    Parameters
    ----------
    path:
        Directory for the data files, or ``None`` for a purely in-memory
        database (no WAL, no heap; transactions still roll back correctly).
    registry:
        Class registry to decode records with; defaults to the process-wide
        registry.
    sync:
        Whether commits fsync the WAL (durability vs. speed).
    fsync:
        Finer-grained fsync policy (``"commit"``, ``"always"`` or
        ``"never"``, see :data:`~repro.oodb.storage.wal.FSYNC_POLICIES`);
        overrides ``sync`` when given.
    group_commit:
        Log each transaction as one batched WAL write (default) instead of
        one write per record.  Same bytes on disk either way; the knob
        exists so recovery can be exercised against both paths.
    locking:
        Whether to acquire per-object locks (needed only for multithreaded
        use; single-threaded benchmarks leave it off).  With locking on,
        every transactional read S-locks and every write X-locks its
        object (strict 2PL, released at commit/abort), and the database's
        shared structures (identity map, extents, indexes, locations) are
        guarded by an internal state lock.

    Concurrency model (see DESIGN.md "Concurrency model" for the full
    matrix): writers isolate through strict 2PL; read-only work can
    instead run inside ``with db.snapshot():`` — an MVCC snapshot pinned
    to the commit-timestamp watermark, serving detached copies from a
    small version store of pre-images, taking **no object locks** and
    never blocking (or being blocked by) writers.  Lock order, outermost
    first: 2PL object locks → ``_state_lock`` → heap lock → buffer-pool
    lock; 2PL locks are never requested while an internal mutex is held.
    """

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        *,
        registry: ClassRegistry | None = None,
        sync: bool = True,
        fsync: str | None = None,
        group_commit: bool = True,
        locking: bool = False,
        buffer_capacity: int = 256,
        profile_queries: bool = False,
    ) -> None:
        self.registry = registry or global_registry
        # The catalog's own classes must decode regardless of which
        # registry the application supplies.
        self.registry.register(RootMap)
        self.locking = locking
        self.group_commit = group_commit
        #: When True every query executes through the instrumented
        #: pipeline (see ``Query.explain(analyze=True)``); the most
        #: recent evidence is kept on :attr:`last_query_profile`.
        self.profile_queries = profile_queries
        #: The ``AnalyzedPlan`` of the last profiled query execution.
        self.last_query_profile: Any | None = None
        self.locks = LockManager()
        self.extents = Extents(self.registry)
        self.indexes = IndexManager(self.registry.family)
        self.serializer = Serializer(self)
        self.txn_manager = TransactionManager(self)
        self.allocator = OidAllocator()
        self._cache: dict[Oid, Persistent] = {}
        self._locations: dict[Oid, RecordId] = {}
        self._closed = False
        self._root_map: RootMap | None = None
        # Guards shared structure mutation (cache registration, extents,
        # indexes, locations, commit apply, checkpoint) and the MVCC
        # watermark.  Re-entrant; never held across a 2PL lock acquire,
        # an fsync, or attribute decoding.
        self._state_lock = threading.RLock()
        # Checkpoint gate: commits register while their WAL-log + apply
        # phases run; a checkpoint stalls new commits and waits the
        # in-flight ones out before truncating the log.
        self._ckpt_gate = threading.Condition(threading.Lock())
        self._commits_in_flight = 0
        self._checkpointing = False
        #: Commit-timestamp watermark: bumped (last) by every commit that
        #: writes, read by snapshots.  Monotonic per database.
        self._commit_ts = 0
        #: Pre-image store for MVCC snapshot reads (empty unless a
        #: snapshot is open).
        self.versions = VersionStore()
        self._snap_local = threading.local()
        # Fast fetch-path guard: nonzero only while any snapshot is open
        # anywhere in the process, so the common path pays one int check.
        self._snapshots_active = 0

        self._in_memory = path is None
        if self._in_memory:
            self._dir = None
            self._pool = None
            self._heap = None
            self._wal = None
            self._memory_records: dict[Oid, bytes] = {}
            self.last_recovery: RecoveryReport | None = None
        else:
            self._dir = os.fspath(path)
            os.makedirs(self._dir, exist_ok=True)
            self._pool = BufferPool(capacity=buffer_capacity)
            self._heap = HeapFile(os.path.join(self._dir, "data.heap"), self._pool)
            # Concurrent databases get the dedicated WAL-syncer thread:
            # committers publish a target LSN and overlap their CPU work
            # with the daemon's back-to-back fsyncs (async group commit).
            # Single-threaded databases keep the cheaper inline
            # leader-follower fsync — no handoff, no extra thread.
            self._wal = WriteAheadLog(
                os.path.join(self._dir, "wal.log"),
                sync=sync,
                fsync_policy=fsync,
                syncer=locking,
            )
            self._memory_records = {}
            self.last_recovery = self._recover_and_load()

    @property
    def wal(self) -> "WriteAheadLog | None":
        """The write-ahead log (None for in-memory databases).

        Public so health checks (``repro.obs.exporter.build_checks``)
        and diagnostics (``repro.tools.doctor``) can probe WAL
        writability without reaching into privates.
        """
        return self._wal

    # ------------------------------------------------------------------
    # Open-time recovery and loading
    # ------------------------------------------------------------------
    def _meta_path(self) -> str:
        assert self._dir is not None
        return os.path.join(self._dir, "meta.json")

    def _recover_and_load(self) -> RecoveryReport:
        assert self._heap is not None and self._wal is not None
        # 1. Rebuild the OID -> record-id map from the heap.  One scan
        # collects locations *and* class names: ``codec.record_meta``
        # peeks the fixed header of packed records and parses JSON ones,
        # so open never decodes packed attribute data.
        max_oid = 0
        classes: dict[Oid, str] = {}
        for rid, payload in self._heap.scan():
            oid_value, class_name = codec.record_meta(payload)
            oid = Oid(oid_value)
            self._locations[oid] = rid
            classes[oid] = class_name
            max_oid = max(max_oid, oid_value)

        # 2. Replay the WAL over the heap (idempotent upserts), keeping
        # the class map in step with inserts and deletes.
        report = replay(
            self._wal,
            lambda oid_value, redo: self._apply_recovered_update(
                oid_value, redo, classes
            ),
        )
        max_oid = max(max_oid, report.max_oid_seen)

        # 3. Load the catalog (allocator high-water mark, roots, indexes).
        meta: dict[str, Any] = {}
        if os.path.exists(self._meta_path()):
            with open(self._meta_path()) as handle:
                meta = json.load(handle)
        self.allocator = OidAllocator(max(meta.get("allocator", 1), max_oid + 1))

        # 4. Rebuild extents from the post-replay class map.
        for oid, class_name in classes.items():
            if oid in self._locations and class_name in self.registry:
                self.extents.add(class_name, oid)

        # 5. Recreate and rebuild indexes.
        for entry in meta.get("indexes", []):
            self.indexes.create(IndexDefinition(**entry))
        self._rebuild_indexes()

        # 6. Reattach the root map.  The catalog pointer is preferred, but
        # after a crash that preceded any checkpoint the meta file may not
        # exist yet — fall back to the RootMap class extent.
        root_oid = meta.get("root_oid")
        if not root_oid:
            extent = self.extents.of("RootMap", include_subclasses=False)
            root_oid = min(extent).value if extent else None
        if root_oid:
            try:
                self._root_map = self.fetch(Oid(root_oid))  # type: ignore[assignment]
            except ObjectNotFound:
                self._root_map = None

        # 7. Make the redone state durable and truncate the log.
        if not report.clean:
            self.checkpoint()
        return report

    def _apply_recovered_update(
        self,
        oid_value: int,
        redo: dict[str, Any] | bytes | None,
        classes: dict[Oid, str] | None = None,
    ) -> None:
        assert self._heap is not None
        oid = Oid(oid_value)
        rid = self._locations.get(oid)
        if redo is None:
            if rid is not None:
                self._heap.delete(rid)
                del self._locations[oid]
            if classes is not None:
                classes.pop(oid, None)
            return
        if isinstance(redo, bytes):
            # Binary WAL entry: the redo image *is* the packed heap
            # payload — write it back verbatim.
            payload = redo
            class_name = codec.record_meta(payload)[1]
        else:
            payload = Serializer.record_to_bytes({"oid": oid.value, **redo})
            class_name = redo["class"]
        if rid is None:
            self._locations[oid] = self._heap.insert(payload)
        else:
            self._locations[oid] = self._heap.update(rid, payload)
        if classes is not None:
            classes[oid] = class_name

    def _rebuild_indexes(self) -> None:
        self.indexes.clear()
        for definition in self.indexes.definitions():
            for oid in self.extents.of(definition.class_name):
                obj = self.fetch(oid)
                self.indexes.on_add(
                    type(obj)._p_class_name,  # type: ignore[attr-defined]
                    oid,
                    _plain_attrs(obj),
                )

    # ------------------------------------------------------------------
    # Serializer resolver protocol
    # ------------------------------------------------------------------
    def resolve_reference(self, oid: Oid) -> Persistent:
        return self.fetch(oid)

    def reference_for(self, obj: Any) -> Oid | None:
        if not isinstance(obj, Persistent):
            return None
        if obj._p_db is None:
            # Persistence by reachability: storing a reference to a
            # transient persistent-capable object pulls it into the store.
            self.add(obj)
        elif obj._p_db is not self:
            raise SerializationError(
                f"{obj!r} belongs to a different database"
            )
        assert obj._p_oid is not None
        return obj._p_oid

    def class_for_name(self, name: str) -> type:
        return self.registry.get(name)

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------
    def add(self, obj: Persistent) -> Oid:
        """Make ``obj`` persistent: allocate an OID and track its creation."""
        self._require_open()
        if not isinstance(obj, Persistent):
            raise TypeError(
                f"only Persistent instances can be stored, got "
                f"{type(obj).__name__}"
            )
        if obj._p_db is self:
            assert obj._p_oid is not None
            return obj._p_oid
        if obj._p_db is not None:
            raise SerializationError(f"{obj!r} belongs to a different database")
        txn = self.txn_manager.ensure_current()
        oid = self.allocator.allocate()
        object.__setattr__(obj, "_p_oid", oid)
        object.__setattr__(obj, "_p_db", self)
        class_name = type(obj)._p_class_name  # type: ignore[attr-defined]
        if self.locking:
            self.locks.acquire(txn.id, oid, LockMode.EXCLUSIVE)
            with self._state_lock:
                self._cache[oid] = obj
                self.extents.add(class_name, oid)
                if self.indexes.covers(class_name):
                    self.indexes.on_add(class_name, oid, _plain_attrs(obj))
        else:
            self._cache[oid] = obj
            self.extents.add(class_name, oid)
            if self.indexes.covers(class_name):
                self.indexes.on_add(class_name, oid, _plain_attrs(obj))
        txn.note_created(obj)
        return oid

    def fetch(self, oid: Oid) -> Persistent:
        """Return the object identified by ``oid`` (identity-map semantics).

        Inside ``with db.snapshot():`` the read is served from the
        snapshot instead — a detached copy of the committed state at the
        snapshot's watermark, with no lock taken.  With locking on and a
        transaction active, the read S-locks ``oid`` first (strict 2PL).
        """
        self._require_open()
        if oid == NULL_OID:
            raise ObjectNotFound(oid)
        if self._snapshots_active:
            snap = self._ambient_snapshot()
            if snap is not None:
                return snap.fetch(oid)
        if self.locking:
            txn = self.txn_manager.current
            if txn is not None:
                self.locks.acquire(txn.id, oid, LockMode.SHARED)
        cached = self._cache.get(oid)
        if cached is not None:
            return cached
        record = self._stored_record(oid)
        if record is None:
            raise ObjectNotFound(oid)
        return self._materialize(oid, record)

    def _materialize(self, oid: Oid, record: dict[str, Any]) -> Persistent:
        """Decode ``record`` into a live cached instance for ``oid``."""
        cached = self._cache.get(oid)
        if cached is not None:
            # A reference cycle in an earlier batch entry already pulled
            # this object in; keep identity-map semantics.
            return cached
        cls = self.registry.get(record["class"])
        obj: Persistent = cls.__new__(cls)
        object.__setattr__(obj, "_p_oid", oid)
        object.__setattr__(obj, "_p_db", self)
        # Register before decoding attributes so reference cycles resolve.
        # Under locking, the registration double-checks inside the state
        # lock so two threads cold-fetching the same OID cannot install
        # two distinct live instances (split identity); decoding happens
        # outside the lock because it may recursively fetch references.
        if self.locking:
            with self._state_lock:
                cached = self._cache.get(oid)
                if cached is not None:
                    return cached
                self._cache[oid] = obj
        else:
            self._cache[oid] = obj
        self.serializer.decode_object(record, obj)
        # Give the object a chance to restore transient wiring (e.g.
        # composite events re-attach themselves as listeners on children).
        after_load = getattr(obj, "_p_after_load", None)
        if after_load is not None:
            after_load()
        return obj

    def fetch_many(self, oids: "list[Oid]") -> "list[Persistent]":
        """Fetch a batch of objects, clustered by heap page.

        Cache hits are served directly; the misses are sorted by
        ``(page, slot)`` and read through :meth:`HeapFile.read_many`, which
        pins each page once and reads runs of consecutive pages ahead.
        Returns the objects in the order the OIDs were given (duplicates
        allowed); raises :class:`ObjectNotFound` like :meth:`fetch`.
        """
        self._require_open()
        if self._snapshots_active:
            snap = self._ambient_snapshot()
            if snap is not None:
                return [snap.fetch(oid) for oid in oids]
        if self.locking:
            txn = self.txn_manager.current
            if txn is not None:
                for oid in dict.fromkeys(oids):
                    self.locks.acquire(txn.id, oid, LockMode.SHARED)
        misses: list[Oid] = []
        seen: set[Oid] = set()
        for oid in oids:
            if oid not in self._cache and oid not in seen:
                seen.add(oid)
                misses.append(oid)
        if misses:
            if self._in_memory or self._heap is None:
                for oid in misses:
                    self.fetch(oid)
            else:
                located: list[tuple[RecordId, Oid]] = []
                for oid in misses:
                    if oid == NULL_OID:
                        raise ObjectNotFound(oid)
                    rid = self._locations.get(oid)
                    if rid is None:
                        raise ObjectNotFound(oid)
                    located.append((rid, oid))
                located.sort()
                payloads = self._heap.read_many([rid for rid, _ in located])
                metrics.counter("fetch_many_page_pins").inc(
                    len({rid.page for rid, _ in located})
                )
                for rid, oid in located:
                    self._materialize(
                        oid, self.serializer.record_from_payload(payloads[rid])
                    )
        return [self.fetch(oid) for oid in oids]

    def delete(self, obj: Persistent) -> None:
        """Remove ``obj`` from the store (undone if the txn aborts)."""
        self._require_open()
        if obj._p_db is not self or obj._p_oid is None:
            raise ObjectNotFound(getattr(obj, "_p_oid", None))
        txn = self.txn_manager.ensure_current()
        oid = obj._p_oid
        class_name = type(obj)._p_class_name  # type: ignore[attr-defined]
        if self.locking:
            self.locks.acquire(txn.id, oid, LockMode.EXCLUSIVE)
            txn.note_deleted(obj)
            with self._state_lock:
                self.extents.remove(class_name, oid)
                self.indexes.on_remove(class_name, oid)
                self._cache.pop(oid, None)
        else:
            txn.note_deleted(obj)
            self.extents.remove(class_name, oid)
            self.indexes.on_remove(class_name, oid)
            self._cache.pop(oid, None)

    def contains(self, oid: Oid) -> bool:
        return oid in self._cache or self._stored_record(oid) is not None

    def _stored_record(self, oid: Oid) -> dict[str, Any] | None:
        if self._in_memory:
            payload = self._memory_records.get(oid)
            if payload is None:
                return None
            return self.serializer.record_from_payload(payload)
        rid = self._locations.get(oid)
        if rid is None:
            return None
        assert self._heap is not None
        return self.serializer.record_from_payload(self._heap.read(rid))

    # ------------------------------------------------------------------
    # Change-tracking hooks (called from Persistent.__setattr__)
    # ------------------------------------------------------------------
    def _before_modify(self, obj: Persistent) -> None:
        if self._closed:
            raise DatabaseClosed("database is closed")
        txn = self.txn_manager.ensure_current()
        if txn._restoring:
            return
        assert obj._p_oid is not None
        if self.locking:
            self.locks.acquire(txn.id, obj._p_oid, LockMode.EXCLUSIVE)
        txn.note_modified(obj)

    def _after_modify(
        self, obj: Persistent, name: str, old: Any, new: Any
    ) -> None:
        assert obj._p_oid is not None
        if self.locking:
            # Index structures are shared; a concurrent query collecting
            # candidates holds the same lock.
            with self._state_lock:
                self.indexes.on_update(
                    type(obj)._p_class_name,  # type: ignore[attr-defined]
                    obj._p_oid,
                    name,
                    new,
                )
        else:
            self.indexes.on_update(
                type(obj)._p_class_name,  # type: ignore[attr-defined]
                obj._p_oid,
                name,
                new,
            )

    def _current_record(self, oid: Oid) -> dict[str, Any] | None:
        """Before image for undo: last committed state, from storage."""
        record = self._stored_record(oid)
        if record is None:
            return None
        record.pop("oid", None)
        return record

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        self._require_open()
        return self.txn_manager.begin()

    def commit(self) -> None:
        """Commit the current (explicit or implicit) transaction."""
        txn = self.txn_manager.current
        if txn is None:
            return
        self.txn_manager.commit(txn)

    def abort(self) -> None:
        """Roll back the current transaction (no-op when none is active)."""
        txn = self.txn_manager.current
        if txn is not None:
            self.txn_manager.rollback(txn)

    @property
    def current_transaction(self) -> Transaction | None:
        return self.txn_manager.current

    def lock_for_update(self, obj: Persistent) -> None:
        """Take the exclusive lock on ``obj`` *before* reading it.

        Read-modify-write sequences (``obj.n += 1``) read without a lock;
        under concurrency two transactions can both read the old value
        and lose an update.  Calling this first (the ``SELECT ... FOR
        UPDATE`` idiom) serializes the whole sequence.  No-op when
        locking is disabled.
        """
        if not self.locking:
            return
        if obj._p_db is not self or obj._p_oid is None:
            raise ObjectNotFound(getattr(obj, "_p_oid", None))
        txn = self.txn_manager.ensure_current()
        self.locks.acquire(txn.id, obj._p_oid, LockMode.EXCLUSIVE)

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """``with db.transaction():`` — commit on success, abort on error.

        :class:`TransactionAborted` raised inside (e.g. by a rule's abort
        action) propagates to the caller after rollback.
        """
        txn = self.begin()
        try:
            yield txn
        except TransactionAborted:
            self.txn_manager.rollback(txn)
            raise
        except BaseException:
            self.txn_manager.rollback(txn)
            raise
        else:
            self.txn_manager.commit(txn)

    def run_transaction(
        self,
        fn: "Callable[[], Any]",
        *,
        attempts: int = 5,
        backoff: float = 0.002,
    ) -> Any:
        """Run ``fn`` inside a transaction, retrying retryable aborts.

        Deadlock victims and lock timeouts surface as :class:`LockError`
        subclasses with ``retryable = True``; their transaction rolled
        back cleanly, so the work is rerun in a fresh transaction after a
        short linear backoff, up to ``attempts`` times.  Non-retryable
        errors propagate immediately.  Returns whatever ``fn`` returned
        on the attempt that committed; raises the last retryable error
        when every attempt loses.
        """
        self._require_open()
        last: OODBError | None = None
        for attempt in range(attempts):
            try:
                with self.transaction():
                    return fn()
            except OODBError as exc:
                if not exc.retryable:
                    raise
                last = exc
                metrics.counter("txn_retries").inc()
                if attempt + 1 < attempts:
                    time.sleep(backoff * (attempt + 1))
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    # MVCC snapshot reads
    # ------------------------------------------------------------------
    @contextmanager
    def snapshot(self) -> "Iterator[Snapshot]":
        """``with db.snapshot() as snap:`` — a frozen, lock-free read view.

        Reads inside the block (``db.fetch``/``db.query`` on this thread,
        or ``snap.fetch`` directly) see the committed state as of the
        moment the block was entered.  They never touch the lock manager,
        so they cannot block — or be blocked by — concurrent writers.
        Objects come back as *detached copies* (``obj._p_db is None``):
        mutating one changes nothing in the store.
        """
        snap = self.begin_snapshot()
        try:
            yield snap
        finally:
            self.end_snapshot(snap)

    def begin_snapshot(self) -> "Snapshot":
        """Open a snapshot explicitly (prefer ``with db.snapshot():``).

        The snapshot becomes the thread's *ambient* read context:
        ``fetch``/``fetch_many`` (and queries built on them) on this
        thread are served from it until :meth:`end_snapshot`.
        """
        self._require_open()
        with self._state_lock:
            # Atomic with a committing writer: either the snapshot starts
            # before the commit's publish (and resolves its pre-images)
            # or after its watermark bump (and reads its results).
            ts = self._commit_ts
            self.versions.register(ts)
            self._snapshots_active += 1
        snap = Snapshot(self, ts)
        stack = getattr(self._snap_local, "stack", None)
        if stack is None:
            stack = []
            self._snap_local.stack = stack
        stack.append(snap)
        return snap

    def end_snapshot(self, snap: "Snapshot") -> None:
        """Close ``snap``: drop the ambient binding, prune old versions."""
        if snap._closed:
            return
        snap._closed = True
        stack = getattr(self._snap_local, "stack", None)
        if stack and snap in stack:
            stack.remove(snap)
        with self._state_lock:
            self._snapshots_active -= 1
        self.versions.unregister(snap.ts)

    def _ambient_snapshot(self) -> "Snapshot | None":
        stack = getattr(self._snap_local, "stack", None)
        if stack:
            snap: Snapshot = stack[-1]
            return snap
        return None

    # ------------------------------------------------------------------
    # Commit/rollback application (called by the TransactionManager)
    # ------------------------------------------------------------------
    def _apply_commit(self, txn: Transaction) -> None:
        # Serializing touched objects can pull in newly-reachable objects
        # (persistence by reachability), so iterate to a fixed point.
        # Each record is encoded exactly once — classes with a ``_p_schema``
        # to their packed binary payload, the rest to a JSON string — and
        # the WAL and the heap both reuse the encoded form.
        payloads: dict[Oid, bytes] = {}
        wal_redo: dict[Oid, str | bytes] = {}
        while True:
            pending = [
                (oid, obj)
                for oid, obj in txn._touched.items()
                if oid not in payloads
            ]
            if not pending:
                break
            for oid, obj in pending:
                schema = codec.schema_for(type(obj))
                if schema is not None:
                    packed = self.serializer.encode_packed_payload(
                        oid.value, obj, schema
                    )
                    payloads[oid] = packed
                    wal_redo[oid] = packed
                else:
                    record = self.serializer.encode_object(obj)
                    encoded = Serializer.record_to_json(record)
                    payloads[oid] = Serializer.record_with_oid(oid.value, encoded)
                    wal_redo[oid] = encoded

        if not payloads and not txn._deleted:
            return

        # A checkpoint truncates the WAL; a commit that has logged but not
        # yet applied to the heap must not have its records truncated away.
        # The gate keeps a commit's two phases (WAL append+sync, store
        # apply) atomic with respect to checkpoints while leaving commits
        # free to overlap *each other* — group commit batches their fsyncs.
        with self._ckpt_gate:
            while self._checkpointing:
                self._ckpt_gate.wait()
            self._commits_in_flight += 1
        try:
            self._log_commit_wal(txn, payloads, wal_redo)
            self._apply_commit_store(txn, payloads)
        finally:
            with self._ckpt_gate:
                self._commits_in_flight -= 1
                if not self._commits_in_flight:
                    self._ckpt_gate.notify_all()

    def _log_commit_wal(
        self,
        txn: Transaction,
        payloads: "dict[Oid, bytes]",
        wal_redo: "dict[Oid, str | bytes]",
    ) -> None:
        if self._wal is not None:
            # Undo images of packed records carry live Oid/datetime
            # values; the log is JSON, so convert them to tagged form.
            # (Recovery is redo-only — the undo image is informational.)
            undo = {
                oid: None if before is None else codec.jsonable_record(before)
                for oid, before in txn._undo.items()
            }
            if self.group_commit:
                updates: list[Any] = [
                    (oid.value, undo.get(oid), wal_redo[oid]) for oid in payloads
                ]
                updates.extend(
                    (oid.value, undo.get(oid), None) for oid in txn._deleted
                )
                self._wal.log_transaction(txn.id, updates)
            else:
                self._wal.log_begin(txn.id)
                for oid in payloads:
                    self._wal.log_update(
                        txn.id, oid.value, undo.get(oid), wal_redo[oid]
                    )
                for oid in txn._deleted:
                    self._wal.log_update(txn.id, oid.value, undo.get(oid), None)
                self._wal.log_commit(txn.id)

    def _apply_commit_store(
        self, txn: Transaction, payloads: "dict[Oid, bytes]"
    ) -> None:
        # Apply under the state lock: snapshot registration, version
        # publication, the store mutations, and the watermark bump form
        # one atomic step against concurrent readers.  Pre-images go to
        # the version store *before* any heap mutation, so a lock-free
        # snapshot reader either resolves the pre-image or reads heap
        # state this commit has not reached yet — never torn state.
        with self._state_lock:
            commit_ts = self._commit_ts + 1
            if self.versions.active:
                pre_images: dict[Oid, dict[str, Any] | None] = {}
                for oid in payloads:
                    pre_images[oid] = txn._undo.get(oid)
                for oid in txn._deleted:
                    pre_images[oid] = txn._undo.get(oid)
                self.versions.publish(commit_ts, pre_images)
            for oid, obj in txn._deleted.items():
                # The object reverts to transient once the delete is durable.
                object.__setattr__(obj, "_p_db", None)
                object.__setattr__(obj, "_p_oid", None)
                if self._in_memory:
                    self._memory_records.pop(oid, None)
                    continue
                rid = self._locations.pop(oid, None)
                if rid is not None:
                    assert self._heap is not None
                    self._heap.delete(rid)
            for oid, payload in payloads.items():
                if self._in_memory:
                    self._memory_records[oid] = payload
                    continue
                assert self._heap is not None
                rid = self._locations.get(oid)
                if rid is None:
                    self._locations[oid] = self._heap.insert(payload)
                else:
                    self._locations[oid] = self._heap.update(rid, payload)
            # Bumped last: a snapshot beginning now starts at ``commit_ts``
            # and must see this commit's results, not its pre-images.
            self._commit_ts = commit_ts

    def _apply_rollback(self, txn: Transaction) -> None:
        for oid, obj in list(txn._touched.items()):
            if oid in txn._created:
                self._detach_created(obj)
                continue
            before = txn._undo.get(oid)
            if before is not None:
                self._restore_object(obj, before)
        for _oid, obj in txn._deleted.items():
            self._undelete(obj)
        if self._wal is not None:
            self._wal.log_abort(txn.id)

    def _restore_object(self, obj: Persistent, record: dict[str, Any]) -> None:
        """Reset ``obj``'s attributes to ``record`` and fix its indexes."""
        transient = set(type(obj)._p_transient)
        for name in list(vars(obj)):
            if not name.startswith("_p_") and name not in transient:
                object.__delattr__(obj, name)
        # Decoding may recursively fetch references (which takes 2PL
        # locks), so it stays outside the state lock.
        self.serializer.decode_object(record, obj)
        assert obj._p_oid is not None
        if self.locking:
            with self._state_lock:
                self.indexes.reindex(
                    type(obj)._p_class_name,  # type: ignore[attr-defined]
                    obj._p_oid,
                    _plain_attrs(obj),
                )
        else:
            self.indexes.reindex(
                type(obj)._p_class_name,  # type: ignore[attr-defined]
                obj._p_oid,
                _plain_attrs(obj),
            )

    def _detach_created(self, obj: Persistent) -> None:
        oid = obj._p_oid
        assert oid is not None
        class_name = type(obj)._p_class_name  # type: ignore[attr-defined]
        if self.locking:
            with self._state_lock:
                self.extents.remove(class_name, oid)
                self.indexes.on_remove(class_name, oid)
                self._cache.pop(oid, None)
        else:
            self.extents.remove(class_name, oid)
            self.indexes.on_remove(class_name, oid)
            self._cache.pop(oid, None)
        object.__setattr__(obj, "_p_db", None)
        object.__setattr__(obj, "_p_oid", None)

    def _undelete(self, obj: Persistent) -> None:
        oid = obj._p_oid
        assert oid is not None
        class_name = type(obj)._p_class_name  # type: ignore[attr-defined]
        if self.locking:
            with self._state_lock:
                self._cache[oid] = obj
                self.extents.add(class_name, oid)
                self.indexes.on_add(class_name, oid, _plain_attrs(obj))
        else:
            self._cache[oid] = obj
            self.extents.add(class_name, oid)
            self.indexes.on_add(class_name, oid, _plain_attrs(obj))

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------
    def _ensure_root_map(self) -> RootMap:
        if self._root_map is None:
            self._root_map = RootMap()
            self.add(self._root_map)
        return self._root_map

    def set_root(self, name: str, obj: Persistent) -> None:
        """Bind ``obj`` under the persistent root ``name``."""
        roots = self._ensure_root_map()
        self.add(obj)
        entries = dict(roots.entries)
        entries[name] = obj
        roots.entries = entries

    def get_root(self, name: str, default: Any = None) -> Any:
        if self._root_map is None:
            return default
        return self._root_map.entries.get(name, default)

    def root_names(self) -> list[str]:
        if self._root_map is None:
            return []
        return sorted(self._root_map.entries)

    # ------------------------------------------------------------------
    # Queries and indexes
    # ------------------------------------------------------------------
    def query(self, cls: type | str, include_subclasses: bool = True) -> Query:
        self._require_open()
        return Query(self, cls, include_subclasses)

    def create_index(
        self,
        cls: type | str,
        attribute: str,
        unique: bool = False,
        kind: str = "btree",
    ) -> None:
        """Create a secondary index and build it from the current extent.

        ``kind`` selects the structure: ``"btree"`` (the default; serves
        equality, ranges, and ordered streaming) or ``"hash"`` (extendible
        hashing; equality only, cheaper point lookups — the planner costs
        them accordingly).
        """
        if isinstance(cls, str):
            class_name = cls
        else:
            class_name = cls._p_class_name  # type: ignore[attr-defined]
        definition = IndexDefinition(class_name, attribute, unique, kind)
        self.indexes.create(definition)
        for oid in self.extents.of(class_name):
            obj = self.fetch(oid)
            self.indexes.on_add(
                type(obj)._p_class_name,  # type: ignore[attr-defined]
                oid,
                _plain_attrs(obj),
            )

    # ------------------------------------------------------------------
    # Schema evolution
    # ------------------------------------------------------------------
    def migrate(
        self,
        cls: type | str,
        upgrade: "Any",
        include_subclasses: bool = True,
    ) -> int:
        """Apply ``upgrade(obj)`` to every stored instance of ``cls``.

        Runs in a single transaction (all-or-nothing), so a failing
        upgrade leaves every instance untouched.  This is the schema-
        evolution counterpart of the paper's extensibility argument:
        because rules and events are ordinary objects, *their* classes
        can be migrated with the same call as application classes.

        Returns the number of objects upgraded.
        """
        self._require_open()
        if isinstance(cls, str):
            class_name = cls
        else:
            class_name = cls._p_class_name  # type: ignore[attr-defined]
        oids = sorted(self.extents.of(class_name, include_subclasses))
        if not oids:
            return 0
        own_txn = self.txn_manager.current is None
        if own_txn:
            with self.transaction():
                for oid in oids:
                    upgrade(self.fetch(oid))
        else:
            for oid in oids:
                upgrade(self.fetch(oid))
        return len(oids)

    # ------------------------------------------------------------------
    # Garbage collection (persistence by reachability, both directions)
    # ------------------------------------------------------------------
    def collect_garbage(
        self, extra_roots: "list[Persistent] | None" = None
    ) -> tuple[int, int]:
        """Delete objects unreachable from the named roots.

        Storing a reference pulls objects *into* the store (persistence by
        reachability); this is the reverse direction — a mark-and-sweep
        over the committed object graph.  Marking walks the serialized
        records (``$ref`` edges), so it does not need to materialize the
        whole database.  The sweep runs in one ordinary transaction, so it
        is logged, recoverable, and rolls back as a unit on failure.

        ``extra_roots`` marks additional entry points (e.g. objects an
        application holds by OID outside the root map).  Returns
        ``(marked, swept)`` counts.  Requires no active transaction.
        """
        self._require_open()
        if self.txn_manager.current is not None:
            raise TransactionError(
                "collect_garbage must run outside any transaction"
            )
        stored = (
            set(self._memory_records)
            if self._in_memory
            else set(self._locations)
        )
        worklist: list[Oid] = []
        if self._root_map is not None and self._root_map._p_oid in stored:
            worklist.append(self._root_map._p_oid)
        for obj in extra_roots or ():
            if isinstance(obj, Persistent) and obj._p_oid in stored:
                worklist.append(obj._p_oid)

        marked: set[Oid] = set()
        while worklist:
            oid = worklist.pop()
            if oid in marked:
                continue
            marked.add(oid)
            record = self._stored_record(oid)
            if record is None:
                continue
            for target in _collect_refs(record["attrs"]):
                if target in stored and target not in marked:
                    worklist.append(target)

        victims = stored - marked
        if victims:
            with self.transaction():
                for oid in sorted(victims):
                    self.delete(self.fetch(oid))
        return len(marked), len(victims)

    # ------------------------------------------------------------------
    # Durability / lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Flush the heap, persist the catalog, truncate the WAL."""
        self._require_open()
        if self._in_memory:
            return
        assert self._heap is not None and self._wal is not None
        # Stall new commits and wait out in-flight ones: a commit that has
        # logged to the WAL but not yet applied to the heap must not have
        # its log records truncated out from under it.
        with self._ckpt_gate:
            while self._checkpointing:
                self._ckpt_gate.wait()
            self._checkpointing = True
            while self._commits_in_flight:
                self._ckpt_gate.wait()
        try:
            self._checkpoint_locked()
        finally:
            with self._ckpt_gate:
                self._checkpointing = False
                self._ckpt_gate.notify_all()

    def _checkpoint_locked(self) -> None:
        assert self._heap is not None and self._wal is not None
        with self._state_lock:
            self._heap.flush()
            meta = {
                "allocator": self.allocator.snapshot(),
                "root_oid": self._root_map._p_oid.value
                if self._root_map is not None and self._root_map._p_oid
                else None,
                "indexes": [
                    {
                        "class_name": d.class_name,
                        "attribute": d.attribute,
                        "unique": d.unique,
                        "kind": d.kind,
                    }
                    for d in self.indexes.definitions()
                ],
            }
            tmp = self._meta_path() + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(meta, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._meta_path())
            self._wal.truncate()

    def close(self) -> None:
        """Abort any active transaction, checkpoint, and release files."""
        if self._closed:
            return
        txn = self.txn_manager.current
        if txn is not None:
            self.txn_manager.rollback(txn)
        if not self._in_memory:
            self.checkpoint()
            assert self._heap is not None and self._wal is not None
            self._heap.close()
            self._wal.close()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise DatabaseClosed("database is closed")

    # ------------------------------------------------------------------
    # Introspection / testing aids
    # ------------------------------------------------------------------
    def object_count(self) -> int:
        if self._in_memory:
            stored = set(self._memory_records)
        else:
            stored = set(self._locations)
        txn = self.txn_manager.current
        if txn is not None:
            stored |= txn.created_oids()
            stored -= txn.deleted_oids()
        return len(stored)

    def evict_cache(self) -> None:
        """Drop the identity map (testing: force re-reads from storage)."""
        for obj in self._cache.values():
            object.__setattr__(obj, "_p_db", None)
        self._cache.clear()

    # ------------------------------------------------------------------
    # Lock-order sanitizer
    # ------------------------------------------------------------------
    def _lock_class_of(self, oid: Oid) -> str:
        """Lock-class keyer: an OID's persistent class name.

        Falls back to ``oid:<n>`` for objects not in the identity map
        (evicted, or never loaded on this node) — the recorder must not
        trigger a storage read from inside the lock manager's mutex.
        """
        obj = self._cache.get(oid)
        if obj is not None:
            return str(type(obj)._p_class_name)  # type: ignore[attr-defined]
        return f"oid:{oid}"

    def enable_lockdep(self) -> Any:
        """Attach the runtime lock-order sanitizer (idempotent).

        Returns the :class:`~repro.oodb.lockdep.LockOrderRecorder`; its
        ``export()`` output feeds ``tools.analyze --lockdep-graph``.
        """
        return self.locks.enable_lockdep(self._lock_class_of)

    def disable_lockdep(self) -> None:
        """Detach the sanitizer; the lock path reverts to bare cost."""
        self.locks.disable_lockdep()

    @classmethod
    def temporary(cls, **kwargs: Any) -> "Database":
        """A database in a fresh temp directory (caller cleans up)."""
        return cls(tempfile.mkdtemp(prefix="repro-oodb-"), **kwargs)


class _SnapshotResolver:
    """Serializer resolver that routes ``$ref`` decoding through a snapshot.

    Snapshot copies are detached, so a reference inside one must resolve
    to another *snapshot* copy — never to a live cached object that a
    concurrent writer may be mutating.
    """

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot: "Snapshot") -> None:
        self._snapshot = snapshot

    def resolve_reference(self, oid: Oid) -> Persistent:
        return self._snapshot.fetch(oid)

    def reference_for(self, obj: Any) -> Oid | None:
        # Snapshots never encode, but the resolver protocol requires it.
        if isinstance(obj, Persistent):
            return obj._p_oid
        return None

    def class_for_name(self, name: str) -> type:
        return self._snapshot._db.class_for_name(name)


class Snapshot:
    """A frozen, read-only view of the database at one commit watermark.

    Created by :meth:`Database.snapshot` / :meth:`Database.begin_snapshot`.
    Reads are **lock-free**: each OID resolves through the version store
    first (``commit_ts > ts`` → that commit's pre-image wins), falling
    through to the current stored record, with a resolve/read/resolve
    double-check so a heap read racing a commit's apply step can never
    surface torn state.

    Fetched objects are detached copies: ``_p_db is None``, attribute
    writes touch only the copy, ``_p_after_load`` transient re-wiring is
    skipped, and references decode to further snapshot copies.  The copy
    cache keeps identity *within* this snapshot (cycles resolve).

    Known read anomalies, accepted by design: extent membership used for
    query candidate collection is read at query time (read-committed),
    so an object created after the snapshot began appears in the
    candidate set but resolves to "did not exist" and is skipped.
    """

    __slots__ = ("_db", "ts", "_cache", "_serializer", "_closed")

    def __init__(self, db: Database, ts: int) -> None:
        self._db = db
        #: The commit-timestamp watermark this snapshot reads at.
        self.ts = ts
        self._cache: dict[Oid, Persistent] = {}
        self._serializer = Serializer(_SnapshotResolver(self))
        self._closed = False

    def record(self, oid: Oid) -> dict[str, Any] | None:
        """The committed record of ``oid`` at this snapshot (or ``None``).

        The server front end serializes straight from this, skipping
        object materialization.
        """
        db = self._db
        hit, pre = db.versions.resolve(oid, self.ts)
        if hit:
            return pre
        try:
            stored = db._stored_record(oid)
        except OODBError:
            # The lock-free heap read raced a commit moving the record;
            # publish-before-apply guarantees the pre-image is visible now.
            hit, pre = db.versions.resolve(oid, self.ts)
            if hit:
                return pre
            raise
        hit, pre = db.versions.resolve(oid, self.ts)
        if hit:
            # A commit overwrote the object mid-read; its pre-image is
            # the state as of this snapshot.
            return pre
        return stored

    def fetch(self, oid: Oid) -> Persistent:
        """A detached copy of ``oid`` as of this snapshot."""
        obj = self.fetch_or_none(oid)
        if obj is None:
            raise ObjectNotFound(oid)
        return obj

    def fetch_or_none(self, oid: Oid) -> Persistent | None:
        """Like :meth:`fetch` but ``None`` when absent at this snapshot."""
        if oid == NULL_OID:
            return None
        cached = self._cache.get(oid)
        if cached is not None:
            return cached
        record = self.record(oid)
        if record is None:
            return None
        cls = self._db.registry.get(record["class"])
        obj: Persistent = cls.__new__(cls)
        object.__setattr__(obj, "_p_oid", oid)
        object.__setattr__(obj, "_p_db", None)
        # Register before decoding so reference cycles resolve to this
        # same copy.  ``_p_after_load`` is deliberately skipped: transient
        # re-wiring expects a live database-bound object.
        self._cache[oid] = obj
        try:
            self._serializer.decode_object(record, obj)
        except BaseException:
            self._cache.pop(oid, None)
            raise
        return obj


def _plain_attrs(obj: Persistent) -> dict[str, Any]:
    transient = set(type(obj)._p_transient)
    return {
        name: value
        for name, value in vars(obj).items()
        if not name.startswith("_p_") and name not in transient
    }


def _collect_refs(encoded) -> "list[Oid]":
    """Extract every $ref OID from an encoded attribute tree."""
    refs: list[Oid] = []
    stack = [encoded]
    while stack:
        value = stack.pop()
        if isinstance(value, dict):
            if "$ref" in value and len(value) == 1:
                refs.append(Oid(value["$ref"]))
            else:
                stack.extend(value.values())
        elif isinstance(value, list):
            stack.extend(value)
    return refs
