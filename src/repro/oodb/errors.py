"""Exception hierarchy for the object store.

Every error raised by :mod:`repro.oodb` derives from :class:`OODBError`, so
callers can catch a single base class at component boundaries.  The hierarchy
mirrors the major subsystems: storage, transactions, locking, schema, and
recovery.
"""

from __future__ import annotations

__all__ = [
    "OODBError",
    "StorageError",
    "PageError",
    "ChecksumError",
    "WALError",
    "SerializationError",
    "ObjectNotFound",
    "DuplicateOid",
    "SchemaError",
    "UnregisteredClass",
    "TransactionError",
    "NoActiveTransaction",
    "TransactionAborted",
    "TransactionNotActive",
    "LockError",
    "LockTimeout",
    "DeadlockDetected",
    "IndexError_",
    "DuplicateKey",
    "QueryError",
    "RecoveryError",
    "DatabaseClosed",
]


class OODBError(Exception):
    """Base class for all object-store errors."""

    #: True for errors that abort a transaction through no fault of its
    #: own (deadlock victim, lock timeout) — rerunning the same work in a
    #: fresh transaction is expected to succeed.
    #: :meth:`~repro.oodb.database.Database.run_transaction` retries on
    #: exactly these.
    retryable = False


class StorageError(OODBError):
    """A failure in the on-disk storage layer."""


class PageError(StorageError):
    """A page-level structural violation (bad slot, overflow, ...)."""


class ChecksumError(PageError):
    """A page failed checksum verification when read back from disk."""


class WALError(StorageError):
    """The write-ahead log is unreadable or structurally invalid."""


class SerializationError(OODBError):
    """An object could not be encoded to, or decoded from, record form."""


class ObjectNotFound(OODBError):
    """No object with the requested OID exists in the store."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"no object with oid {oid!r}")
        self.oid = oid


class DuplicateOid(OODBError):
    """An OID was allocated or registered twice."""


class SchemaError(OODBError):
    """A class definition violates the schema rules of the store."""


class UnregisteredClass(SchemaError):
    """A record refers to a persistent class that was never registered."""

    def __init__(self, class_name: str) -> None:
        super().__init__(f"persistent class {class_name!r} is not registered")
        self.class_name = class_name


class TransactionError(OODBError):
    """Base class for transaction-protocol violations."""


class NoActiveTransaction(TransactionError):
    """A transactional operation was attempted with no transaction open."""


class TransactionAborted(TransactionError):
    """Raised out of ``commit`` (or an operation) when a transaction aborts.

    Rule actions use :meth:`repro.oodb.transactions.Transaction.abort` to
    cancel the triggering transaction (the paper's ``abort`` rule action);
    that surfaces to the caller as this exception.
    """


class TransactionNotActive(TransactionError):
    """An operation was attempted on a finished (committed/aborted) txn."""


class LockError(OODBError):
    """Base class for lock-manager failures."""

    retryable = True


class LockTimeout(LockError):
    """A lock could not be acquired within the configured timeout."""


class DeadlockDetected(LockError):
    """The wait-for graph contains a cycle involving the requesting txn.

    A retryable abort: the requesting transaction was chosen as the
    victim and holds no new locks; roll it back and rerun the work.
    """


class IndexError_(OODBError):
    """A structural failure in a secondary index (named to avoid the builtin)."""


class DuplicateKey(IndexError_):
    """A unique index rejected a duplicate key."""


class QueryError(OODBError):
    """An ill-formed query (unknown attribute, bad operator, ...)."""


class RecoveryError(OODBError):
    """Restart recovery could not bring the store to a consistent state."""


class DatabaseClosed(OODBError):
    """An operation was attempted on a closed database."""
