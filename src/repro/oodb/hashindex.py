"""Extendible hash index for equality-only attribute lookups.

The classic Fagin et al. structure: a *directory* of ``2**global_depth``
slots points at *buckets*, each holding up to ``bucket_capacity`` distinct
keys and carrying a ``local_depth <= global_depth``.  A key lands in the
bucket its hash's low ``global_depth`` bits select.  When a bucket
overflows it **splits** — its entries are redistributed on one more hash
bit — and if the bucket was already at the directory's depth, the
directory **doubles** first.  Several directory slots may share a bucket
(exactly ``2**(global_depth - local_depth)`` of them), so the directory
grows gracefully: one overflowing bucket never forces every bucket to
split.

A point probe is one hash plus one directory load plus one in-bucket
dict lookup — O(1), versus O(log n) node descents for the B-tree, which
is why the query planner's cost model prefers a hash index for ``==``
filters.  The structure is *unordered*: range scans and ``order_by``
streaming stay with the B-tree, and the planner never chooses a hash
index for them.

Like the B-tree, the index lives in memory and is rebuilt from the heap
at open; ``bucket_capacity`` plays the role of a page's slot count.
Duplicate keys chain their values inside one bucket entry (capacity
counts *distinct* keys), and a bucket whose keys all collide past
``_MAX_DEPTH`` hash bits is allowed to overfill rather than double the
directory forever.
"""

from __future__ import annotations

from typing import Any, Iterator

from .errors import DuplicateKey

__all__ = ["ExtendibleHashIndex", "HashIndexStats"]

_MISSING: Any = object()

#: Directory-doubling ceiling: 2**20 slots.  Beyond this a pathological
#: key set (every key equal in its low 20 hash bits) overfills a bucket
#: instead of exhausting memory on directory copies.
_MAX_DEPTH = 20

_MASK64 = (1 << 64) - 1


class HashIndexStats:
    """Directory and bucket statistics (``inspect --stats`` reporting)."""

    __slots__ = (
        "global_depth",
        "directory_size",
        "bucket_count",
        "bucket_capacity",
        "entries",
        "distinct_keys",
        "max_bucket_keys",
    )

    def __init__(
        self,
        global_depth: int,
        directory_size: int,
        bucket_count: int,
        bucket_capacity: int,
        entries: int,
        distinct_keys: int,
        max_bucket_keys: int,
    ) -> None:
        self.global_depth = global_depth
        self.directory_size = directory_size
        self.bucket_count = bucket_count
        self.bucket_capacity = bucket_capacity
        self.entries = entries
        self.distinct_keys = distinct_keys
        self.max_bucket_keys = max_bucket_keys

    @property
    def avg_bucket_fill(self) -> float:
        """Mean distinct keys per bucket as a fraction of capacity."""
        if not self.bucket_count or not self.bucket_capacity:
            return 0.0
        return self.distinct_keys / (self.bucket_count * self.bucket_capacity)


class _Bucket:
    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int) -> None:
        self.local_depth = local_depth
        self.entries: dict[Any, list[Any]] = {}


class ExtendibleHashIndex:
    """An extendible hash table mapping attribute values to OID lists.

    The surface mirrors :class:`~repro.oodb.index.BTree` where the two
    overlap (``insert`` / ``delete`` / ``search`` / ``count_key`` /
    ``key_count`` / ``__len__`` / ``__contains__`` /
    ``check_invariants``), so :class:`~repro.oodb.index.IndexManager`
    maintains either structure through one code path.  Ordered methods
    (``range`` and friends) are deliberately absent.
    """

    def __init__(self, bucket_capacity: int = 64, unique: bool = False) -> None:
        if bucket_capacity < 1:
            raise ValueError("bucket capacity must be >= 1")
        self._capacity = bucket_capacity
        self._unique = unique
        self._global_depth = 0
        bucket = _Bucket(0)
        self._directory: list[_Bucket] = [bucket]
        self._size = 0
        self._distinct = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @staticmethod
    def _hash(key: Any) -> int:
        return hash(key) & _MASK64

    def _bucket_for(self, key: Any) -> _Bucket:
        return self._directory[self._hash(key) & ((1 << self._global_depth) - 1)]

    def search(self, key: Any) -> list[Any]:
        """Return the values stored under ``key`` (empty list if absent)."""
        values = self._bucket_for(key).entries.get(key)
        return list(values) if values else []

    def count_key(self, key: Any) -> int:
        """Number of values stored under ``key`` without copying them."""
        values = self._bucket_for(key).entries.get(key)
        return len(values) if values else 0

    def __contains__(self, key: Any) -> bool:
        return key in self._bucket_for(key).entries

    def __len__(self) -> int:
        return self._size

    @property
    def key_count(self) -> int:
        """Number of distinct keys currently in the index."""
        return self._distinct

    @property
    def global_depth(self) -> int:
        return self._global_depth

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Every ``(key, value)`` pair, in no particular order."""
        seen: set[int] = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            for key, values in bucket.entries.items():
                for value in values:
                    yield key, value

    def keys(self) -> Iterator[Any]:
        """Every distinct key, in no particular order."""
        seen: set[int] = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.entries

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` under ``key``, splitting buckets as needed."""
        bucket = self._bucket_for(key)
        values = bucket.entries.get(key)
        if values is not None:
            if self._unique:
                raise DuplicateKey(f"duplicate key {key!r} in unique index")
            values.append(value)
            self._size += 1
            return
        bucket.entries[key] = [value]
        self._size += 1
        self._distinct += 1
        # After a split at most one half can still be overfull (the two
        # halves share capacity+1 keys); keep splitting that half.
        while (
            len(bucket.entries) > self._capacity
            and bucket.local_depth < _MAX_DEPTH
        ):
            zero, one = self._split(bucket)
            bucket = zero if len(zero.entries) >= len(one.entries) else one

    def delete(self, key: Any, value: Any = _MISSING) -> bool:
        """Remove ``value`` from ``key`` (or the whole key when omitted).

        Returns True if something was removed.  Buckets are not merged on
        underflow (the standard simplification; the index is rebuilt from
        the heap at open anyway).
        """
        bucket = self._bucket_for(key)
        values = bucket.entries.get(key)
        if values is None:
            return False
        if value is _MISSING:
            del bucket.entries[key]
            self._size -= len(values)
            self._distinct -= 1
            return True
        try:
            values.remove(value)
        except ValueError:
            return False
        self._size -= 1
        if not values:
            del bucket.entries[key]
            self._distinct -= 1
        return True

    def _split(self, bucket: _Bucket) -> tuple[_Bucket, _Bucket]:
        """Split ``bucket`` on one more hash bit; double the directory
        first if the bucket is already at the directory's depth.  Returns
        the two replacement buckets ``(zero, one)``."""
        if bucket.local_depth == self._global_depth:
            self._directory = self._directory + self._directory
            self._global_depth += 1
        new_depth = bucket.local_depth + 1
        bit = 1 << bucket.local_depth
        zero = _Bucket(new_depth)
        one = _Bucket(new_depth)
        for key, values in bucket.entries.items():
            target = one if self._hash(key) & bit else zero
            target.entries[key] = values
        # Redirect every directory slot that pointed at the old bucket.
        # Those slots are exactly the indexes congruent to the bucket's
        # pattern modulo 2**old_depth; the new bit picks zero or one.
        directory = self._directory
        for i in range(len(directory)):
            if directory[i] is bucket:
                directory[i] = one if i & bit else zero
        return zero, one

    def clear(self) -> None:
        self._global_depth = 0
        self._directory = [_Bucket(0)]
        self._size = 0
        self._distinct = 0

    # ------------------------------------------------------------------
    # Statistics and invariants
    # ------------------------------------------------------------------
    def stats(self) -> HashIndexStats:
        buckets: dict[int, _Bucket] = {}
        for bucket in self._directory:
            buckets[id(bucket)] = bucket
        max_keys = max(
            (len(b.entries) for b in buckets.values()), default=0
        )
        return HashIndexStats(
            global_depth=self._global_depth,
            directory_size=len(self._directory),
            bucket_count=len(buckets),
            bucket_capacity=self._capacity,
            entries=self._size,
            distinct_keys=self._distinct,
            max_bucket_keys=max_keys,
        )

    def check_invariants(self) -> None:
        """Raise AssertionError if any extendible-hashing invariant fails."""
        directory = self._directory
        assert len(directory) == 1 << self._global_depth, (
            "directory size is not 2**global_depth"
        )
        slots_of: dict[int, list[int]] = {}
        buckets: dict[int, _Bucket] = {}
        for i, bucket in enumerate(directory):
            buckets[id(bucket)] = bucket
            slots_of.setdefault(id(bucket), []).append(i)
        size = 0
        distinct = 0
        for bucket in buckets.values():
            assert bucket.local_depth <= self._global_depth, (
                "bucket deeper than directory"
            )
            slots = slots_of[id(bucket)]
            expected = 1 << (self._global_depth - bucket.local_depth)
            assert len(slots) == expected, (
                f"bucket with local depth {bucket.local_depth} referenced by "
                f"{len(slots)} slots, expected {expected}"
            )
            low_bits = (1 << bucket.local_depth) - 1
            patterns = {slot & low_bits for slot in slots}
            assert len(patterns) == 1, "bucket slots disagree on low bits"
            pattern = patterns.pop()
            assert (
                bucket.local_depth >= _MAX_DEPTH
                or len(bucket.entries) <= self._capacity
            ), "overfull bucket below the depth ceiling"
            for key, values in bucket.entries.items():
                assert values, "empty value chain"
                assert self._hash(key) & low_bits == pattern, (
                    f"key {key!r} in the wrong bucket"
                )
                if self._unique:
                    assert len(values) == 1, "duplicate in unique index"
                size += len(values)
                distinct += 1
        assert size == self._size, "entry count stat out of sync"
        assert distinct == self._distinct, "distinct-key stat out of sync"
