"""Secondary indexes: an in-memory B-tree plus the index manager.

The B-tree is a textbook implementation (order ``t``: internal nodes hold
between ``t-1`` and ``2t-1`` keys except the root) mapping keys to lists of
values.  The :class:`IndexManager` maintains one structure per
``(class, attribute, kind)`` triple — ``kind`` is ``"btree"`` or ``"hash"``
(see :mod:`repro.oodb.hashindex`) — keeps it current as attributes change
(hooked from :meth:`repro.oodb.schema.Persistent.__setattr__` via the
database) and rebuilds after transaction aborts.

Indexes are rebuilt from the heap at database open; their definitions are
persisted in the database catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .errors import DuplicateKey, QueryError
from .hashindex import ExtendibleHashIndex
from .oid import Oid

__all__ = ["BTree", "IndexManager", "IndexDefinition", "INDEX_KINDS"]

_MISSING = object()


class _Node:
    __slots__ = ("keys", "values", "children", "entries")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[list[Any]] = []
        self.children: list["_Node"] = []
        #: Cached subtree entry count; ``None`` marks it dirty.  Mutations
        #: invalidate every node they touch (conservative, never wrong);
        #: ``BTree._entries`` recomputes lazily, reusing clean children.
        self.entries: int | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """A B-tree mapping comparable keys to lists of values.

    Duplicate keys accumulate values under one key slot; ``unique=True``
    rejects a second value for an existing key with
    :class:`~repro.oodb.errors.DuplicateKey`.
    """

    def __init__(self, order: int = 16, unique: bool = False) -> None:
        if order < 2:
            raise ValueError("B-tree order must be >= 2")
        self._t = order
        self._unique = unique
        self._root = _Node()
        self._size = 0
        self._distinct = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, key: Any) -> list[Any]:
        """Return the values stored under ``key`` (empty list if absent)."""
        node = self._root
        while True:
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return list(node.values[idx])
            if node.is_leaf:
                return []
            node = node.children[idx]

    def count_key(self, key: Any) -> int:
        """Number of values stored under ``key`` without copying them."""
        node = self._root
        while True:
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return len(node.values[idx])
            if node.is_leaf:
                return 0
            node = node.children[idx]

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: tuple[bool, bool] = (True, True),
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high`` in order.

        ``None`` bounds are open; ``inclusive`` controls each endpoint.
        ``reverse=True`` yields keys in descending order (values under one
        key keep insertion order either way).  Subtrees entirely outside
        the bounds are pruned, so a narrow range over a large tree does
        not walk the whole tree.
        """
        for key, values in self._range_walk(self._root, low, high, reverse):
            if not inclusive[0] and low is not None and key == low:
                continue
            if not inclusive[1] and high is not None and key == high:
                continue
            for value in values:
                yield key, value

    def count_range(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: tuple[bool, bool] = (True, True),
    ) -> int:
        """Exact number of entries with ``low <= key <= high``.

        Node-granular: sums value-list lengths per visited node instead of
        yielding entries one by one, so it is an order of magnitude
        cheaper than ``sum(1 for _ in range(...))`` — this is what makes
        index-only ``count()`` pay off.
        """
        if low is not None and low == high:
            return self.count_key(low) if inclusive == (True, True) else 0
        total = self._count_range(self._root, low, high)
        if not inclusive[0] and low is not None:
            total -= self.count_key(low)
        if not inclusive[1] and high is not None:
            total -= self.count_key(high)
        return total

    def _count_range(self, node: _Node, low: Any, high: Any) -> int:
        keys = node.keys
        lo = 0 if low is None else _bisect(keys, low)
        hi = len(keys) if high is None else _bisect_right(keys, high)
        total = sum(map(len, node.values[lo:hi]))
        if node.is_leaf:
            return total
        children = node.children
        # Only the two boundary children can straddle a bound; everything
        # between them lies fully inside the range and is answered by the
        # cached subtree total — the walk is O(height), not O(matched).
        if lo == hi:
            return total + self._count_range(children[lo], low, high)
        total += self._count_range(children[lo], low, high)
        total += self._count_range(children[hi], low, high)
        for i in range(lo + 1, hi):
            total += self._entries(children[i])
        return total

    def _entries(self, node: _Node) -> int:
        """Subtree entry count, recomputed only where mutations dirtied it."""
        cached = node.entries
        if cached is None:
            cached = sum(map(len, node.values))
            for child in node.children:
                cached += self._entries(child)
            node.entries = cached
        return cached

    def range_values(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: tuple[bool, bool] = (True, True),
    ) -> list[Any]:
        """All values in ``[low, high]`` as one list, in key order.

        The eager counterpart of :meth:`range` for callers that need the
        whole result anyway (OID-set intersection): list ``extend`` per
        node, no generator frame or tuple per entry.
        """
        if low is not None and low == high:
            return list(self.search(low)) if inclusive == (True, True) else []
        out: list[Any] = []
        self._collect_range(self._root, low, high, out)
        # Boundary keys sit at the ends of the ordered result, so
        # exclusive bounds trim rather than filter.
        if not inclusive[0] and low is not None:
            del out[: self.count_key(low)]
        if not inclusive[1] and high is not None:
            count = self.count_key(high)
            if count:
                del out[len(out) - count :]
        return out

    def _collect_range(
        self, node: _Node, low: Any, high: Any, out: list[Any]
    ) -> None:
        keys = node.keys
        lo = 0 if low is None else _bisect(keys, low)
        hi = len(keys) if high is None else _bisect_right(keys, high)
        if node.is_leaf:
            for i in range(lo, hi):
                out.extend(node.values[i])
            return
        for i in range(lo, hi):
            self._collect_range(node.children[i], low, high, out)
            out.extend(node.values[i])
        self._collect_range(node.children[hi], low, high, out)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All ``(key, value)`` pairs in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        for key, _values in self._range_walk(self._root, None, None, False):
            yield key

    def _range_walk(
        self, node: _Node, low: Any, high: Any, reverse: bool
    ) -> Iterator[tuple[Any, list[Any]]]:
        keys = node.keys
        lo = 0 if low is None else _bisect(keys, low)
        hi = len(keys) if high is None else _bisect_right(keys, high)
        if node.is_leaf:
            span = range(lo, hi)
            for i in reversed(span) if reverse else span:
                yield keys[i], node.values[i]
            return
        if reverse:
            yield from self._range_walk(node.children[hi], low, high, reverse)
            for i in reversed(range(lo, hi)):
                yield keys[i], node.values[i]
                yield from self._range_walk(node.children[i], low, high, reverse)
        else:
            for i in range(lo, hi):
                yield from self._range_walk(node.children[i], low, high, reverse)
                yield keys[i], node.values[i]
            yield from self._range_walk(node.children[hi], low, high, reverse)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Planner statistics
    # ------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        """Number of distinct keys currently in the tree."""
        return self._distinct

    def estimate_range_count(self, low: Any = None, high: Any = None) -> int:
        """Estimated number of entries with ``low <= key <= high``.

        Descends once per bound accumulating positional fractions, so the
        estimate costs O(height) — it never walks the range.  Accuracy is
        bounded by the fanout at each level; good enough to rank access
        paths, not to answer ``count()``.
        """
        if not self._size:
            return 0
        lo_frac = 0.0 if low is None else self._key_fraction(low)
        hi_frac = 1.0 if high is None else self._key_fraction(high)
        estimate = int((hi_frac - lo_frac) * self._size)
        if high is not None:
            estimate += self.count_key(high)
        return max(0, min(estimate, self._size))

    def _key_fraction(self, key: Any) -> float:
        """Approximate fraction of entries whose key is ``< key``."""
        node = self._root
        fraction = 0.0
        span = 1.0
        while True:
            n = len(node.keys)
            if n == 0:
                return fraction
            idx = _bisect(node.keys, key)
            if node.is_leaf:
                return fraction + span * (idx / n)
            fraction += span * (idx / (n + 1))
            span /= n + 1
            node = node.children[idx]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` under ``key``."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            node.entries = None
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if self._unique:
                    raise DuplicateKey(f"duplicate key {key!r} in unique index")
                node.values[idx].append(value)
                self._size += 1
                return
            if node.is_leaf:
                node.keys.insert(idx, key)
                node.values.insert(idx, [value])
                self._size += 1
                self._distinct += 1
                return
            child = node.children[idx]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, idx)
                if key == node.keys[idx]:
                    if self._unique:
                        raise DuplicateKey(
                            f"duplicate key {key!r} in unique index"
                        )
                    node.values[idx].append(value)
                    self._size += 1
                    return
                if key > node.keys[idx]:
                    idx += 1
                child = node.children[idx]
            node = child

    def _split_child(self, parent: _Node, idx: int) -> None:
        t = self._t
        child = parent.children[idx]
        parent.entries = None
        child.entries = None
        sibling = _Node()
        parent.keys.insert(idx, child.keys[t - 1])
        parent.values.insert(idx, child.values[t - 1])
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.children.insert(idx + 1, sibling)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: Any, value: Any = _MISSING) -> bool:
        """Remove ``value`` from ``key`` (or the whole key when omitted).

        Returns True if something was removed.  Deletion uses the classic
        rebalancing algorithm so the tree invariants hold afterwards.
        """
        removed = self._delete(self._root, key, value)
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        return removed

    def _delete(self, node: _Node, key: Any, value: Any) -> bool:
        node.entries = None
        t = self._t
        idx = _bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            values = node.values[idx]
            if value is not _MISSING and (len(values) > 1 or value not in values):
                if value not in values:
                    return False
                values.remove(value)
                self._size -= 1
                return True
            # Remove the whole key slot.
            count = len(values) if value is _MISSING else 1
            if node.is_leaf:
                node.keys.pop(idx)
                node.values.pop(idx)
                self._size -= count
                self._distinct -= 1
                return True
            return self._delete_internal(node, idx, count)
        if node.is_leaf:
            return False
        child = node.children[idx]
        if len(child.keys) < t:
            self._fill(node, idx)
            return self._delete(node, key, value)
        return self._delete(child, key, value)

    def _delete_internal(self, node: _Node, idx: int, count: int) -> bool:
        t = self._t
        left, right = node.children[idx], node.children[idx + 1]
        if len(left.keys) >= t:
            pred_key, pred_values = self._max_entry(left)
            node.keys[idx], node.values[idx] = pred_key, pred_values
            self._size -= count
            removed = self._delete(left, pred_key, _MISSING)
            assert removed
            self._size += len(pred_values)
            return True
        if len(right.keys) >= t:
            succ_key, succ_values = self._min_entry(right)
            node.keys[idx], node.values[idx] = succ_key, succ_values
            self._size -= count
            removed = self._delete(right, succ_key, _MISSING)
            assert removed
            self._size += len(succ_values)
            return True
        key = node.keys[idx]
        self._merge(node, idx)
        return self._delete(node.children[idx], key, _MISSING)

    def _max_entry(self, node: _Node) -> tuple[Any, list[Any]]:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], list(node.values[-1])

    def _min_entry(self, node: _Node) -> tuple[Any, list[Any]]:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], list(node.values[0])

    def _fill(self, node: _Node, idx: int) -> None:
        t = self._t
        if idx > 0 and len(node.children[idx - 1].keys) >= t:
            self._borrow_prev(node, idx)
        elif idx < len(node.children) - 1 and len(node.children[idx + 1].keys) >= t:
            self._borrow_next(node, idx)
        elif idx < len(node.children) - 1:
            self._merge(node, idx)
        else:
            self._merge(node, idx - 1)

    def _borrow_prev(self, node: _Node, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx - 1]
        node.entries = child.entries = sibling.entries = None
        child.keys.insert(0, node.keys[idx - 1])
        child.values.insert(0, node.values[idx - 1])
        node.keys[idx - 1] = sibling.keys.pop()
        node.values[idx - 1] = sibling.values.pop()
        if not sibling.is_leaf:
            child.children.insert(0, sibling.children.pop())

    def _borrow_next(self, node: _Node, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx + 1]
        node.entries = child.entries = sibling.entries = None
        child.keys.append(node.keys[idx])
        child.values.append(node.values[idx])
        node.keys[idx] = sibling.keys.pop(0)
        node.values[idx] = sibling.values.pop(0)
        if not sibling.is_leaf:
            child.children.append(sibling.children.pop(0))

    def _merge(self, node: _Node, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx + 1]
        node.entries = child.entries = None
        child.keys.append(node.keys.pop(idx))
        child.values.append(node.values.pop(idx))
        child.keys.extend(sibling.keys)
        child.values.extend(sibling.values)
        child.children.extend(sibling.children)
        node.children.pop(idx + 1)

    # ------------------------------------------------------------------
    # Invariant checking (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any B-tree invariant is violated."""
        self._check(self._root, None, None, is_root=True)
        keys = list(self.keys())
        assert keys == sorted(keys), "keys out of order"
        assert len(keys) == self._distinct, "distinct-key stat out of sync"
        self._check_entries(self._root)
        assert self._entries(self._root) == self._size, (
            "subtree entry counts out of sync with size"
        )

    def _check_entries(self, node: _Node) -> None:
        """Every *clean* cached subtree count must match a recount."""
        if node.entries is not None:
            actual = sum(map(len, node.values)) + sum(
                self._recount(child) for child in node.children
            )
            assert node.entries == actual, "stale cached subtree count"
        for child in node.children:
            self._check_entries(child)

    def _recount(self, node: _Node) -> int:
        return sum(map(len, node.values)) + sum(
            self._recount(child) for child in node.children
        )

    def _check(
        self, node: _Node, low: Any, high: Any, *, is_root: bool = False
    ) -> int:
        t = self._t
        if not is_root:
            assert len(node.keys) >= t - 1, "underfull node"
        assert len(node.keys) <= 2 * t - 1, "overfull node"
        for key in node.keys:
            if low is not None:
                assert key > low, "key below subtree bound"
            if high is not None:
                assert key < high, "key above subtree bound"
        if node.is_leaf:
            return 1
        assert len(node.children) == len(node.keys) + 1, "bad fanout"
        depths = set()
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            depths.add(self._check(child, bounds[i], bounds[i + 1]))
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1


def _bisect(keys: list[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: list[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


#: Index structures the catalog knows how to build.
INDEX_KINDS = ("btree", "hash")


@dataclass(frozen=True, slots=True)
class IndexDefinition:
    """Catalog entry describing one secondary index.

    ``kind`` selects the structure: ``"btree"`` (ordered; equality, ranges
    and key-order streaming) or ``"hash"`` (extendible hashing; equality
    only, O(1) point probes).  Both kinds may coexist on the same
    attribute — the planner costs them against each other.
    """

    class_name: str
    attribute: str
    unique: bool = False
    kind: str = "btree"

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise QueryError(
                f"unknown index kind {self.kind!r}; expected one of "
                f"{INDEX_KINDS}"
            )

    @property
    def name(self) -> str:
        return f"{self.class_name}.{self.attribute}"

    @property
    def display(self) -> str:
        """Kind-qualified name for catalogs and tooling output."""
        return f"{self.kind}:{self.class_name}.{self.attribute}"


def _make_structure(definition: IndexDefinition) -> "BTree | ExtendibleHashIndex":
    if definition.kind == "hash":
        return ExtendibleHashIndex(unique=definition.unique)
    return BTree(unique=definition.unique)


@dataclass(slots=True)
class _IndexState:
    definition: IndexDefinition
    tree: "BTree | ExtendibleHashIndex"
    keyed: dict[Oid, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return self.definition.kind


class IndexManager:
    """Maintains secondary indexes (B-tree and hash) over object attributes."""

    def __init__(self, family_of: Callable[[str], set[str]]) -> None:
        # family_of(name) -> the class name plus its subclasses; indexes on
        # a class cover instances of its subclasses too.
        self._family_of = family_of
        self._indexes: dict[tuple[str, str, str], _IndexState] = {}
        self._by_class: dict[str, list[_IndexState]] = {}

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------
    def create(self, definition: IndexDefinition) -> None:
        key = (definition.class_name, definition.attribute, definition.kind)
        if key in self._indexes:
            raise QueryError(f"index {definition.display} already exists")
        state = _IndexState(definition, _make_structure(definition))
        self._indexes[key] = state
        self._by_class.clear()

    def drop(
        self, class_name: str, attribute: str, kind: str | None = None
    ) -> None:
        kinds = INDEX_KINDS if kind is None else (kind,)
        for k in kinds:
            self._indexes.pop((class_name, attribute, k), None)
        self._by_class.clear()

    def definitions(self) -> list[IndexDefinition]:
        return [s.definition for s in self._indexes.values()]

    def covers(self, class_name: str) -> bool:
        """True if any index applies to instances of ``class_name``."""
        return bool(self._indexes) and bool(self._states_for(class_name))

    def _states_for(self, class_name: str) -> list[_IndexState]:
        # Lazily cached: a class is covered by an index when it belongs to
        # the index class's family (itself or a transitive subclass).
        states = self._by_class.get(class_name)
        if states is None:
            states = [
                state
                for state in self._indexes.values()
                if class_name in self._family_of(state.definition.class_name)
            ]
            self._by_class[class_name] = states
        return states

    # ------------------------------------------------------------------
    # Maintenance hooks
    # ------------------------------------------------------------------
    def on_update(
        self, class_name: str, oid: Oid, attribute: str, new_value: Any
    ) -> None:
        for state in self._states_for(class_name):
            if state.definition.attribute != attribute:
                continue
            self._move(state, oid, new_value)

    def on_add(self, class_name: str, oid: Oid, attrs: dict[str, Any]) -> None:
        for state in self._states_for(class_name):
            attribute = state.definition.attribute
            if attribute in attrs:
                self._move(state, oid, attrs[attribute])

    def on_remove(self, class_name: str, oid: Oid) -> None:
        for state in self._states_for(class_name):
            old = state.keyed.pop(oid, _MISSING)
            if old is not _MISSING:
                state.tree.delete(old, oid)

    def reindex(self, class_name: str, oid: Oid, attrs: dict[str, Any]) -> None:
        """Drop and re-add all entries for ``oid`` (after txn rollback)."""
        self.on_remove(class_name, oid)
        self.on_add(class_name, oid, attrs)

    def _move(self, state: _IndexState, oid: Oid, new_value: Any) -> None:
        old = state.keyed.get(oid, _MISSING)
        if old is not _MISSING:
            if old == new_value:
                return
            state.tree.delete(old, oid)
        state.tree.insert(new_value, oid)
        state.keyed[oid] = new_value

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, class_name: str, attribute: str, kind: str | None = None
    ) -> "BTree | ExtendibleHashIndex | None":
        state = self._exact(class_name, attribute, kind)
        return state.tree if state else None

    def _exact(
        self, class_name: str, attribute: str, kind: str | None = None
    ) -> _IndexState | None:
        """Exact-class state; ``kind=None`` prefers btree, then hash."""
        kinds = INDEX_KINDS if kind is None else (kind,)
        for k in kinds:
            state = self._indexes.get((class_name, attribute, k))
            if state is not None:
                return state
        return None

    def covering(
        self, class_name: str, attribute: str, kind: str | None = None
    ) -> _IndexState | None:
        """The index state usable for ``attribute`` queries on ``class_name``.

        Unlike :meth:`lookup`, this also finds indexes defined on an
        *ancestor* class: an index on ``Animal.legs`` covers a query over
        the ``Dog`` extent, because index maintenance tracks the whole
        class family.  Exact matches win over inherited ones; ``kind``
        restricts the structure (``None`` prefers btree, then hash).
        """
        state = self._exact(class_name, attribute, kind)
        if state is not None:
            return state
        candidates = [
            state
            for state in self._states_for(class_name)
            if state.definition.attribute == attribute
            and (kind is None or state.kind == kind)
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda s: INDEX_KINDS.index(s.kind))
        return candidates[0]

    def covering_all(
        self, class_name: str, attribute: str
    ) -> list[_IndexState]:
        """Every index state usable for ``attribute`` on ``class_name``,
        one per kind at most (exact-class definitions shadow inherited
        ones).  The planner costs these against each other."""
        out: list[_IndexState] = []
        for kind in INDEX_KINDS:
            state = self._exact(class_name, attribute, kind)
            if state is None:
                for candidate in self._states_for(class_name):
                    if (
                        candidate.definition.attribute == attribute
                        and candidate.kind == kind
                    ):
                        state = candidate
                        break
            if state is not None:
                out.append(state)
        return out

    def find_eq(self, class_name: str, attribute: str, value: Any) -> list[Oid]:
        state = self._exact(class_name, attribute)
        if state is None:
            raise QueryError(f"no index on {class_name}.{attribute}")
        return list(state.tree.search(value))

    def find_range(
        self, class_name: str, attribute: str, low: Any = None, high: Any = None
    ) -> list[Oid]:
        state = self._exact(class_name, attribute, "btree")
        if state is None:
            raise QueryError(
                f"no btree index on {class_name}.{attribute} "
                "(hash indexes cannot serve ranges)"
            )
        tree = state.tree
        assert isinstance(tree, BTree)
        return [oid for _key, oid in tree.range(low, high)]

    def clear(self) -> None:
        for state in self._indexes.values():
            state.tree = _make_structure(state.definition)
            state.keyed.clear()
