"""Runtime lock-order sanitizer: a lockdep-style acquisition recorder.

The static analyzer's SA101 check predicts lock-order inversions from
rule *text*; this module observes them from rule *execution*.  When
enabled (:meth:`LockManager.enable_lockdep` /
:meth:`~repro.oodb.database.Database.enable_lockdep` /
``Sentinel.enable_lockdep``), every first-time lock grant records
ordering edges at **lock-class** granularity: holding a lock of class A
while acquiring one of class B adds the edge A → B.  The moment both
A → B and B → A have been observed — two code paths acquiring the same
two classes in opposite orders, the classic ingredient of an ABBA
deadlock — the recorder reports a **lock-order inversion**:

* a ``lockdep.inversions`` metrics counter increments,
* a ``"lock"`` entry lands in the flight recorder,
* a ``lock_order_inversion`` engine signal fires, which the system
  monitor (when attached) turns into a first-class event ordinary ECA
  rules can react to.

Each unordered class pair warns **once** — like the kernel's lockdep,
the first witness is the actionable one and repeats are noise.

Design constraints, and how they are met:

* **Called under the lock-manager mutex.**  :meth:`note_acquire` runs
  inside :meth:`LockManager.acquire`'s critical section, so it must be
  cheap and must never call out to user-visible code.  It only touches
  the recorder's own structures and *returns* the new inversions; the
  lock manager calls :meth:`report` — the part that emits signals and
  can therefore re-enter the engine — strictly **after** releasing its
  mutex.
* **Class granularity.**  Recording per-OID edges would make the graph
  unbounded and the "inversion" notion meaningless (two transactions
  touching two accounts in opposite orders is normal; two code paths
  ordering *Account* vs *Payroll* both ways is the hazard).  The keyer
  maps an OID to its persistent class name; unresolvable OIDs key as
  ``oid:<n>`` so the recorder never raises from the hot path.
* **Disabled means free.**  ``LockManager.acquire`` reads one attribute
  (``self._lockdep``); when ``None`` nothing else happens.  The ≤5%
  disabled-overhead gate lives in ``benchmarks/test_bench_lockdep.py``.

:meth:`export` serialises the observed graph for
``python -m repro.tools.analyze --lockdep-graph`` which checks every
observed inversion pair against the static SA101 order relation —
runtime evidence validating (or indicting) the static model.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from ..obs.flight import flight_recorder as _flight
from ..obs.metrics import metrics as _metrics
from ..obs.signals import engine_signals as _signals

__all__ = ["LockOrderRecorder"]

#: oid → lock-class key.  Installed by ``Database.enable_lockdep``.
Keyer = Callable[[Any], str]


class LockOrderRecorder:
    """Accumulates the runtime lock-acquisition-order graph.

    Thread-safe: :meth:`note_acquire` is called from every engine thread
    (under the lock manager's mutex); readers (:meth:`edges`,
    :meth:`inversions`, :meth:`export`, the doctor) take the recorder's
    own lock.  The recorder's lock is only ever acquired *after* the
    lock manager's mutex, never before — a fixed order, so the sanitizer
    cannot itself deadlock the machinery it watches.
    """

    __slots__ = ("_keyer", "_lock", "_edges", "_warned", "_inversions")

    def __init__(self, keyer: Keyer | None = None) -> None:
        self._keyer = keyer
        self._lock = threading.Lock()
        #: (held-class, acquired-class) → observation count.
        self._edges: dict[tuple[str, str], int] = {}
        #: Unordered class pairs already reported (warn once).
        self._warned: set[frozenset[str]] = set()
        #: Reported inversions, in discovery order.
        self._inversions: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Hot path (called by LockManager.acquire, under its mutex)
    # ------------------------------------------------------------------
    def key_of(self, oid: Any) -> str:
        """Map an OID to its lock class; never raises."""
        if self._keyer is not None:
            try:
                return self._keyer(oid)
            except Exception:  # pragma: no cover - defensive
                pass
        return f"oid:{oid}"

    def note_acquire(
        self, txn_id: int, oid: Any, held: Iterable[Any]
    ) -> list[dict[str, Any]]:
        """Record ordering edges for one first-time grant.

        ``held`` is the set of OIDs ``txn_id`` already holds.  Returns
        the inversions this grant *newly* exposed (usually empty); the
        caller reports them once it is outside its own critical section.
        """
        new_key = self.key_of(oid)
        found: list[dict[str, Any]] = []
        with self._lock:
            for held_oid in held:
                held_key = self.key_of(held_oid)
                if held_key == new_key:
                    continue
                edge = (held_key, new_key)
                self._edges[edge] = self._edges.get(edge, 0) + 1
                if (new_key, held_key) not in self._edges:
                    continue
                pair = frozenset(edge)
                if pair in self._warned:
                    continue
                self._warned.add(pair)
                inversion = {
                    "first": held_key,
                    "second": new_key,
                    "txn": txn_id,
                }
                self._inversions.append(inversion)
                found.append(inversion)
        return found

    def report(self, found: list[dict[str, Any]]) -> None:
        """Emit the side effects for newly found inversions.

        Called by the lock manager **after** it released its mutex:
        signal sinks can run arbitrary rule code (the system monitor
        raises a first-class event), and doing that while holding the
        lock-table mutex would hand the sanitizer its own deadlock.
        """
        for inversion in found:
            first = str(inversion["first"])
            second = str(inversion["second"])
            _metrics.counter("lockdep.inversions").inc()
            if _flight.enabled:
                _flight.record(
                    "lock",
                    "order_inversion",
                    int(inversion.get("txn", 0)),
                    f"{first} <-> {second}",
                )
            if _signals.active:
                _signals.emit(
                    "lock_order_inversion",
                    first=first,
                    second=second,
                    txn_id=int(inversion.get("txn", 0)),
                )

    # ------------------------------------------------------------------
    # Introspection (any thread)
    # ------------------------------------------------------------------
    def edges(self) -> dict[tuple[str, str], int]:
        """A copy of the observed order graph (edge → count)."""
        with self._lock:
            return dict(self._edges)

    def inversions(self) -> list[dict[str, Any]]:
        """The reported inversions, in discovery order (copies)."""
        with self._lock:
            return [dict(i) for i in self._inversions]

    def export(self) -> dict[str, Any]:
        """JSON-ready snapshot for ``tools.analyze --lockdep-graph``."""
        with self._lock:
            return {
                "edges": [
                    {"src": src, "dst": dst, "count": count}
                    for (src, dst), count in sorted(self._edges.items())
                ],
                "inversions": [dict(i) for i in self._inversions],
            }

    def stats(self) -> dict[str, int]:
        """Summary counts for the doctor bundle."""
        with self._lock:
            return {
                "order_edges": len(self._edges),
                "inversions": len(self._inversions),
            }
