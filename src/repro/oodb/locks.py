"""Per-object shared/exclusive locks with deadlock detection.

The lock manager grants shared (read) and exclusive (write) locks on OIDs
to transactions.  Blocked requests register edges in a wait-for graph; a
cycle through the requesting transaction raises
:class:`~repro.oodb.errors.DeadlockDetected` immediately, and a configurable
timeout guards against undetected stalls.

Single-threaded callers never block, so the common path is cheap; the
machinery exists so that the substrate honestly supports the paper's claim
that rules and events are "subject to the same transaction semantics" as
other objects even under concurrency.

Edge hygiene: a waiter registers its outgoing wait-for edges only while it
is actually blocked, and *always* unregisters them before ``acquire``
raises — whether it lost a deadlock check, timed out, or the wait itself
failed.  A phantom edge left behind by an aborted waiter would make later
cycle checks see deadlocks that are not there; :meth:`waiting_edges`
exposes the live graph so tests (and the doctor) can assert it drains to
empty.

An optional lock-order sanitizer (:mod:`repro.oodb.lockdep`) can be
attached via :meth:`LockManager.enable_lockdep`; when absent the only
cost on :meth:`LockManager.acquire` is one attribute read.
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from dataclasses import dataclass, field

from typing import TYPE_CHECKING, Any, Callable

from .errors import DeadlockDetected, LockTimeout
from .oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from .lockdep import LockOrderRecorder

__all__ = ["LockMode", "LockManager"]


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) access to one object."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass(slots=True)
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)

    def compatible(self, txn_id: int, mode: LockMode) -> bool:
        others = {t: m for t, m in self.holders.items() if t != txn_id}
        if not others:
            return True
        if mode is LockMode.SHARED:
            return all(m is LockMode.SHARED for m in others.values())
        return False

    def conflicting_holders(self, txn_id: int, mode: LockMode) -> set[int]:
        if mode is LockMode.SHARED:
            return {
                t
                for t, m in self.holders.items()
                if t != txn_id and m is LockMode.EXCLUSIVE
            }
        return {t for t in self.holders if t != txn_id}


class LockManager:
    """Strict two-phase lock manager over OIDs."""

    def __init__(self, timeout: float = 5.0) -> None:
        self._timeout = timeout
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._locks: dict[Oid, _LockState] = {}
        self._held: dict[int, set[Oid]] = defaultdict(set)
        self._waits_for: dict[int, set[int]] = {}
        # Optional lock-order sanitizer; None keeps acquire() at one
        # extra attribute read (the ≤5% disabled-overhead contract).
        self._lockdep: "LockOrderRecorder | None" = None

    # ------------------------------------------------------------------
    # Acquisition / release
    # ------------------------------------------------------------------
    def acquire(
        self, txn_id: int, oid: Oid, mode: LockMode, timeout: float | None = None
    ) -> None:
        """Grant ``mode`` on ``oid`` to ``txn_id``, blocking if needed.

        Lock upgrades (shared → exclusive by the same transaction) are
        supported and follow the same conflict rules.  ``timeout``
        overrides the manager-wide timeout for this request.

        Exits only in two states: the lock is held and ``txn_id`` has no
        outgoing wait-for edges, or an exception propagates and ``txn_id``
        has no outgoing wait-for edges.  The cleanup wraps the *whole*
        wait loop, so no exit path — deadlock abort, timeout, or an
        unexpected error mid-wait — can strand a phantom edge for later
        cycle checks to trip over.
        """
        wait_budget = self._timeout if timeout is None else timeout
        recorder = self._lockdep
        inversions: list[dict[str, Any]] = []
        with self._condition:
            state = self._locks.get(oid)
            if state is None:
                state = self._locks[oid] = _LockState()
            current = state.holders.get(txn_id)
            if current is LockMode.EXCLUSIVE or current is mode:
                return
            try:
                while not state.compatible(txn_id, mode):
                    blockers = state.conflicting_holders(txn_id, mode)
                    self._waits_for[txn_id] = blockers
                    if self._would_deadlock(txn_id):
                        raise DeadlockDetected(
                            f"txn {txn_id} would deadlock waiting for "
                            f"{sorted(blockers)} on {oid}"
                        )
                    if not self._condition.wait(timeout=wait_budget):
                        raise LockTimeout(
                            f"txn {txn_id} timed out after {wait_budget}s "
                            f"waiting for {mode.value} lock on {oid}"
                        )
                    state = self._locks.get(oid)
                    if state is None:
                        state = self._locks[oid] = _LockState()
            finally:
                # Always drop this waiter's edges — on grant *and* on every
                # raising path — so the graph only ever holds edges of
                # transactions that are still blocked.
                self._waits_for.pop(txn_id, None)
            if recorder is not None and oid not in self._held[txn_id]:
                # First-time grant (not an upgrade): record ordering
                # edges now, but emit — which can re-enter the engine —
                # only after the mutex is gone.
                inversions = recorder.note_acquire(
                    txn_id, oid, self._held[txn_id]
                )
            state.holders[txn_id] = mode
            self._held[txn_id].add(oid)
        if inversions and recorder is not None:
            recorder.report(inversions)

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/abort time)."""
        with self._condition:
            for oid in self._held.pop(txn_id, set()):
                state = self._locks.get(oid)
                if state is None:
                    continue
                state.holders.pop(txn_id, None)
                if not state.holders:
                    del self._locks[oid]
            self._waits_for.pop(txn_id, None)
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holds(self, txn_id: int, oid: Oid) -> LockMode | None:
        with self._mutex:
            state = self._locks.get(oid)
            return None if state is None else state.holders.get(txn_id)

    def held_by(self, txn_id: int) -> set[Oid]:
        with self._mutex:
            return set(self._held.get(txn_id, set()))

    def waiting_edges(self) -> dict[int, set[int]]:
        """A copy of the live wait-for graph (waiter → blockers).

        Non-empty entries exist only while their waiter is actually
        blocked inside :meth:`acquire`; after every grant, timeout, or
        deadlock abort the waiter's entry is gone.  Tests use this to
        assert no phantom edges survive an aborted wait.
        """
        with self._mutex:
            return {t: set(b) for t, b in self._waits_for.items()}

    def lock_table_size(self) -> int:
        """Number of OIDs with at least one holder (leak detection)."""
        with self._mutex:
            return len(self._locks)

    def stats(self) -> dict[str, int]:
        """Lock-table summary counts (doctor bundle, tests)."""
        with self._mutex:
            return {
                "locked_oids": len(self._locks),
                "holding_txns": sum(1 for s in self._held.values() if s),
                "held_locks": sum(len(s) for s in self._held.values()),
                "waiting_txns": len(self._waits_for),
            }

    # ------------------------------------------------------------------
    # Lock-order sanitizer (repro.oodb.lockdep)
    # ------------------------------------------------------------------
    @property
    def lockdep(self) -> "LockOrderRecorder | None":
        """The attached lock-order recorder, if any."""
        return self._lockdep

    def enable_lockdep(
        self, keyer: Callable[[Oid], str] | None = None
    ) -> "LockOrderRecorder":
        """Attach (or return the existing) lock-order recorder.

        ``keyer`` maps an OID to its lock class; without one, every OID
        is its own class and inversion detection degenerates to exact
        object pairs — callers normally go through
        ``Database.enable_lockdep`` which supplies a class-name keyer.
        """
        if self._lockdep is None:
            from .lockdep import LockOrderRecorder

            self._lockdep = LockOrderRecorder(keyer)
        return self._lockdep

    def disable_lockdep(self) -> None:
        """Detach the recorder; acquisition goes back to the bare path."""
        self._lockdep = None

    # ------------------------------------------------------------------
    # Deadlock detection
    # ------------------------------------------------------------------
    def _would_deadlock(self, start: int) -> bool:
        """DFS over the wait-for graph looking for a cycle through start."""
        seen: set[int] = set()
        frontier = list(self._waits_for.get(start, ()))
        while frontier:
            txn = frontier.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            frontier.extend(self._waits_for.get(txn, ()))
        return False
