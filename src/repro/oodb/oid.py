"""Object identifiers.

Every persistent object is named by an :class:`Oid` — an immutable,
totally-ordered surrogate identifier.  OIDs are allocated by an
:class:`OidAllocator`, which the database persists so that identifiers are
never reused across restarts.

The paper's event messages carry ``Oid + Class + Method + parameters +
timestamp``; the OID here is that first component.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator

from .errors import DuplicateOid

__all__ = ["Oid", "OidAllocator", "NULL_OID"]


@dataclass(frozen=True, order=True, slots=True)
class Oid:
    """An immutable surrogate identifier for a persistent object.

    OIDs compare and hash by value, so they can key dictionaries, appear in
    index entries, and be embedded in serialized records.
    """

    value: int

    def __hash__(self) -> int:
        # Hash the value directly; the generated frozen-dataclass hash
        # builds a one-element tuple per call, and OIDs key every hot
        # dictionary in the store.
        return hash(self.value)

    def __post_init__(self) -> None:
        if not isinstance(self.value, int):
            raise TypeError(f"Oid value must be int, got {type(self.value).__name__}")
        if self.value < 0:
            raise ValueError(f"Oid value must be non-negative, got {self.value}")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Oid({self.value})"

    def __str__(self) -> str:
        return f"@{self.value}"

    @property
    def is_null(self) -> bool:
        """True for the distinguished null OID (never assigned to an object)."""
        return self.value == 0

    @classmethod
    def parse(cls, text: str) -> "Oid":
        """Parse the ``@<n>`` form produced by :meth:`__str__`."""
        body = text[1:] if text.startswith("@") else text
        return cls(int(body))


#: The distinguished "no object" identifier.
NULL_OID = Oid(0)


class OidAllocator:
    """Thread-safe monotonic OID allocator.

    The allocator hands out OIDs starting at 1 (0 is reserved for
    :data:`NULL_OID`).  Its high-water mark is stored in the database
    catalog at checkpoint so that restart never re-issues an identifier.
    """

    def __init__(self, next_value: int = 1) -> None:
        if next_value < 1:
            raise ValueError("next_value must be >= 1")
        self._next = next_value
        self._lock = threading.Lock()

    def allocate(self) -> Oid:
        """Return a fresh, never-before-issued OID."""
        with self._lock:
            oid = Oid(self._next)
            self._next += 1
        return oid

    def allocate_many(self, count: int) -> list[Oid]:
        """Allocate ``count`` consecutive OIDs in one lock acquisition."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            start = self._next
            self._next += count
        return [Oid(v) for v in range(start, start + count)]

    def reserve(self, oid: Oid) -> None:
        """Mark ``oid`` as used (restart recovery replays allocations).

        Raises :class:`DuplicateOid` if the identifier was already handed
        out *and* the caller asked to reserve it again below the high-water
        mark — reservations must be replayed in order.
        """
        with self._lock:
            if oid.value >= self._next:
                self._next = oid.value + 1

    def peek(self) -> int:
        """Return the next value that :meth:`allocate` would produce."""
        with self._lock:
            return self._next

    def snapshot(self) -> int:
        """Value to persist at checkpoint time (same as :meth:`peek`)."""
        return self.peek()

    @classmethod
    def restore(cls, snapshot: int) -> "OidAllocator":
        """Rebuild an allocator from a persisted snapshot."""
        return cls(max(1, snapshot))

    def __iter__(self) -> Iterator[Oid]:
        """Yield an endless stream of fresh OIDs (generator convenience)."""
        while True:
            yield self.allocate()
