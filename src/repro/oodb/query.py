"""Queries over class extents, executed through a cost-aware planner.

A :class:`Query` selects instances of a persistent class (by default
including subclasses), filters them with attribute comparisons or arbitrary
predicates, and sorts/limits the result.  Execution is planned per run:

* every indexable filter (``== < <= > >=`` on an indexed attribute) is
  scored by estimated selectivity plus a per-structure probe cost — an
  extendible hash index answers ``==`` in one probe, a B-tree descends
  O(log n) nodes, so when both kinds cover an attribute the hash wins
  point lookups; the cheapest choice becomes the access path and the
  other selective ones are intersected as OID sets, with the rest applied
  as residual filters.  Hash indexes are equality-only: range filters and
  ``order_by`` never use them,
* ``order_by`` on an indexed attribute streams from the B-tree in key
  order instead of sorting, so ``limit(k)`` stops after ~k fetches,
* ``count()`` and ``exists()`` are answered from the index alone when no
  residual work remains — no object is materialized,
* everything else falls back to a clustered extent scan
  (:meth:`~repro.oodb.database.Database.fetch_many` batches).

The plan is a per-execution value object — building or running a query
never mutates the builder, so a ``Query`` can be iterated repeatedly.
:meth:`Query.explain` returns the plan without executing it;
``explain(analyze=True)`` *executes* the query through an instrumented
twin of the normal pipeline and returns an :class:`AnalyzedPlan` — the
plan plus measured per-stage numbers (rows scanned vs. estimated, index
probes, ``fetch_many`` page pins, buffer hit rate, residual-filter
drops, wall time per stage), so planner mis-estimates are visible.
Setting ``db.profile_queries = True`` (or opening the slow-op log)
routes every execution through the instrumented path; the most recent
result is kept on ``db.last_query_profile`` and slow executions land in
:mod:`repro.obs.slowlog` with their analyzed plan attached.

Example::

    rich = (
        db.query(Employee)
        .where_op("salary", ">=", 100_000)
        .order_by("name")
        .all()
    )
    print(db.query(Employee).where_op("salary", ">=", 100_000).explain())
"""

from __future__ import annotations

import math
import operator
from contextlib import nullcontext
from dataclasses import dataclass, fields
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from ..obs.flight import flight_recorder as _flight
from ..obs.metrics import metrics
from ..obs.slowlog import slow_op_log as _slowlog
from .errors import QueryError
from .index import BTree
from .oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database
    from .index import _IndexState
    from .schema import Persistent

__all__ = [
    "Query",
    "QueryPlan",
    "IndexChoice",
    "AnalyzedPlan",
    "ExecutionStats",
]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda a, b: a in b,
    "contains": lambda a, b: b in a,
}

#: Operators a B-tree can serve directly.
_INDEXABLE_OPS = frozenset(("==", "<", "<=", ">", ">="))

#: An extra index joins the OID intersection only if its estimated result
#: is below max(this floor, a quarter of the extent) — scanning a huge
#: index posting list to intersect it away is worse than re-checking the
#: filter on the already-small primary result.
_INTERSECT_MIN_ROWS = 64

#: Objects fetched per ``fetch_many`` batch while streaming candidates.
_FETCH_CHUNK = 64

_MISSING = object()

# Lazily-created labeled counters, one per access path.
_exec_counters: dict[str, Any] = {}


def _count_execution(access_path: str) -> None:
    counter = _exec_counters.get(access_path)
    if counter is None:
        counter = _exec_counters[access_path] = metrics.counter(
            f"query_executions{{access_path={access_path}}}"
        )
    counter.inc()


#: Modeled cost of one probe, in row-fetch units: a hash point lookup is
#: one directory load plus one bucket hit, a B-tree descends ~log2(n)
#: nodes.  Added to the row estimate when scoring candidate indexes, so
#: with both kinds on an attribute the hash wins equality lookups.
_HASH_PROBE_COST = 0.5


def _probe_cost(state: "_IndexState") -> float:
    if state.kind == "hash":
        return _HASH_PROBE_COST
    return math.log2(len(state.tree) + 2)


@dataclass(frozen=True, slots=True)
class IndexChoice:
    """One filter the planner decided to serve from an index."""

    attribute: str
    op: str
    value: Any
    index_name: str
    estimated_rows: int
    kind: str = "btree"
    cost: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.kind}:{self.index_name} "
            f"({self.attribute} {self.op} {self.value!r}),"
            f" est ~{self.estimated_rows} rows"
        )


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """The access strategy chosen for one execution of a query.

    ``access_path`` is one of ``extent_scan`` (sorted-OID scan of the class
    extent), ``index_eq`` / ``index_range`` (one B-tree serves the primary
    filter), ``hash_eq`` (an extendible hash index serves the primary
    equality filter), ``index_intersect`` (several indexes, OID sets
    intersected) or ``index_order`` (no indexable filter, but ``order_by``
    streams from a B-tree).  ``sort_needed`` is False when the access path
    already yields the requested order; ``index_only`` marks plans whose
    ``count()`` / ``exists()`` never materialize an object.
    """

    class_name: str
    include_subclasses: bool
    access_path: str
    index_filters: tuple[IndexChoice, ...]
    residual_filters: tuple[tuple[str, str, Any], ...]
    predicates: int
    order: tuple[str, bool] | None
    sort_needed: bool
    index_only: bool
    limit: int | None
    estimated_rows: int
    extent_size: int

    def describe(self) -> str:
        subclasses = "included" if self.include_subclasses else "excluded"
        lines = [f"query plan: {self.class_name} (subclasses {subclasses})"]
        if self.index_filters:
            primary, *rest = self.index_filters
            lines.append(f"  access: {self.access_path} via {primary.describe()}")
            for choice in rest:
                lines.append(f"  intersect: {choice.describe()}")
        else:
            lines.append(
                f"  access: {self.access_path}, {self.extent_size} extent rows"
            )
        for attribute, op, value in self.residual_filters:
            lines.append(f"  residual: {attribute} {op} {value!r}")
        if self.predicates:
            lines.append(f"  predicates: {self.predicates}")
        if self.order is not None:
            attribute, descending = self.order
            direction = "desc" if descending else "asc"
            how = "sorted in memory" if self.sort_needed else "streamed in key order"
            lines.append(f"  order: {attribute} {direction} ({how})")
        if self.limit is not None:
            lines.append(f"  limit: {self.limit}")
        lines.append(
            f"  index-only count/exists: {'yes' if self.index_only else 'no'}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()

    def to_json(self) -> dict[str, Any]:
        """The plan as JSON-safe primitives (filter values ``repr``-ed)."""
        return {
            "class_name": self.class_name,
            "include_subclasses": self.include_subclasses,
            "access_path": self.access_path,
            "index_filters": [
                {
                    "attribute": c.attribute,
                    "op": c.op,
                    "value": repr(c.value),
                    "index": c.index_name,
                    "kind": c.kind,
                    "estimated_rows": c.estimated_rows,
                }
                for c in self.index_filters
            ],
            "residual_filters": [
                [attribute, op, repr(value)]
                for attribute, op, value in self.residual_filters
            ],
            "predicates": self.predicates,
            "order": (
                None
                if self.order is None
                else {"attribute": self.order[0], "descending": self.order[1]}
            ),
            "sort_needed": self.sort_needed,
            "index_only": self.index_only,
            "limit": self.limit,
            "estimated_rows": self.estimated_rows,
            "extent_size": self.extent_size,
        }


@dataclass(slots=True)
class ExecutionStats:
    """Measured per-stage numbers from one instrumented execution.

    Counters cover the four pipeline stages (access → fetch → filter →
    sort); ``*_us`` fields are the wall time spent inside each.  In
    streaming executions (no in-memory sort) a ``limit`` stops the
    pipeline early, exactly like the uninstrumented path, so the counts
    reflect the work actually done.
    """

    candidates: int = 0        # OIDs the access path yielded ("rows scanned")
    fetched: int = 0           # objects materialized via fetch_many
    residual_dropped: int = 0  # fetched objects the residual filters rejected
    returned: int = 0          # rows the query produced
    index_probes: int = 0      # index lookups performed by the access path
    page_pins: int = 0         # fetch_many page pins (heap pages touched)
    buffer_hits: int = 0       # buffer-pool hits during this execution
    buffer_misses: int = 0     # buffer-pool misses (disk reads)
    access_us: float = 0.0
    fetch_us: float = 0.0
    filter_us: float = 0.0
    sort_us: float = 0.0
    total_us: float = 0.0

    @property
    def buffer_hit_rate(self) -> float:
        touched = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / touched if touched else 0.0

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["buffer_hit_rate"] = round(self.buffer_hit_rate, 4)
        for name in ("access_us", "fetch_us", "filter_us", "sort_us", "total_us"):
            out[name] = round(out[name], 1)
        return out


class AnalyzedPlan:
    """A :class:`QueryPlan` plus the numbers one execution actually saw.

    Returned by ``Query.explain(analyze=True)`` and kept on
    ``db.last_query_profile`` when profiling is on.  ``describe()``
    renders the plan with an ``analyze:`` section putting actuals next
    to the planner's estimates; ``to_json()`` is the machine-readable
    twin (it is what the slow-op log embeds).
    """

    __slots__ = ("plan", "stats")

    def __init__(self, plan: QueryPlan, stats: ExecutionStats) -> None:
        self.plan = plan
        self.stats = stats

    def describe(self) -> str:
        plan, s = self.plan, self.stats
        est, scanned = plan.estimated_rows, s.candidates
        rows = f"  rows: est ~{est}, scanned {scanned}, returned {s.returned}"
        hi, lo = max(est, scanned), max(1, min(est, scanned))
        if hi >= 8 and hi / lo >= 4:
            rows += f" (misestimate {hi / lo:.0f}x)"
        if s.buffer_hits or s.buffer_misses:
            buffer = (
                f"  buffer pool: {s.buffer_hits} hits / {s.buffer_misses} "
                f"misses ({s.buffer_hit_rate * 100:.1f}% hit rate)"
            )
        else:
            buffer = "  buffer pool: untouched"
        lines = [
            plan.describe(),
            "analyze:",
            rows,
            f"  index probes: {s.index_probes}",
            f"  fetch: {s.fetched} objects, {s.page_pins} page pins",
            buffer,
            f"  residual filter: dropped {s.residual_dropped}",
            (
                f"  time: access {s.access_us:.1f}µs, "
                f"fetch {s.fetch_us:.1f}µs, filter {s.filter_us:.1f}µs, "
                f"sort {s.sort_us:.1f}µs, total {s.total_us:.1f}µs"
            ),
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()

    def to_json(self) -> dict[str, Any]:
        return {"plan": self.plan.to_json(), "actual": self.stats.to_json()}


class Query:
    """A lazily-evaluated selection over one class extent."""

    def __init__(
        self,
        db: "Database",
        cls: type | str,
        include_subclasses: bool = True,
    ) -> None:
        self._db = db
        self._class_name = cls if isinstance(cls, str) else getattr(
            cls, "_p_class_name", None
        )
        if self._class_name is None:
            raise QueryError(f"{cls!r} is not a persistent class")
        if self._class_name not in db.registry:
            raise QueryError(f"unknown persistent class {self._class_name!r}")
        self._include_subclasses = include_subclasses
        self._attr_filters: list[tuple[str, str, Any]] = []
        self._predicates: list[Callable[[Any], bool]] = []
        self._order: tuple[str, bool] | None = None
        self._limit: int | None = None

    # ------------------------------------------------------------------
    # Builders (each returns self for chaining)
    # ------------------------------------------------------------------
    def where(self, predicate: Callable[[Any], bool]) -> "Query":
        """Keep objects for which ``predicate(obj)`` is true."""
        self._predicates.append(predicate)
        return self

    def where_eq(self, attribute: str, value: Any) -> "Query":
        """Attribute equality (uses an index when one exists)."""
        return self.where_op(attribute, "==", value)

    def where_op(self, attribute: str, op: str, value: Any) -> "Query":
        """Attribute comparison with one of ``== != < <= > >= in contains``."""
        if op not in _OPS:
            raise QueryError(
                f"unknown operator {op!r}; expected one of {sorted(_OPS)}"
            )
        self._attr_filters.append((attribute, op, value))
        return self

    def order_by(self, attribute: str, descending: bool = False) -> "Query":
        self._order = (attribute, descending)
        return self

    def limit(self, count: int) -> "Query":
        if count < 0:
            raise QueryError("limit must be non-negative")
        self._limit = count
        return self

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def explain(self, analyze: bool = False) -> QueryPlan | AnalyzedPlan:
        """The plan this query would execute with.

        With ``analyze=False`` (the default) the plan is returned
        without executing anything.  With ``analyze=True`` the query is
        *executed* through the instrumented pipeline and the returned
        :class:`AnalyzedPlan` carries the measured per-stage numbers
        next to the planner's estimates.
        """
        plan = self._prepare()
        if not analyze:
            return plan
        _rows, stats = self._run_analyzed(plan)
        return AnalyzedPlan(plan, stats)

    def _wanted(self) -> set[Oid]:
        """The extent the query selects from (fresh set, built on demand)."""
        return self._db.extents.of(self._class_name, self._include_subclasses)

    def _prepare(self) -> QueryPlan:
        db = self._db
        if db.locking:
            # Extent sets and index trees are shared with concurrent
            # writers; plan estimates read them under the state lock.
            with db._state_lock:
                return self._prepare_unlocked()
        return self._prepare_unlocked()

    def _prepare_unlocked(self) -> QueryPlan:
        db = self._db
        extent_size = db.extents.count(
            self._class_name, self._include_subclasses
        )
        order = self._order

        choices: list[IndexChoice] = []
        residual: list[tuple[str, str, Any]] = []
        for attribute, op, value in self._attr_filters:
            states = (
                db.indexes.covering_all(self._class_name, attribute)
                if op in _INDEXABLE_OPS
                else []
            )
            if op != "==":
                # Hash indexes are unordered and equality-only; a range
                # comparison must come from a B-tree or not at all.
                states = [s for s in states if s.kind == "btree"]
            best: IndexChoice | None = None
            for state in states:
                tree = state.tree
                if op == "==":
                    estimate = tree.count_key(value)
                else:
                    assert isinstance(tree, BTree)
                    if op in ("<", "<="):
                        estimate = tree.estimate_range_count(None, value)
                    else:
                        estimate = tree.estimate_range_count(value, None)
                cost = estimate + _probe_cost(state)
                if best is None or cost < best.cost:
                    best = IndexChoice(
                        attribute,
                        op,
                        value,
                        state.definition.name,
                        estimate,
                        state.kind,
                        cost,
                    )
            if best is None:
                residual.append((attribute, op, value))
            else:
                choices.append(best)

        order_satisfied = False
        if choices:
            choices.sort(key=lambda c: (c.cost, c.attribute, c.op))
            primary = choices[0]
            cap = max(_INTERSECT_MIN_ROWS, extent_size // 4)
            secondary: list[IndexChoice] = []
            for choice in choices[1:]:
                if choice.estimated_rows <= cap:
                    secondary.append(choice)
                else:
                    residual.append((choice.attribute, choice.op, choice.value))
            index_filters = (primary, *secondary)
            if secondary:
                access_path = "index_intersect"
            elif primary.op == "==":
                access_path = "hash_eq" if primary.kind == "hash" else "index_eq"
            else:
                access_path = "index_range"
            order_satisfied = (
                order is not None
                and not secondary
                and primary.attribute == order[0]
            )
            estimated_rows = primary.estimated_rows
        else:
            index_filters = ()
            if order is not None and (
                db.indexes.covering(self._class_name, order[0], kind="btree")
                is not None
            ):
                access_path = "index_order"
                order_satisfied = True
            else:
                access_path = "extent_scan"
            estimated_rows = extent_size

        plan = QueryPlan(
            class_name=self._class_name,
            include_subclasses=self._include_subclasses,
            access_path=access_path,
            index_filters=index_filters,
            residual_filters=tuple(residual),
            predicates=len(self._predicates),
            order=order,
            sort_needed=order is not None and not order_satisfied,
            index_only=(
                not self._predicates
                and not residual
                and (bool(index_filters) or not self._attr_filters)
            ),
            limit=self._limit,
            estimated_rows=estimated_rows,
            extent_size=extent_size,
        )
        return plan

    def _note_execution(self, plan: QueryPlan) -> None:
        _count_execution(plan.access_path)
        if plan.index_filters:
            metrics.counter("index_hits").inc(len(plan.index_filters))
        elif plan.access_path == "index_order":
            metrics.counter("index_hits").inc()
        if _flight.enabled:
            _flight.record(
                "query",
                plan.class_name,
                plan.estimated_rows,
                plan.access_path,
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator["Persistent"]:
        plan = self._prepare()
        if self._db.profile_queries or _slowlog.enabled:
            return iter(self._profiled_execute(plan))
        return self._execute(plan)

    def _execute(self, plan: QueryPlan) -> Iterator["Persistent"]:
        self._note_execution(plan)
        passes = self._effective_passes(plan)
        candidates = self._collect_candidates(plan)
        if plan.sort_needed:
            assert plan.order is not None
            attribute, descending = plan.order
            present: list["Persistent"] = []
            absent: list["Persistent"] = []
            for obj in self._fetch_stream(candidates):
                if not passes(obj):
                    continue
                if getattr(obj, attribute, _MISSING) is _MISSING:
                    absent.append(obj)
                else:
                    present.append(obj)
            present.sort(
                key=lambda obj: getattr(obj, attribute), reverse=descending
            )
            # Objects without the sort attribute always sort last — the
            # counterpart of filters treating a missing attribute as a
            # non-match rather than an error.
            objects: Iterator["Persistent"] = iter(present + absent)
        else:
            objects = (
                obj for obj in self._fetch_stream(candidates) if passes(obj)
            )
        if plan.limit is not None:
            objects = _take(objects, plan.limit)
        return objects

    # ------------------------------------------------------------------
    # Instrumented execution (EXPLAIN ANALYZE / profiling / slow-op log)
    # ------------------------------------------------------------------
    def _profiled_execute(self, plan: QueryPlan) -> list["Persistent"]:
        """Execute through the instrumented pipeline, keep the evidence."""
        rows, stats = self._run_analyzed(plan)
        analyzed = AnalyzedPlan(plan, stats)
        self._db.last_query_profile = analyzed
        if _slowlog.enabled and stats.total_us >= _slowlog.slow_query_us:
            threshold = _slowlog.slow_query_us
            _slowlog.record(
                "query",
                stats.total_us,
                threshold,
                signal="query_slow",
                signal_payload={
                    "class_name": plan.class_name,
                    "access_path": plan.access_path,
                    "micros": stats.total_us,
                    "threshold_us": threshold,
                },
                access_path=plan.access_path,
                rows=stats.returned,
                plan=analyzed.to_json(),
                **{"class": plan.class_name},
            )
        return rows

    def _run_analyzed(
        self, plan: QueryPlan
    ) -> tuple[list["Persistent"], ExecutionStats]:
        """The instrumented twin of :meth:`_execute`.

        Same stages, same results, same early termination on ``limit``
        (when no in-memory sort forces full materialization) — but every
        stage boundary is timed and counted.  The per-row ``perf_counter``
        bracketing costs a few hundred ns/row, which is why this path is
        opt-in (``analyze=True`` / ``profile_queries`` / open slow-op log)
        rather than the default.
        """
        stats = ExecutionStats()
        total0 = perf_counter()
        self._note_execution(plan)
        stats.index_probes = len(plan.index_filters) or (
            1 if plan.access_path == "index_order" else 0
        )
        pool = getattr(self._db, "_pool", None)
        if pool is not None:
            hits0, misses0 = pool.stats.hits, pool.stats.misses
        pins = metrics.counter("fetch_many_page_pins")
        pins0 = pins.value

        passes = self._effective_passes(plan)
        candidates = self._timed_oids(
            iter(self._collect_candidates(plan)), stats
        )
        out: list["Persistent"] = []
        if plan.sort_needed:
            assert plan.order is not None
            attribute, descending = plan.order
            present: list["Persistent"] = []
            absent: list["Persistent"] = []
            for obj in self._timed_fetch(candidates, stats):
                t0 = perf_counter()
                ok = passes(obj)
                stats.filter_us += (perf_counter() - t0) * 1e6
                if not ok:
                    stats.residual_dropped += 1
                    continue
                if getattr(obj, attribute, _MISSING) is _MISSING:
                    absent.append(obj)
                else:
                    present.append(obj)
            t0 = perf_counter()
            present.sort(
                key=lambda obj: getattr(obj, attribute), reverse=descending
            )
            stats.sort_us = (perf_counter() - t0) * 1e6
            out = present + absent
            if plan.limit is not None:
                out = out[: plan.limit]
        elif plan.limit != 0:
            for obj in self._timed_fetch(candidates, stats):
                t0 = perf_counter()
                ok = passes(obj)
                stats.filter_us += (perf_counter() - t0) * 1e6
                if not ok:
                    stats.residual_dropped += 1
                    continue
                out.append(obj)
                if plan.limit is not None and len(out) >= plan.limit:
                    break

        stats.returned = len(out)
        stats.page_pins = pins.value - pins0
        if pool is not None:
            stats.buffer_hits = pool.stats.hits - hits0
            stats.buffer_misses = pool.stats.misses - misses0
        stats.total_us = (perf_counter() - total0) * 1e6
        return out, stats

    def _timed_oids(
        self, oids: Iterator[Oid], stats: ExecutionStats
    ) -> Iterator[Oid]:
        """Pass OIDs through, charging generator time to the access stage."""
        while True:
            t0 = perf_counter()
            try:
                oid = next(oids)
            except StopIteration:
                stats.access_us += (perf_counter() - t0) * 1e6
                return
            stats.access_us += (perf_counter() - t0) * 1e6
            stats.candidates += 1
            yield oid

    def _timed_fetch(
        self, oids: Iterable[Oid], stats: ExecutionStats
    ) -> Iterator["Persistent"]:
        """:meth:`_fetch_stream` with the fetch stage timed and counted."""
        db = self._db
        snap = self._ambient_snapshot()
        if snap is not None:
            for oid in oids:
                t0 = perf_counter()
                obj = snap.fetch_or_none(oid)
                stats.fetch_us += (perf_counter() - t0) * 1e6
                if obj is not None:
                    stats.fetched += 1
                    yield obj
            return
        batch: list[Oid] = []
        for oid in oids:
            batch.append(oid)
            if len(batch) >= _FETCH_CHUNK:
                t0 = perf_counter()
                objects = db.fetch_many(batch)
                stats.fetch_us += (perf_counter() - t0) * 1e6
                stats.fetched += len(objects)
                yield from objects
                batch = []
        if batch:
            t0 = perf_counter()
            objects = db.fetch_many(batch)
            stats.fetch_us += (perf_counter() - t0) * 1e6
            stats.fetched += len(objects)
            yield from objects

    def _residual_passes(self, plan: QueryPlan) -> Callable[[Any], bool]:
        # Bind the comparator tuples now: generator pipelines evaluate
        # lazily, so closing over loop variables directly would apply only
        # the last filter to every stage.
        attr_filters = [
            (attribute, _OPS[op], value)
            for attribute, op, value in plan.residual_filters
        ]
        predicates = list(self._predicates)

        def passes(obj: Any) -> bool:
            for attribute, compare, value in attr_filters:
                attr_value = getattr(obj, attribute, _MISSING)
                if attr_value is _MISSING or not compare(attr_value, value):
                    return False
            return all(predicate(obj) for predicate in predicates)

        return passes

    def _ambient_snapshot(self) -> "Any | None":
        db = self._db
        if db._snapshots_active:
            return db._ambient_snapshot()
        return None

    def _shared_state(self) -> "Any":
        """The database state lock when writers run concurrently, else a
        no-op context — index-only terminals read trees under it."""
        db = self._db
        if db.locking:
            return db._state_lock
        return nullcontext()

    def _effective_passes(self, plan: QueryPlan) -> Callable[[Any], bool]:
        """The residual filter, plus index-filter re-checks under snapshots.

        Index lookups match *current* committed values, but a snapshot
        copy carries the values as of the snapshot watermark — so inside
        ``with db.snapshot():`` every index-applied comparison is
        re-applied against the fetched copy.
        """
        residual = self._residual_passes(plan)
        if not plan.index_filters or self._ambient_snapshot() is None:
            return residual
        checks = [
            (choice.attribute, _OPS[choice.op], choice.value)
            for choice in plan.index_filters
        ]

        def passes(obj: Any) -> bool:
            for attribute, compare, value in checks:
                attr_value = getattr(obj, attribute, _MISSING)
                if attr_value is _MISSING or not compare(attr_value, value):
                    return False
            return residual(obj)

        return passes

    # ------------------------------------------------------------------
    # Candidate generation (index-aware)
    # ------------------------------------------------------------------
    def _collect_candidates(self, plan: QueryPlan) -> Iterable[Oid]:
        """Candidate OIDs; eagerly materialized under the state lock when
        concurrent writers may mutate the extents and index trees the lazy
        generators walk."""
        db = self._db
        if db.locking:
            with db._state_lock:
                return list(self._candidate_oids(plan, self._wanted()))
        return self._candidate_oids(plan, self._wanted())

    def _candidate_oids(
        self, plan: QueryPlan, wanted: set[Oid]
    ) -> Iterator[Oid]:
        if plan.access_path == "extent_scan":
            return iter(sorted(wanted))
        if plan.access_path == "index_order":
            return self._ordered_extent_oids(plan, wanted)
        primary = plan.index_filters[0]
        if len(plan.index_filters) > 1:
            oid_set = self._index_candidate_set(plan, wanted)
            return iter(sorted(oid_set))
        reverse = (
            plan.order is not None
            and not plan.sort_needed
            and plan.order[1]
            and primary.op != "=="
        )
        # Index lookups cover the whole class family; re-check membership
        # against the extent the caller actually asked for.
        return (
            oid
            for oid in self._index_oids(primary, reverse=reverse)
            if oid in wanted
        )

    def _ordered_extent_oids(
        self, plan: QueryPlan, wanted: set[Oid]
    ) -> Iterator[Oid]:
        """Extent OIDs streamed in ``order_by`` key order from the index."""
        assert plan.order is not None
        attribute, descending = plan.order
        state = self._require_state(attribute, "btree")
        assert isinstance(state.tree, BTree)
        for _key, oid in state.tree.range(reverse=descending):
            if oid in wanted:
                yield oid
        # Extent members the index has never seen lack the attribute
        # entirely; they sort last, in stable OID order.
        stragglers = wanted.difference(state.keyed)
        yield from sorted(stragglers)

    def _index_candidate_set(
        self, plan: QueryPlan, wanted: set[Oid]
    ) -> set[Oid]:
        result: set[Oid] | None = None
        for choice in plan.index_filters:
            oids = set(self._index_oid_list(choice))
            result = oids if result is None else result & oids
            if not result:
                return set()
        assert result is not None
        return result & wanted

    def _index_oid_list(self, choice: IndexChoice) -> list[Oid]:
        """Matching OIDs as one eager list (set building, counting)."""
        tree = self._require_state(choice.attribute, choice.kind).tree
        if choice.op == "==":
            return tree.search(choice.value)
        assert isinstance(tree, BTree)  # ranges never plan onto a hash
        return tree.range_values(*_bounds(choice))

    def _index_oids(
        self, choice: IndexChoice, reverse: bool = False
    ) -> Iterator[Oid]:
        tree = self._require_state(choice.attribute, choice.kind).tree
        if choice.op == "==":
            return iter(tree.search(choice.value))
        assert isinstance(tree, BTree)  # ranges never plan onto a hash
        low, high, inclusive = _bounds(choice)
        pairs = tree.range(low, high, inclusive=inclusive, reverse=reverse)
        return (oid for _key, oid in pairs)

    def _index_covers_extent(self, state: "_IndexState") -> bool:
        """True when every indexed OID is a member of the queried extent.

        Index lookups span the whole family of the class the index was
        defined on; when the query targets that same class with
        subclasses included, the two populations coincide and the
        extent-membership re-check is a no-op that can be skipped.
        """
        return (
            self._include_subclasses
            and state.definition.class_name == self._class_name
        )

    def _require_state(
        self, attribute: str, kind: str | None = None
    ) -> "_IndexState":
        state = self._db.indexes.covering(self._class_name, attribute, kind)
        if state is None:  # pragma: no cover - plan and execution share a stack
            raise QueryError(f"no index on {self._class_name}.{attribute}")
        return state

    def _fetch_stream(self, oids: Iterable[Oid]) -> Iterator["Persistent"]:
        """Materialize OIDs in clustered batches, preserving order."""
        db = self._db
        snap = self._ambient_snapshot()
        if snap is not None:
            # Candidate membership is read-committed: an object created
            # after the snapshot began shows up here but did not exist at
            # the snapshot watermark — fetch_or_none skips it.
            for oid in oids:
                obj = snap.fetch_or_none(oid)
                if obj is not None:
                    yield obj
            return
        batch: list[Oid] = []
        for oid in oids:
            batch.append(oid)
            if len(batch) >= _FETCH_CHUNK:
                yield from db.fetch_many(batch)
                batch = []
        if batch:
            yield from db.fetch_many(batch)

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def all(self) -> list["Persistent"]:
        return list(self)

    def first(self) -> "Persistent | None":
        for obj in self:
            return obj
        return None

    def one(self) -> "Persistent":
        if self._limit is None:
            # Probe for a second match without mutating the builder.
            results = list(_take(iter(self), 2))
        else:
            results = self.all()
        if len(results) != 1:
            raise QueryError(
                f"expected exactly one result, got {len(results)}"
            )
        return results[0]

    def count(self) -> int:
        """Number of matching objects.

        Index-only when the plan has no residual work: the answer comes
        from OID-set arithmetic over the B-tree(s) and the extent, without
        materializing a single object.
        """
        plan = self._prepare()
        # Inside a snapshot the index carries *current* values, so the
        # shortcut would count the wrong world — fall through to the
        # snapshot-consistent execution path (still lock-free).
        if plan.index_only and self._ambient_snapshot() is None:
            self._note_execution(plan)
            metrics.counter("index_only_answers").inc()
            with self._shared_state():
                if not plan.index_filters:
                    matched = plan.extent_size
                elif len(plan.index_filters) == 1:
                    choice = plan.index_filters[0]
                    state = self._require_state(choice.attribute)
                    if self._index_covers_extent(state):
                        # Exact count straight off the B-tree — no OID set,
                        # no membership re-check.
                        if choice.op == "==":
                            matched = state.tree.count_key(choice.value)
                        else:
                            matched = state.tree.count_range(*_bounds(choice))
                    else:
                        matched = len(
                            self._index_candidate_set(plan, self._wanted())
                        )
                else:
                    matched = len(
                        self._index_candidate_set(plan, self._wanted())
                    )
            return matched if plan.limit is None else min(matched, plan.limit)
        return sum(1 for _ in self._execute(plan))

    def exists(self) -> bool:
        """True if at least one object matches (index-only when possible)."""
        plan = self._prepare()
        if plan.limit == 0:
            return False
        if plan.index_only and self._ambient_snapshot() is None:
            self._note_execution(plan)
            metrics.counter("index_only_answers").inc()
            with self._shared_state():
                if not plan.index_filters:
                    return plan.extent_size > 0
                if len(plan.index_filters) == 1:
                    choice = plan.index_filters[0]
                    state = self._require_state(choice.attribute)
                    if self._index_covers_extent(state):
                        if choice.op == "==":
                            return state.tree.count_key(choice.value) > 0
                        for _oid in self._index_oids(choice):
                            return True
                        return False
                    wanted = self._wanted()
                    return any(
                        oid in wanted for oid in self._index_oids(choice)
                    )
                return bool(self._index_candidate_set(plan, self._wanted()))
        for _obj in self._execute(plan):
            return True
        return False


def _bounds(
    choice: IndexChoice,
) -> tuple[Any, Any, tuple[bool, bool]]:
    """B-tree ``(low, high, inclusive)`` bounds for a range comparison."""
    if choice.op in ("<", "<="):
        return None, choice.value, (True, choice.op == "<=")
    return choice.value, None, (choice.op == ">=", True)


def _take(items: Iterator[Any], count: int) -> Iterator[Any]:
    for i, item in enumerate(items):
        if i >= count:
            return
        yield item
