"""Queries over class extents.

A :class:`Query` selects instances of a persistent class (by default
including subclasses), filters them with attribute comparisons or arbitrary
predicates, and sorts/limits the result.  Equality and range filters on
indexed attributes use the B-tree instead of scanning the extent; everything
else falls back to a filtered extent scan.

Example::

    rich = (
        db.query(Employee)
        .where_op("salary", ">=", 100_000)
        .order_by("name")
        .all()
    )
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable, Iterator

from .errors import QueryError
from .oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database
    from .schema import Persistent

__all__ = ["Query"]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda a, b: a in b,
    "contains": lambda a, b: b in a,
}

_MISSING = object()


class Query:
    """A lazily-evaluated selection over one class extent."""

    def __init__(
        self,
        db: "Database",
        cls: type | str,
        include_subclasses: bool = True,
    ) -> None:
        self._db = db
        self._class_name = cls if isinstance(cls, str) else getattr(
            cls, "_p_class_name", None
        )
        if self._class_name is None:
            raise QueryError(f"{cls!r} is not a persistent class")
        if self._class_name not in db.registry:
            raise QueryError(f"unknown persistent class {self._class_name!r}")
        self._include_subclasses = include_subclasses
        self._attr_filters: list[tuple[str, str, Any]] = []
        self._predicates: list[Callable[[Any], bool]] = []
        self._order: tuple[str, bool] | None = None
        self._limit: int | None = None

    # ------------------------------------------------------------------
    # Builders (each returns self for chaining)
    # ------------------------------------------------------------------
    def where(self, predicate: Callable[[Any], bool]) -> "Query":
        """Keep objects for which ``predicate(obj)`` is true."""
        self._predicates.append(predicate)
        return self

    def where_eq(self, attribute: str, value: Any) -> "Query":
        """Attribute equality (uses an index when one exists)."""
        return self.where_op(attribute, "==", value)

    def where_op(self, attribute: str, op: str, value: Any) -> "Query":
        """Attribute comparison with one of ``== != < <= > >= in contains``."""
        if op not in _OPS:
            raise QueryError(
                f"unknown operator {op!r}; expected one of {sorted(_OPS)}"
            )
        self._attr_filters.append((attribute, op, value))
        return self

    def order_by(self, attribute: str, descending: bool = False) -> "Query":
        self._order = (attribute, descending)
        return self

    def limit(self, count: int) -> "Query":
        if count < 0:
            raise QueryError("limit must be non-negative")
        self._limit = count
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator["Persistent"]:
        # Bind the filter tuples now: generator pipelines evaluate lazily,
        # so closing over the loop variables directly would apply only the
        # last filter to every stage.
        attr_filters = [
            (attribute, _OPS[op], value)
            for attribute, op, value in self._attr_filters
        ]
        predicates = list(self._predicates)

        def passes(obj: Any) -> bool:
            for attribute, compare, value in attr_filters:
                attr_value = getattr(obj, attribute, _MISSING)
                if attr_value is _MISSING or not compare(attr_value, value):
                    return False
            return all(predicate(obj) for predicate in predicates)

        objects = (obj for obj in self._candidates() if passes(obj))
        if self._order is not None:
            attribute, descending = self._order
            objects = iter(
                sorted(
                    objects,
                    key=lambda obj: getattr(obj, attribute),
                    reverse=descending,
                )
            )
        if self._limit is not None:
            objects = _take(objects, self._limit)
        return objects

    def all(self) -> list["Persistent"]:
        return list(self)

    def first(self) -> "Persistent | None":
        for obj in self:
            return obj
        return None

    def one(self) -> "Persistent":
        results = self.limit(2).all() if self._limit is None else self.all()
        if len(results) != 1:
            raise QueryError(
                f"expected exactly one result, got {len(results)}"
            )
        return results[0]

    def count(self) -> int:
        return sum(1 for _ in self)

    # ------------------------------------------------------------------
    # Candidate generation (index-aware)
    # ------------------------------------------------------------------
    def _candidates(self) -> Iterator["Persistent"]:
        oids = self._try_index()
        if oids is None:
            for oid in sorted(
                self._db.extents.of(self._class_name, self._include_subclasses)
            ):
                yield self._db.fetch(oid)
            return
        # Index lookups cover the whole class family; re-check membership
        # against the extent the caller actually asked for.
        wanted = self._db.extents.of(self._class_name, self._include_subclasses)
        for oid in oids:
            if oid in wanted:
                yield self._db.fetch(oid)

    def _try_index(self) -> list[Oid] | None:
        """Use a B-tree for the first indexable equality/range filter."""
        for i, (attribute, op, value) in enumerate(self._attr_filters):
            tree = self._db.indexes.lookup(self._class_name, attribute)
            if tree is None:
                continue
            if op == "==":
                oids = self._db.indexes.find_eq(
                    self._class_name, attribute, value
                )
            elif op in ("<", "<="):
                oids = [
                    oid
                    for key, oid in tree.range(
                        None, value, inclusive=(True, op == "<=")
                    )
                ]
            elif op in (">", ">="):
                oids = [
                    oid
                    for key, oid in tree.range(
                        value, None, inclusive=(op == ">=", True)
                    )
                ]
            else:
                continue
            # The index satisfied this filter; drop it, keep the rest.
            del self._attr_filters[i]
            return oids
        return None


def _take(items: Iterator[Any], count: int) -> Iterator[Any]:
    for i, item in enumerate(items):
        if i >= count:
            return
        yield item
