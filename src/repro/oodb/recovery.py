"""Restart recovery: replay the write-ahead log into the heap.

The store uses a *redo-only* protocol: a transaction's changes reach the
heap only after its COMMIT record is durable in the WAL.  A crash can
therefore leave the heap missing some committed work (logged but not yet
applied) but never containing uncommitted work.  Recovery scans the log,
collects the update records of committed transactions, and re-applies them
idempotently; records of unfinished or aborted transactions are ignored.

A torn tail (crash mid-append) is detected by the WAL reader and treated
as end-of-log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .storage.wal import LogRecordType, WriteAheadLog

__all__ = ["RecoveryReport", "replay"]


@dataclass(slots=True)
class RecoveryReport:
    """What recovery found and did."""

    committed_txns: set[int] = field(default_factory=set)
    unfinished_txns: set[int] = field(default_factory=set)
    aborted_txns: set[int] = field(default_factory=set)
    redone_updates: int = 0
    max_oid_seen: int = 0
    checkpoint_extra: dict[str, Any] | None = None

    @property
    def clean(self) -> bool:
        """True when the log held no work needing redo."""
        return self.redone_updates == 0


def replay(
    wal: WriteAheadLog,
    apply_update: Callable[[int, "dict[str, Any] | bytes | None"], None],
) -> RecoveryReport:
    """Replay ``wal``, calling ``apply_update(oid, redo_record)`` for every
    update of every committed transaction, in log order.

    ``redo_record`` is ``None`` for deletions, a record dict for legacy
    JSON entries, or the raw packed-record payload (``bytes``) for binary
    entries — both record formats replay through the same path.
    ``apply_update`` must be idempotent (upsert/ delete-if-present
    semantics), because some of the updates may already have reached the
    heap before the crash.
    """
    report = RecoveryReport()
    # updates per transaction, in order: list of (oid, redo)
    pending: dict[int, list[tuple[int, dict[str, Any] | bytes | None]]] = {}
    committed_batches: list[list[tuple[int, dict[str, Any] | bytes | None]]] = []

    for record in wal.records():
        if record.type is LogRecordType.BEGIN:
            pending.setdefault(record.txn_id, [])
        elif record.type is LogRecordType.UPDATE:
            assert record.oid is not None
            pending.setdefault(record.txn_id, []).append(
                (record.oid, record.redo)
            )
            report.max_oid_seen = max(report.max_oid_seen, record.oid)
        elif record.type is LogRecordType.COMMIT:
            report.committed_txns.add(record.txn_id)
            committed_batches.append(pending.pop(record.txn_id, []))
        elif record.type is LogRecordType.ABORT:
            report.aborted_txns.add(record.txn_id)
            pending.pop(record.txn_id, None)
        elif record.type is LogRecordType.CHECKPOINT:
            report.checkpoint_extra = dict(record.extra)

    report.unfinished_txns = set(pending)
    for batch in committed_batches:
        for oid, redo in batch:
            apply_update(oid, redo)
            report.redone_updates += 1
    return report
