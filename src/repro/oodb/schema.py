"""Persistent classes and the class registry.

:class:`Persistent` is the analogue of Zeitgeist's ``zg-pos`` root class in
the paper (§4): any class derived from it can have its instances made
persistent.  Sentinel derives ``Reactive``, ``Notifiable``, ``Event`` and
``Rule`` from it, which is what makes events and rules *first-class*
objects — creatable, updatable, deletable and persistable like any other
object.

:class:`PersistentMeta` registers every persistent class in a
:class:`ClassRegistry` (needed to decode records back into instances) and
records the subclass graph (needed for class extents that include
subclasses, and for rule inheritance in Sentinel).

Change tracking: assigning any non-``_p_`` attribute on an instance that is
bound to a database notifies the active transaction *before* the mutation,
so the transaction can capture an undo image, and notifies the index
manager *after*, so secondary indexes stay current.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator

from .errors import SchemaError, UnregisteredClass
from .oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database

__all__ = ["ClassRegistry", "PersistentMeta", "Persistent", "global_registry"]

_MISSING = object()


class ClassRegistry:
    """Name → class mapping plus the subclass graph of persistent classes."""

    def __init__(self) -> None:
        self._classes: dict[str, type] = {}
        self._subclasses: dict[str, set[str]] = {}
        self._lock = threading.Lock()

    def register(self, cls: type) -> None:
        """Register ``cls`` under its ``_p_class_name``.

        Re-registration with the *same* class object is a no-op (modules
        re-imported by test runners); a different class under the same name
        replaces the old one and inherits its subclass links — this is what
        "redefining a class" means for the Ode baseline.
        """
        name = cls._p_class_name  # type: ignore[attr-defined]
        with self._lock:
            self._classes[name] = cls
            self._subclasses.setdefault(name, set())
            for base in cls.__mro__[1:]:
                base_name = getattr(base, "_p_class_name", None)
                if base_name is not None:
                    self._subclasses.setdefault(base_name, set()).add(name)

    def get(self, name: str) -> type:
        try:
            return self._classes[name]
        except KeyError:
            raise UnregisteredClass(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def names(self) -> list[str]:
        return sorted(self._classes)

    def subclass_names(self, name: str) -> set[str]:
        """Transitive subclass names of ``name`` (excluding itself)."""
        result: set[str] = set()
        frontier = list(self._subclasses.get(name, ()))
        while frontier:
            sub = frontier.pop()
            if sub in result:
                continue
            result.add(sub)
            frontier.extend(self._subclasses.get(sub, ()))
        return result

    def family(self, name: str) -> set[str]:
        """``name`` plus all its transitive subclasses."""
        return {name} | self.subclass_names(name)


#: Process-wide registry used by default.  A Database may use its own.
global_registry = ClassRegistry()


class PersistentMeta(type):
    """Metaclass of all persistent classes.

    Assigns ``_p_class_name`` (the class's ``__name__`` unless the body
    sets it explicitly) and registers the class.  Sentinel's
    ``ReactiveMeta`` derives from this so that reactive classes are also
    persistent-capable.
    """

    def __new__(
        mcls,
        name: str,
        bases: tuple[type, ...],
        namespace: dict[str, Any],
        *,
        registry: ClassRegistry | None = None,
        register: bool = True,
        **kwargs: Any,
    ) -> "PersistentMeta":
        namespace.setdefault("_p_class_name", name)
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        if register:
            (registry or global_registry).register(cls)
        return cls


class Persistent(metaclass=PersistentMeta):
    """Base class for objects that can be stored in the database.

    Instances start *transient*.  ``db.add(obj)`` binds them to a database
    and allocates an OID; from then on attribute writes are tracked by the
    active transaction.  State attributes:

    ``_p_oid``
        the object's :class:`Oid`, or ``None`` while transient,
    ``_p_db``
        the owning database, or ``None``,
    ``_p_transient`` (class attribute)
        names of attributes that are never serialized.
    """

    _p_transient: tuple[str, ...] = ()

    def __init__(self) -> None:
        object.__setattr__(self, "_p_oid", None)
        object.__setattr__(self, "_p_db", None)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def oid(self) -> Oid | None:
        """The object's identifier, or ``None`` while transient."""
        return self._p_oid

    @property
    def is_persistent(self) -> bool:
        return self._p_oid is not None

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_p_"):
            object.__setattr__(self, name, value)
            return
        db: "Database | None" = getattr(self, "_p_db", None)
        if db is None:
            object.__setattr__(self, name, value)
            return
        old = getattr(self, name, _MISSING)
        db._before_modify(self)
        object.__setattr__(self, name, value)
        if name not in type(self)._p_transient:
            db._after_modify(
                self, name, None if old is _MISSING else old, value
            )

    def __repr__(self) -> str:
        oid = self._p_oid
        tag = str(oid) if oid is not None else "transient"
        return f"<{type(self).__name__} {tag}>"


class Extents:
    """Class extents: the set of OIDs of live instances, per class name.

    Extent queries can include subclasses (the default), using the
    registry's subclass graph — this is what lets a class-level rule in
    Sentinel apply to every instance of a class *and its subclasses*.
    """

    def __init__(self, registry: ClassRegistry) -> None:
        self._registry = registry
        self._members: dict[str, set[Oid]] = {}

    def add(self, class_name: str, oid: Oid) -> None:
        self._members.setdefault(class_name, set()).add(oid)

    def remove(self, class_name: str, oid: Oid) -> None:
        members = self._members.get(class_name)
        if members is not None:
            members.discard(oid)

    def of(self, class_name: str, include_subclasses: bool = True) -> set[Oid]:
        """Return the OIDs in the extent of ``class_name``."""
        if class_name not in self._registry:
            raise SchemaError(f"unknown persistent class {class_name!r}")
        names = (
            self._registry.family(class_name)
            if include_subclasses
            else {class_name}
        )
        result: set[Oid] = set()
        for name in names:
            result |= self._members.get(name, set())
        return result

    def count(self, class_name: str, include_subclasses: bool = True) -> int:
        if class_name not in self._registry:
            raise SchemaError(f"unknown persistent class {class_name!r}")
        names = (
            self._registry.family(class_name)
            if include_subclasses
            else (class_name,)
        )
        # Every object lives in exactly one concrete-class extent, so the
        # family union is disjoint and the count needs no set copy.
        members = self._members
        return sum(len(members.get(name, ())) for name in names)

    def class_names(self) -> Iterator[str]:
        return iter(sorted(self._members))

    def clear(self) -> None:
        self._members.clear()
