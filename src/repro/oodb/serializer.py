"""Object ⇄ record codec.

Persistent objects are stored as *records*: JSON-compatible dictionaries of
the form ``{"class": <registered name>, "attrs": {...}}``.  The codec
handles:

* scalars (``int``, ``float``, ``str``, ``bool``, ``None``),
* containers (``list``, ``tuple``, ``set``, ``frozenset``, ``dict``),
* ``bytes`` (base64), ``datetime``/``date``/``time`` (ISO strings),
* :class:`~repro.oodb.oid.Oid` values,
* **references** to other persistent objects — encoded by OID, resolved
  through the object store on decode (cycle-safe: objects register in the
  cache before their attributes are decoded),
* ``Enum`` members and *module-level functions* — encoded as importable
  ``module:qualname`` references.  Lambdas and closures are rejected with a
  clear error; the rule DSL stores source text instead, which round-trips.

Attributes whose names start with ``_p_`` (persistence machinery) or appear
in the class's ``_p_transient`` tuple are not serialized.
"""

from __future__ import annotations

import base64
import datetime as _dt
import enum
import importlib
import json
import types
from typing import Any, Callable, Protocol

from ..obs.metrics import pipeline_stats
from . import codec as _codec
from .errors import SerializationError
from .oid import Oid

__all__ = ["Serializer", "ObjectResolver"]

_SCALARS = (int, float, str, bool, type(None))

# Exact-type membership for the scalar fast path.  ``type(v) in _FAST_TYPES``
# deliberately excludes subclasses (IntEnum, str subclasses...), which must
# take the full ``encode_value`` route to get their tagged encoding.
_FAST_TYPES = frozenset(_SCALARS)

# Decode-side fast path: packed records carry live ``Oid``/``datetime``
# values (never produced by ``json.loads``), and ``decode_value`` maps them
# to themselves — so materialization may assign them directly.  Encode must
# NOT use this set: those types do not encode to themselves.
_DECODE_FAST_TYPES = _FAST_TYPES | {Oid, _dt.datetime}

# Per-class cache of the effective transient-name set; rebuilt per class,
# not per encoded object.
_transient_cache: dict[type, frozenset[str]] = {}


def _transient_for(cls: type) -> frozenset[str]:
    cached = _transient_cache.get(cls)
    if cached is None:
        cached = _transient_cache[cls] = frozenset(getattr(cls, "_p_transient", ()))
    return cached


class ObjectResolver(Protocol):
    """What the serializer needs from the object store to resolve refs."""

    def resolve_reference(self, oid: Oid) -> Any:  # pragma: no cover - protocol
        """Return the live object identified by ``oid``."""
        ...

    def reference_for(self, obj: Any) -> Oid | None:  # pragma: no cover - protocol
        """Return the OID of ``obj`` if it is a persistent object, else None."""
        ...

    def class_for_name(self, name: str) -> type:  # pragma: no cover - protocol
        """Look up a registered persistent class by name."""
        ...


class Serializer:
    """Encode persistent objects to records and back.

    The serializer is stateless apart from its resolver, so a single
    instance serves the whole database.
    """

    def __init__(self, resolver: ObjectResolver) -> None:
        self._resolver = resolver

    # ------------------------------------------------------------------
    # Object level
    # ------------------------------------------------------------------
    def encode_object(self, obj: Any) -> dict[str, Any]:
        """Serialize ``obj`` (a persistent instance) to a record dict."""
        cls = type(obj)
        class_name = getattr(cls, "_p_class_name", None)
        if class_name is None:
            raise SerializationError(
                f"{cls.__name__} is not a registered persistent class"
            )
        transient = _transient_for(cls)
        attrs: dict[str, Any] = {}
        # Fast path: most domain objects carry only scalar attributes, and
        # exact-type scalars encode to themselves — assign them directly and
        # only drop into the recursive encoder for the rest.
        scalars_only = True
        for name, value in vars(obj).items():
            if name.startswith("_p_") or name in transient:
                continue
            if type(value) in _FAST_TYPES:
                attrs[name] = value
                continue
            scalars_only = False
            try:
                attrs[name] = self.encode_value(value)
            except SerializationError as exc:
                raise SerializationError(
                    f"cannot serialize attribute {name!r} of "
                    f"{class_name}{obj._p_oid or ''}: {exc}"
                ) from exc
        if scalars_only:
            pipeline_stats.serializer_fast_objects += 1
        else:
            pipeline_stats.serializer_slow_objects += 1
        return {"class": class_name, "attrs": attrs}

    def decode_object(self, record: dict[str, Any], obj: Any | None = None) -> Any:
        """Materialize a record into an instance.

        If ``obj`` is given, the record's attributes are decoded *into* it
        (used when refreshing a cached instance or rolling back); otherwise
        a fresh instance is created without running ``__init__``.
        """
        cls = self._resolver.class_for_name(record["class"])
        if obj is None:
            obj = cls.__new__(cls)
        attrs = record["attrs"]
        # Fastest path: the packed codec marks records whose every value
        # is already live ("live": True) — bulk-assign, nothing to scan.
        if record.get("live"):
            target = getattr(obj, "__dict__", None)
            if target is not None:
                target.update(attrs)
                pipeline_stats.serializer_fast_decodes += 1
                return obj
        # Fast path: exact-type scalars decode to themselves, and most
        # domain objects are all-scalar — one dict.update instead of one
        # object.__setattr__ per attribute.  Falls back per attribute for
        # tagged values and for classes without a __dict__.
        target = getattr(obj, "__dict__", None)
        if target is not None:
            plain: dict[str, Any] = {}
            slow: list[tuple[str, Any]] = []
            for name, encoded in attrs.items():
                if type(encoded) in _DECODE_FAST_TYPES:
                    plain[name] = encoded
                else:
                    slow.append((name, encoded))
            target.update(plain)
            if slow:
                pipeline_stats.serializer_slow_decodes += 1
                for name, encoded in slow:
                    object.__setattr__(obj, name, self.decode_value(encoded))
            else:
                pipeline_stats.serializer_fast_decodes += 1
            return obj
        for name, encoded in attrs.items():
            object.__setattr__(obj, name, self.decode_value(encoded))
        return obj

    # ------------------------------------------------------------------
    # Value level
    # ------------------------------------------------------------------
    def encode_value(self, value: Any) -> Any:
        """Encode one attribute value to its JSON-compatible form."""
        if isinstance(value, bool) or value is None:
            return value
        if isinstance(value, enum.Enum):
            return {"$enum": _importable_name(type(value)), "value": value.value}
        if isinstance(value, _SCALARS):
            return value
        if isinstance(value, Oid):
            return {"$oid": value.value}
        ref = self._resolver.reference_for(value)
        if ref is not None:
            return {"$ref": ref.value}
        if isinstance(value, bytes):
            return {"$bytes": base64.b64encode(value).decode("ascii")}
        if isinstance(value, _dt.datetime):
            return {"$datetime": value.isoformat()}
        if isinstance(value, _dt.date):
            return {"$date": value.isoformat()}
        if isinstance(value, _dt.time):
            return {"$time": value.isoformat()}
        if isinstance(value, tuple):
            return {"$tuple": [self.encode_value(v) for v in value]}
        if isinstance(value, (set, frozenset)):
            tag = "$frozenset" if isinstance(value, frozenset) else "$set"
            return {tag: [self.encode_value(v) for v in value]}
        if isinstance(value, list):
            return [self.encode_value(v) for v in value]
        if isinstance(value, dict):
            return self._encode_dict(value)
        if isinstance(value, types.FunctionType):
            return {"$func": _function_reference(value)}
        raise SerializationError(
            f"values of type {type(value).__name__} are not serializable; "
            "make the class persistent or mark the attribute transient"
        )

    def decode_value(self, encoded: Any) -> Any:
        """Inverse of :meth:`encode_value`."""
        if isinstance(encoded, _SCALARS):
            return encoded
        # Packed records decode Oid/datetime fields to live values rather
        # than tagged dicts; they pass through unchanged.
        if encoded.__class__ is Oid or encoded.__class__ is _dt.datetime:
            return encoded
        if isinstance(encoded, list):
            return [self.decode_value(v) for v in encoded]
        if isinstance(encoded, dict):
            if len(encoded) <= 2 and any(k.startswith("$") for k in encoded):
                return self._decode_tagged(encoded)
            return {k: self.decode_value(v) for k, v in encoded.items()}
        raise SerializationError(f"unrecognized encoded value: {encoded!r}")

    # ------------------------------------------------------------------
    # Byte level
    # ------------------------------------------------------------------
    @staticmethod
    def record_to_bytes(record: dict[str, Any]) -> bytes:
        return _RECORD_ENCODER.encode(record).encode()

    @staticmethod
    def record_to_json(record: dict[str, Any]) -> str:
        """Encode a record once; reusable by both the WAL and the heap."""
        return _RECORD_ENCODER.encode(record)

    @staticmethod
    def record_with_oid(oid_value: int, record_json: str) -> bytes:
        """Heap payload from a pre-encoded record: splice in the OID.

        Equivalent to ``record_to_bytes({"oid": oid_value, **record})``
        modulo key order, which JSON parsing does not observe — commit
        encodes each record exactly once this way.
        """
        if record_json == "{}":  # defensive; records always carry class+attrs
            return ('{"oid":%d}' % oid_value).encode()
        return ('{"oid":%d,%s' % (oid_value, record_json[1:])).encode()

    @staticmethod
    def record_from_bytes(payload: bytes) -> dict[str, Any]:
        try:
            return json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"corrupt record payload: {exc}") from exc

    def record_from_payload(self, payload: bytes) -> dict[str, Any]:
        """Decode a heap/WAL payload in either format into a record dict.

        The first byte dispatches: packed records (tag
        :data:`~repro.oodb.codec.PACKED_FORMAT`) go through the binary
        codec, anything else is a legacy JSON record.
        """
        if _codec.is_packed(payload):
            return _codec.decode_packed(payload, self._resolver.class_for_name)
        return self.record_from_bytes(payload)

    def encode_packed_payload(
        self, oid_value: int, obj: Any, schema: "_codec.RecordSchema"
    ) -> bytes:
        """Encode ``obj`` as a packed heap payload (WAL redo reuses it).

        Unpackable attributes route through :meth:`encode_value`, so
        persistence by reachability works identically in both formats.
        """
        class_name = schema.class_name

        def encode_dynamic(name: str, value: Any) -> Any:
            if type(value) in _FAST_TYPES:
                return value
            try:
                return self.encode_value(value)
            except SerializationError as exc:
                raise SerializationError(
                    f"cannot serialize attribute {name!r} of "
                    f"{class_name}@{oid_value}: {exc}"
                ) from exc

        return _codec.encode_packed(
            oid_value, obj, schema, _transient_for(type(obj)), encode_dynamic
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _encode_dict(self, value: dict[Any, Any]) -> Any:
        if all(isinstance(k, str) and not k.startswith("$") for k in value):
            return {k: self.encode_value(v) for k, v in value.items()}
        # Non-string (or $-prefixed) keys: store as a pair list.
        return {
            "$dict": [
                [self.encode_value(k), self.encode_value(v)]
                for k, v in value.items()
            ]
        }

    def _decode_tagged(self, encoded: dict[str, Any]) -> Any:
        if "$ref" in encoded:
            return self._resolver.resolve_reference(Oid(encoded["$ref"]))
        if "$oid" in encoded:
            return Oid(encoded["$oid"])
        if "$bytes" in encoded:
            return base64.b64decode(encoded["$bytes"])
        if "$datetime" in encoded:
            return _dt.datetime.fromisoformat(encoded["$datetime"])
        if "$date" in encoded:
            return _dt.date.fromisoformat(encoded["$date"])
        if "$time" in encoded:
            return _dt.time.fromisoformat(encoded["$time"])
        if "$tuple" in encoded:
            return tuple(self.decode_value(v) for v in encoded["$tuple"])
        if "$set" in encoded:
            return {self.decode_value(v) for v in encoded["$set"]}
        if "$frozenset" in encoded:
            return frozenset(self.decode_value(v) for v in encoded["$frozenset"])
        if "$enum" in encoded:
            enum_cls = _import_object(encoded["$enum"])
            return enum_cls(encoded["value"])
        if "$func" in encoded:
            return _import_object(encoded["$func"])
        if "$dict" in encoded:
            return {
                self.decode_value(k): self.decode_value(v)
                for k, v in encoded["$dict"]
            }
        raise SerializationError(f"unknown tag in encoded value: {encoded!r}")


# ``json.dumps`` with non-default options builds a fresh JSONEncoder per
# call; records are encoded twice per committed object (WAL + heap), so a
# shared encoder instance is worth having.
_RECORD_ENCODER = json.JSONEncoder(separators=(",", ":"), sort_keys=True)


def _importable_name(obj: type | Callable[..., Any]) -> str:
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        raise SerializationError(
            f"{obj!r} is not importable (lambda/closure/local); "
            "use a module-level function or the rule DSL, whose source "
            "text persists instead"
        )
    return f"{module}:{qualname}"


def _function_reference(func: types.FunctionType) -> str:
    name = _importable_name(func)
    if func.__closure__:
        raise SerializationError(
            f"function {name} closes over variables and cannot be persisted"
        )
    return name


def _import_object(reference: str) -> Any:
    module_name, _, qualname = reference.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SerializationError(f"cannot import {reference!r}: {exc}") from exc
    target: Any = module
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError as exc:
            raise SerializationError(
                f"cannot resolve {reference!r}: no attribute {part!r}"
            ) from exc
    return target
