"""On-disk storage primitives: slotted pages, heap files, write-ahead log."""

from .heap import HeapFile, RecordId
from .pages import PAGE_SIZE, Page
from .wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "PAGE_SIZE",
    "Page",
    "HeapFile",
    "RecordId",
    "WriteAheadLog",
    "LogRecord",
    "LogRecordType",
]
