"""Heap files: unordered collections of records over slotted pages.

A :class:`HeapFile` stores variable-length byte records in a single on-disk
file of :data:`~repro.oodb.storage.pages.PAGE_SIZE`-byte pages, going through
a buffer pool for caching.  Records are addressed by :class:`RecordId`
(page number, slot number), which stays valid until the record is deleted.

Records larger than a page spill transparently into an **overflow chain**:
the payload is chunked into *part* records and a *head* record stores the
part addresses.  Callers see only the head's :class:`RecordId`; ``read``,
``update``, ``delete`` and ``scan`` reassemble and maintain the chain.
On disk every record starts with a one-byte tag::

    0x00  plain record      — tag + payload
    0x01  overflow head     — tag + part count (u32) + part ids (u32+u16 each)
    0x02  overflow part     — tag + chunk bytes

The object store above this layer maps OIDs to record ids; the heap knows
nothing about objects, only bytes.

Concurrency: a re-entrant lock makes each record operation (insert,
read, update, delete, one ``read_many`` batch, one ``scan`` page)
atomic against the others — the free-space map, the overflow chains,
and the page mutations all change together under it.  Lock order is
heap lock → buffer-pool lock; the pool never calls back into the heap.
"""

from __future__ import annotations

import os
import struct
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..errors import PageError, StorageError
from .pages import MAX_RECORD_SIZE, PAGE_SIZE, Page

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..buffer import BufferPool

__all__ = ["RecordId", "HeapFile", "MAX_OBJECT_SIZE"]

_TAG_PLAIN = 0x00
_TAG_HEAD = 0x01
_TAG_PART = 0x02

#: Largest payload a plain (single-slot) record can hold.
_MAX_PLAIN = MAX_RECORD_SIZE - 1
#: Payload bytes per overflow part.
_PART_CAPACITY = MAX_RECORD_SIZE - 1
_PART_ID = struct.Struct("<IH")
_HEAD_COUNT = struct.Struct("<I")
#: Pages the buffer pool reads ahead during sequential access.
_SCAN_READAHEAD = 8
#: How many part ids fit in one head record.
_MAX_PARTS = (MAX_RECORD_SIZE - 1 - _HEAD_COUNT.size) // _PART_ID.size
#: Largest logical record the heap will store (~2.7 MB by default).
MAX_OBJECT_SIZE = _MAX_PARTS * _PART_CAPACITY


@dataclass(frozen=True, order=True, slots=True)
class RecordId:
    """Stable address of a record: page number plus slot within the page."""

    page: int
    slot: int

    def __str__(self) -> str:
        return f"{self.page}.{self.slot}"

    @classmethod
    def parse(cls, text: str) -> "RecordId":
        page, _, slot = text.partition(".")
        return cls(int(page), int(slot))


class HeapFile:
    """A file of slotted pages with a simple in-memory free-space map.

    The free-space map records, for every page, how many bytes remain.  It
    is rebuilt by scanning the file at open time (the file is the single
    source of truth; the map is an optimization only).
    """

    def __init__(self, path: str | os.PathLike[str], pool: "BufferPool") -> None:
        self._path = os.fspath(path)
        self._pool = pool
        self._page_count = 0
        # Re-entrant: delete() reads the record it is about to drop.
        self._lock = threading.RLock()
        self._free_map: dict[int, int] = {}
        # Last page an insert landed in.  Bulk loads fill one page at a
        # time, so checking it first turns the free-map scan into O(1) on
        # the common path.
        self._hint_page: int | None = None
        self._open()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _open(self) -> None:
        exists = os.path.exists(self._path)
        if not exists:
            with open(self._path, "wb"):
                pass
        size = os.path.getsize(self._path)
        if size % PAGE_SIZE:
            raise StorageError(
                f"heap file {self._path} has size {size}, "
                f"not a multiple of {PAGE_SIZE}"
            )
        self._page_count = size // PAGE_SIZE
        self._pool.attach(self._path)
        for page_id in range(self._page_count):
            page = self._pool.get(self._path, page_id)
            self._free_map[page_id] = page.free_space

    def close(self) -> None:
        """Flush all cached pages and detach from the buffer pool."""
        self._pool.flush_file(self._path)
        self._pool.detach(self._path)

    @property
    def path(self) -> str:
        return self._path

    @property
    def page_count(self) -> int:
        return self._page_count

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, payload: bytes) -> RecordId:
        """Store ``payload`` and return its :class:`RecordId`.

        Oversized payloads spill into an overflow chain transparently.
        """
        with self._lock:
            if len(payload) <= _MAX_PLAIN:
                return self._insert_raw(bytes([_TAG_PLAIN]) + payload)
            return self._insert_overflow(payload)

    def read(self, rid: RecordId) -> bytes:
        """Return the payload stored at ``rid`` (reassembling overflow)."""
        with self._lock:
            raw = self._page_for(rid).read(rid.slot)
            tag = raw[0]
            if tag == _TAG_PLAIN:
                return raw[1:]
            if tag == _TAG_HEAD:
                return b"".join(
                    self._page_for(part).read(part.slot)[1:]
                    for part in self._parse_head(raw)
                )
            raise StorageError(
                f"record id {rid} addresses an overflow part, not a record"
            )

    def update(self, rid: RecordId, payload: bytes) -> RecordId:
        """Replace the record at ``rid``.

        If the new payload no longer fits in its page, the record moves:
        the old slot is deleted and a fresh :class:`RecordId` is returned.
        Callers must store the returned id.
        """
        with self._lock:
            old_raw = self._page_for(rid).read(rid.slot)
            if old_raw[0] == _TAG_HEAD:
                self._free_parts(self._parse_head(old_raw))
            elif old_raw[0] == _TAG_PART:
                raise StorageError(f"record id {rid} addresses an overflow part")

            if len(payload) <= _MAX_PLAIN:
                new_raw = bytes([_TAG_PLAIN]) + payload
            else:
                parts = self._store_parts(payload)
                new_raw = self._encode_head(parts)
            return self._replace_raw(rid, new_raw)

    def delete(self, rid: RecordId) -> bytes:
        """Delete the record at ``rid``, returning its former payload."""
        with self._lock:
            payload = self.read(rid)
            raw = self._page_for(rid).read(rid.slot)
            if raw[0] == _TAG_HEAD:
                self._free_parts(self._parse_head(raw))
            page = self._page_for(rid)
            page.delete(rid.slot)
            self._free_map[rid.page] = page.free_space
            return payload

    def read_many(self, rids: list[RecordId]) -> dict[RecordId, bytes]:
        """Read several records, pinning each page only once.

        The requests are grouped by page and served in page order; runs of
        consecutive pages are read ahead in one I/O.  This is the clustered
        half of ``Database.fetch_many``: a cold batch fetch touches each
        page exactly once instead of once per record.  Returns a dict keyed
        by the requested record ids.
        """
        with self._lock:
            return self._read_many_locked(rids)

    def _read_many_locked(self, rids: list[RecordId]) -> dict[RecordId, bytes]:
        by_page: dict[int, list[RecordId]] = {}
        for rid in rids:
            if not 0 <= rid.page < self._page_count:
                raise StorageError(
                    f"record id {rid} addresses page {rid.page}, but "
                    f"{self._path} has {self._page_count} pages"
                )
            by_page.setdefault(rid.page, []).append(rid)
        out: dict[RecordId, bytes] = {}
        pages = sorted(by_page)
        for i, page_id in enumerate(pages):
            # Readahead exactly the consecutive pages this batch needs.
            run = 1
            while (
                i + run < len(pages)
                and pages[i + run] == page_id + run
                and run < _SCAN_READAHEAD
            ):
                run += 1
            page = self._pool.get(self._path, page_id, readahead=run)
            for rid in by_page[page_id]:
                raw = page.read(rid.slot)
                tag = raw[0]
                if tag == _TAG_PLAIN:
                    out[rid] = raw[1:]
                elif tag == _TAG_HEAD:
                    out[rid] = b"".join(
                        self._page_for(part).read(part.slot)[1:]
                        for part in self._parse_head(raw)
                    )
                else:
                    raise StorageError(
                        f"record id {rid} addresses an overflow part, "
                        "not a record"
                    )
        return out

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """Yield every live record, overflow chains reassembled.

        Overflow *parts* are skipped; only heads (with their full payload)
        and plain records are reported.  Pages are requested with
        readahead, so a cold scan issues one I/O per run of pages rather
        than one per page.
        """
        page_id = 0
        while True:
            with self._lock:
                if page_id >= self._page_count:
                    return
                page = self._pool.get(
                    self._path, page_id, readahead=_SCAN_READAHEAD
                )
                rows = [
                    (RecordId(page_id, slot), raw)
                    for slot, raw in page.records()
                    if raw[0] != _TAG_PART
                ]
                # Reassemble overflow heads while the lock protects the
                # chain; plain payloads are yielded outside it.
                resolved = [
                    (rid, raw[1:] if raw[0] == _TAG_PLAIN else self.read(rid))
                    for rid, raw in rows
                ]
            yield from resolved
            page_id += 1

    def record_count(self) -> int:
        """Number of live logical records (full scan; tests and stats)."""
        return sum(1 for _ in self.scan())

    def flush(self) -> None:
        """Force all dirty pages of this file to disk."""
        self._pool.flush_file(self._path)

    # ------------------------------------------------------------------
    # Overflow machinery
    # ------------------------------------------------------------------
    def _insert_overflow(self, payload: bytes) -> RecordId:
        if len(payload) > MAX_OBJECT_SIZE:
            raise StorageError(
                f"record of {len(payload)} bytes exceeds the maximum "
                f"object size of {MAX_OBJECT_SIZE} bytes"
            )
        parts = self._store_parts(payload)
        return self._insert_raw(self._encode_head(parts))

    def _store_parts(self, payload: bytes) -> list[RecordId]:
        parts: list[RecordId] = []
        try:
            for offset in range(0, len(payload), _PART_CAPACITY):
                chunk = payload[offset : offset + _PART_CAPACITY]
                parts.append(self._insert_raw(bytes([_TAG_PART]) + chunk))
        except Exception:
            self._free_parts(parts)
            raise
        return parts

    @staticmethod
    def _encode_head(parts: list[RecordId]) -> bytes:
        body = bytearray([_TAG_HEAD])
        body += _HEAD_COUNT.pack(len(parts))
        for part in parts:
            body += _PART_ID.pack(part.page, part.slot)
        return bytes(body)

    @staticmethod
    def _parse_head(raw: bytes) -> list[RecordId]:
        (count,) = _HEAD_COUNT.unpack_from(raw, 1)
        parts = []
        offset = 1 + _HEAD_COUNT.size
        for _ in range(count):
            page, slot = _PART_ID.unpack_from(raw, offset)
            offset += _PART_ID.size
            parts.append(RecordId(page, slot))
        return parts

    def _free_parts(self, parts: list[RecordId]) -> None:
        for part in parts:
            page = self._page_for(part)
            page.delete(part.slot)
            self._free_map[part.page] = page.free_space

    # ------------------------------------------------------------------
    # Raw (tagged) record plumbing
    # ------------------------------------------------------------------
    def _insert_raw(self, raw: bytes) -> RecordId:
        page_id = self._find_page_with_space(len(raw))
        page = self._pool.get(self._path, page_id)
        slot = page.insert(raw)
        self._free_map[page_id] = page.free_space
        return RecordId(page_id, slot)

    def _replace_raw(self, rid: RecordId, raw: bytes) -> RecordId:
        page = self._page_for(rid)
        try:
            page.update(rid.slot, raw)
        except PageError:
            page.delete(rid.slot)
            self._free_map[rid.page] = page.free_space
            return self._insert_raw(raw)
        self._free_map[rid.page] = page.free_space
        return rid

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _page_for(self, rid: RecordId) -> Page:
        if not 0 <= rid.page < self._page_count:
            raise StorageError(
                f"record id {rid} addresses page {rid.page}, but {self._path} "
                f"has {self._page_count} pages"
            )
        return self._pool.get(self._path, rid.page)

    def _find_page_with_space(self, needed: int) -> int:
        hint = self._hint_page
        if hint is not None and self._free_map.get(hint, 0) >= needed:
            return hint
        for page_id, free in self._free_map.items():
            if free >= needed:
                self._hint_page = page_id
                return page_id
        return self._grow()

    def _grow(self) -> int:
        page_id = self._page_count
        page = Page(page_id)
        page.dirty = True
        self._pool.put_new(self._path, page)
        self._page_count += 1
        self._free_map[page_id] = page.free_space
        self._hint_page = page_id
        return page_id
