"""Slotted pages.

A :class:`Page` is a fixed-size byte region holding variable-length records.
The layout is the classic slotted-page design:

::

    +-------------------------------------------------------------+
    | header | slot directory (grows ->)   ...free...  <- records |
    +-------------------------------------------------------------+

* The header stores the page id, the number of slots, the offset of the
  start of the record area, and a CRC32 checksum over the payload.
* The slot directory grows upward from the header; each slot is an
  ``(offset, length)`` pair.  A deleted record leaves a *tombstone* slot
  (offset 0) so that record ids remain stable.
* Records grow downward from the end of the page.

Pages serialize to exactly :data:`PAGE_SIZE` bytes, so the heap file can
address page *n* at byte offset ``n * PAGE_SIZE``.
"""

from __future__ import annotations

import heapq
import struct
import zlib
from typing import Iterator

from ..errors import ChecksumError, PageError

__all__ = ["PAGE_SIZE", "Page"]

#: Size of every page, in bytes.
PAGE_SIZE = 4096

# Header: page_id (I), slot_count (H), free_ptr (H), checksum (I)
_HEADER = struct.Struct("<IHHI")
# Slot: offset (H), length (H).  offset == 0 marks a tombstone.
_SLOT = struct.Struct("<HH")

_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size

#: Largest record a single page can hold.
MAX_RECORD_SIZE = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE


class Page:
    """A slotted page holding variable-length byte records.

    Records are addressed by *slot number*, which is stable for the life of
    the record (deletions leave tombstones rather than renumbering).
    """

    __slots__ = (
        "page_id", "_slots", "_records", "dirty", "_record_bytes", "_free_slots",
    )

    def __init__(self, page_id: int) -> None:
        if page_id < 0:
            raise PageError(f"page id must be non-negative, got {page_id}")
        self.page_id = page_id
        # Parallel lists: _slots[i] is live/tombstone flag via _records[i] is None
        self._slots: list[int] = []  # lengths, kept for size accounting
        self._records: list[bytes | None] = []
        # Incremental size accounting.  Recomputing the record-byte total
        # on every free-space check made page fills O(slots²); these are
        # maintained by insert/update/delete instead.  ``_free_slots`` is a
        # min-heap of tombstone slot numbers (lowest slot reused first,
        # matching the old linear scan).
        self._record_bytes = 0
        self._free_slots: list[int] = []
        self.dirty = False

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of slots, including tombstones."""
        return len(self._records)

    @property
    def live_count(self) -> int:
        """Number of live (non-deleted) records."""
        return len(self._records) - len(self._free_slots)

    def _used_bytes(self) -> int:
        return _HEADER_SIZE + _SLOT_SIZE * len(self._records) + self._record_bytes

    @property
    def free_space(self) -> int:
        """Bytes available for one more record.

        Slot-directory overhead is charged only when no tombstone slot is
        available for reuse — otherwise a page holding one full-size
        record could never take the same record back after a delete.
        """
        slot_overhead = 0 if self._free_slots else _SLOT_SIZE
        return max(0, PAGE_SIZE - self._used_bytes() - slot_overhead)

    def fits(self, payload: bytes) -> bool:
        """True if ``payload`` can be inserted into this page."""
        return len(payload) <= self.free_space

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, payload: bytes) -> int:
        """Insert ``payload`` and return its slot number.

        Tombstone slots are reused before new slots are appended.
        """
        if len(payload) > MAX_RECORD_SIZE:
            raise PageError(
                f"record of {len(payload)} bytes exceeds page capacity "
                f"({MAX_RECORD_SIZE} bytes)"
            )
        if not self.fits(payload):
            raise PageError(
                f"page {self.page_id} has {self.free_space} free bytes; "
                f"record needs {len(payload)}"
            )
        self.dirty = True
        self._record_bytes += len(payload)
        if self._free_slots:
            slot = heapq.heappop(self._free_slots)
            self._records[slot] = bytes(payload)
            self._slots[slot] = len(payload)
            return slot
        self._records.append(bytes(payload))
        self._slots.append(len(payload))
        return len(self._records) - 1

    def read(self, slot: int) -> bytes:
        """Return the record stored in ``slot``."""
        record = self._record_at(slot)
        if record is None:
            raise PageError(f"slot {slot} of page {self.page_id} is deleted")
        return record

    def update(self, slot: int, payload: bytes) -> None:
        """Replace the record in ``slot`` with ``payload`` in place."""
        if self._record_at(slot) is None:
            raise PageError(f"slot {slot} of page {self.page_id} is deleted")
        old = self._records[slot]
        assert old is not None
        growth = len(payload) - len(old)
        if growth > 0 and growth > self.free_space + _SLOT_SIZE:
            raise PageError(
                f"updated record grows by {growth} bytes; page {self.page_id} "
                f"has only {self.free_space} free"
            )
        self._records[slot] = bytes(payload)
        self._slots[slot] = len(payload)
        self._record_bytes += len(payload) - len(old)
        self.dirty = True

    def delete(self, slot: int) -> bytes:
        """Delete the record in ``slot`` and return its former payload."""
        record = self._record_at(slot)
        if record is None:
            raise PageError(f"slot {slot} of page {self.page_id} already deleted")
        self._records[slot] = None
        self._slots[slot] = 0
        self._record_bytes -= len(record)
        heapq.heappush(self._free_slots, slot)
        self.dirty = True
        return record

    def _record_at(self, slot: int) -> bytes | None:
        if not 0 <= slot < len(self._records):
            raise PageError(
                f"slot {slot} out of range for page {self.page_id} "
                f"({len(self._records)} slots)"
            )
        return self._records[slot]

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, payload)`` for every live record."""
        for slot, record in enumerate(self._records):
            if record is not None:
                yield slot, record

    def is_empty(self) -> bool:
        """True if the page holds no live records."""
        return self.live_count == 0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to exactly :data:`PAGE_SIZE` bytes with checksum."""
        buf = bytearray(PAGE_SIZE)
        free_ptr = PAGE_SIZE
        slot_area = bytearray()
        for record in self._records:
            if record is None:
                slot_area += _SLOT.pack(0, 0)
                continue
            free_ptr -= len(record)
            buf[free_ptr : free_ptr + len(record)] = record
            slot_area += _SLOT.pack(free_ptr, len(record))
        slot_start = _HEADER_SIZE
        buf[slot_start : slot_start + len(slot_area)] = slot_area
        checksum = zlib.crc32(bytes(buf[_HEADER_SIZE:]))
        buf[:_HEADER_SIZE] = _HEADER.pack(
            self.page_id, len(self._records), free_ptr, checksum
        )
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        """Deserialize a page, verifying its checksum."""
        if len(data) != PAGE_SIZE:
            raise PageError(f"expected {PAGE_SIZE} bytes, got {len(data)}")
        page_id, slot_count, _free_ptr, checksum = _HEADER.unpack_from(data, 0)
        actual = zlib.crc32(data[_HEADER_SIZE:])
        if actual != checksum:
            raise ChecksumError(
                f"page {page_id} checksum mismatch "
                f"(stored {checksum:#010x}, computed {actual:#010x})"
            )
        page = cls(page_id)
        offset = _HEADER_SIZE
        for _ in range(slot_count):
            rec_off, rec_len = _SLOT.unpack_from(data, offset)
            offset += _SLOT_SIZE
            if rec_off == 0:
                heapq.heappush(page._free_slots, len(page._records))
                page._records.append(None)
                page._slots.append(0)
            else:
                page._records.append(bytes(data[rec_off : rec_off + rec_len]))
                page._slots.append(rec_len)
                page._record_bytes += rec_len
        return page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Page {self.page_id}: {self.live_count}/{self.slot_count} slots, "
            f"{self.free_space}B free{' dirty' if self.dirty else ''}>"
        )
