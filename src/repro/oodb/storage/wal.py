"""Write-ahead log.

The WAL is an append-only file of length-prefixed, checksummed records.
Transactions append ``BEGIN`` / ``UPDATE`` / ``COMMIT`` / ``ABORT`` records;
restart recovery (:mod:`repro.oodb.recovery`) replays the log to decide
which transactions' effects survive.

Log records carry *logical* undo/redo information: the OID, the before
image, and the after image of the serialized object record.  This is
simpler than physiological page logging and sufficient because the object
store applies committed images idempotently at recovery time.

Format of one log entry on disk::

    <length:4 bytes little-endian> <crc32:4 bytes> <payload: length bytes>

The payload is a JSON object (UTF-8).  A torn final entry (crash mid-append)
is detected by a short read or checksum mismatch and the log is truncated
at the last valid entry.
"""

from __future__ import annotations

import enum
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import WALError

__all__ = ["LogRecordType", "LogRecord", "WriteAheadLog"]

_FRAME = struct.Struct("<II")


class LogRecordType(str, enum.Enum):
    """Kinds of log record."""

    BEGIN = "begin"
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One entry in the write-ahead log.

    ``lsn`` is assigned by the log at append time (position in the file).
    ``undo``/``redo`` are serialized object records (or ``None`` for
    creation/deletion respectively).
    """

    type: LogRecordType
    txn_id: int
    lsn: int = 0
    oid: int | None = None
    undo: dict[str, Any] | None = None
    redo: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> bytes:
        body = {
            "type": self.type.value,
            "txn": self.txn_id,
            "oid": self.oid,
            "undo": self.undo,
            "redo": self.redo,
            "extra": self.extra,
        }
        return json.dumps(body, separators=(",", ":"), default=_json_default).encode()

    @classmethod
    def from_payload(cls, payload: bytes, lsn: int) -> "LogRecord":
        try:
            body = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALError(f"corrupt log payload at lsn {lsn}: {exc}") from exc
        return cls(
            type=LogRecordType(body["type"]),
            txn_id=body["txn"],
            lsn=lsn,
            oid=body.get("oid"),
            undo=body.get("undo"),
            redo=body.get("redo"),
            extra=body.get("extra") or {},
        )


def _json_default(value: Any) -> Any:
    raise TypeError(
        f"log records must be JSON-serializable; got {type(value).__name__}. "
        "Serialize objects to records before logging."
    )


class WriteAheadLog:
    """Append-only, checksummed log with crash-safe truncation.

    ``sync`` controls whether every commit forces an ``fsync``; benchmarks
    turn it off to measure in-memory costs, production keeps it on.
    """

    def __init__(self, path: str | os.PathLike[str], sync: bool = True) -> None:
        self._path = os.fspath(path)
        self._sync = sync
        self._file = open(self._path, "ab+")
        self._file.seek(0, os.SEEK_END)
        self._end = self._file.tell()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> int:
        """Append ``record`` and return its LSN (byte offset)."""
        payload = record.to_payload()
        lsn = self._end
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        self._file.write(frame + payload)
        self._end += _FRAME.size + len(payload)
        return lsn

    def flush(self, force_sync: bool | None = None) -> None:
        """Flush buffered entries; optionally force an fsync."""
        self._file.flush()
        if self._sync if force_sync is None else force_sync:
            os.fsync(self._file.fileno())

    def log_begin(self, txn_id: int) -> int:
        return self.append(LogRecord(LogRecordType.BEGIN, txn_id))

    def log_update(
        self,
        txn_id: int,
        oid: int,
        undo: dict[str, Any] | None,
        redo: dict[str, Any] | None,
    ) -> int:
        return self.append(
            LogRecord(LogRecordType.UPDATE, txn_id, oid=oid, undo=undo, redo=redo)
        )

    def log_commit(self, txn_id: int) -> int:
        lsn = self.append(LogRecord(LogRecordType.COMMIT, txn_id))
        self.flush()
        return lsn

    def log_abort(self, txn_id: int) -> int:
        return self.append(LogRecord(LogRecordType.ABORT, txn_id))

    def log_checkpoint(self, catalog: dict[str, Any]) -> int:
        lsn = self.append(
            LogRecord(LogRecordType.CHECKPOINT, txn_id=0, extra=catalog)
        )
        self.flush(force_sync=True)
        return lsn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> Iterator[LogRecord]:
        """Yield every valid record from the start of the log.

        Stops cleanly at the first torn or corrupt entry (treating it as
        the logical end of the log, as a crashed append would leave).
        """
        self._file.flush()
        with open(self._path, "rb") as reader:
            offset = 0
            while True:
                frame = reader.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    return
                length, crc = _FRAME.unpack(frame)
                payload = reader.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    return
                yield LogRecord.from_payload(payload, lsn=offset)
                offset += _FRAME.size + length

    def tail_size(self) -> int:
        """Current end-of-log offset."""
        return self._end

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Discard all log entries (after a checkpoint made them redundant)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._end = 0
        self.flush(force_sync=True)

    def close(self) -> None:
        self.flush()
        self._file.close()

    @property
    def path(self) -> str:
        return self._path
