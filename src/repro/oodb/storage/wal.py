"""Write-ahead log.

The WAL is an append-only file of length-prefixed, checksummed records.
Transactions append ``BEGIN`` / ``UPDATE`` / ``COMMIT`` / ``ABORT`` records;
restart recovery (:mod:`repro.oodb.recovery`) replays the log to decide
which transactions' effects survive.

Log records carry *logical* undo/redo information: the OID, the before
image, and the after image of the serialized object record.  This is
simpler than physiological page logging and sufficient because the object
store applies committed images idempotently at recovery time.

Format of one log entry on disk::

    <length:4 bytes little-endian> <crc32:4 bytes> <payload: length bytes>

The payload is a JSON object (UTF-8).  A torn final entry (crash mid-append)
is detected by a short read or checksum mismatch and the log is truncated
at the last valid entry.

Concurrency: the log is shared by every committing thread.  A buffer
mutex serializes appends and file writes (so entries land in LSN order),
and commits synchronize durability through **leader–follower group
commit**: the first committer to need an fsync becomes the leader, drains
whatever later committers buffered in the meantime, and issues one fsync
that covers them all; a follower whose bytes are already under the
durable watermark (``_synced_end``) returns without syncing at all.  On a
busy box this collapses N concurrent commits into one fsync — the entire
scaling story for mixed workloads on a single spindle.
"""

from __future__ import annotations

import enum
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from time import perf_counter

from ...obs.metrics import pipeline_stats
from ...obs.signals import engine_signals as _signals
from ...obs.slowlog import slow_op_log as _slowlog
from ...obs.tracer import tracer as _tracer
from ..errors import WALError

__all__ = [
    "LogRecordType",
    "LogRecord",
    "WriteAheadLog",
    "FSYNC_POLICIES",
    "read_records",
]

_FRAME = struct.Struct("<II")

#: First payload byte of a *binary* update entry.  JSON payloads start
#: with ``{`` (0x7B), so one byte disambiguates — the same trick the heap
#: uses for packed vs JSON record payloads.
_BINARY_UPDATE = 0x01
_BINARY_HEAD = struct.Struct("<BQQI")

#: When the log calls ``os.fsync``:
#: ``"commit"`` — once per commit boundary (group commit; the default),
#: ``"always"`` — after every appended record (paranoid, no batching),
#: ``"never"``  — leave durability to the OS page cache (benchmarks).
FSYNC_POLICIES = ("commit", "always", "never")


class LogRecordType(str, enum.Enum):
    """Kinds of log record."""

    BEGIN = "begin"
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One entry in the write-ahead log.

    ``lsn`` is assigned by the log at append time (position in the file).
    ``undo``/``redo`` are serialized object records (or ``None`` for
    creation/deletion respectively).
    """

    type: LogRecordType
    txn_id: int
    lsn: int = 0
    oid: int | None = None
    undo: dict[str, Any] | None = None
    #: Redo image: a record dict (legacy JSON entries) or the raw packed
    #: record payload (binary entries) — recovery applies either.
    redo: dict[str, Any] | bytes | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> bytes:
        body = {
            "type": self.type.value,
            "txn": self.txn_id,
            "oid": self.oid,
            "undo": self.undo,
            "redo": self.redo,
            "extra": self.extra,
        }
        return _PAYLOAD_ENCODER.encode(body).encode()

    @classmethod
    def from_payload(cls, payload: bytes, lsn: int) -> "LogRecord":
        if payload[:1] == bytes([_BINARY_UPDATE]):
            return cls._from_binary_payload(payload, lsn)
        try:
            body = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALError(f"corrupt log payload at lsn {lsn}: {exc}") from exc
        return cls(
            type=LogRecordType(body["type"]),
            txn_id=body["txn"],
            lsn=lsn,
            oid=body.get("oid"),
            undo=body.get("undo"),
            redo=body.get("redo"),
            extra=body.get("extra") or {},
        )

    @classmethod
    def _from_binary_payload(cls, payload: bytes, lsn: int) -> "LogRecord":
        """Parse a binary UPDATE entry (packed-record redo carried as-is)."""
        if len(payload) < _BINARY_HEAD.size:
            raise WALError(f"truncated binary log payload at lsn {lsn}")
        _tag, txn_id, oid, undo_len = _BINARY_HEAD.unpack_from(payload)
        undo_end = _BINARY_HEAD.size + undo_len
        if len(payload) < undo_end:
            raise WALError(f"truncated binary log payload at lsn {lsn}")
        undo: dict[str, Any] | None = None
        if undo_len:
            try:
                undo = json.loads(payload[_BINARY_HEAD.size : undo_end].decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise WALError(
                    f"corrupt binary log payload at lsn {lsn}: {exc}"
                ) from exc
        return cls(
            type=LogRecordType.UPDATE,
            txn_id=txn_id,
            lsn=lsn,
            oid=oid,
            undo=undo,
            redo=payload[undo_end:],
        )


def _json_default(value: Any) -> Any:
    raise TypeError(
        f"log records must be JSON-serializable; got {type(value).__name__}. "
        "Serialize objects to records before logging."
    )


# Shared instance: ``json.dumps`` with non-default options constructs a
# fresh JSONEncoder per call, and the log encodes one payload per record.
_PAYLOAD_ENCODER = json.JSONEncoder(separators=(",", ":"), default=_json_default)


class WriteAheadLog:
    """Append-only, checksummed log with crash-safe truncation.

    Appends accumulate in an in-process buffer; :meth:`flush` writes the
    whole buffer with one ``write`` call and (per ``fsync_policy``) one
    ``fsync``.  Commit boundaries (:meth:`log_commit`,
    :meth:`log_transaction`, :meth:`log_checkpoint`) always flush, so the
    durability contract is unchanged from per-record writing: a committed
    transaction's records are on disk before commit returns.  Records
    buffered at crash time belong to uncommitted transactions and recovery
    discards them anyway.

    ``sync`` is the legacy knob (``True`` → fsync at commit boundaries);
    ``fsync_policy`` overrides it with one of :data:`FSYNC_POLICIES`.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        sync: bool = True,
        fsync_policy: str | None = None,
        syncer: bool = False,
    ) -> None:
        if fsync_policy is None:
            fsync_policy = "commit" if sync else "never"
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, got {fsync_policy!r}"
            )
        self._path = os.fspath(path)
        self._sync = fsync_policy != "never"
        self._fsync_policy = fsync_policy
        self._pending: list[bytes] = []
        self._file = open(self._path, "ab+")
        self._file.seek(0, os.SEEK_END)
        self._end = self._file.tell()
        # Guards _pending/_end and all writes to _file (entries must hit
        # the OS in LSN order).  Never held across an fsync.
        self._mutex = threading.Lock()
        # Group-commit leadership: one fsync in flight at a time.  A
        # committer whose target offset is already <= _synced_end was
        # covered by an earlier leader's fsync and skips its own.
        self._sync_lock = threading.Lock()
        self._synced_end = self._end
        # Dedicated-syncer mode (``syncer=True``): committers never fsync
        # themselves; they publish a target offset and block until the
        # syncer thread's back-to-back fsync loop covers it.  The
        # leader–follower path above leaves the disk idle between a
        # leader finishing and the next waiter claiming leadership (it
        # needs the GIL to take over); the daemon keeps an fsync in
        # flight whenever anything is pending, which is what makes
        # multi-threaded commit throughput scale on one core.
        self._sync_cond = threading.Condition()
        self._requested_end = self._end
        # Bumped by truncate() so a syncer fsync that raced it cannot
        # publish a stale (pre-truncate) watermark.
        self._epoch = 0
        self._syncer_stop = False
        self._syncer: threading.Thread | None = None
        if syncer and self._sync:
            self._syncer = threading.Thread(
                target=self._sync_loop, name="wal-syncer", daemon=True
            )
            self._syncer.start()

    @property
    def fsync_policy(self) -> str:
        return self._fsync_policy

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @staticmethod
    def _frame(record: LogRecord) -> bytes:
        payload = record.to_payload()
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    def append(self, record: LogRecord) -> int:
        """Buffer ``record`` for the next flush and return its LSN."""
        framed = self._frame(record)
        with self._mutex:
            lsn = self._end
            self._pending.append(framed)
            self._end += len(framed)
        if self._fsync_policy == "always":
            self.flush(force_sync=True)
        return lsn

    def _drain_locked(self) -> int:
        """Write buffered entries to the OS (caller holds ``_mutex``).

        Returns the end-of-log offset the file now covers.
        """
        pending = self._pending
        if pending:
            self._file.write(b"".join(pending))
            pending.clear()
        self._file.flush()
        return self._end

    def flush(self, force_sync: bool | None = None) -> None:
        """Write buffered entries in one call; optionally force an fsync."""
        with self._mutex:
            target = self._drain_locked()
        if self._sync if force_sync is None else force_sync:
            self._sync_to(target)

    def _sync_to(self, target: int) -> None:
        """Make the log durable through offset ``target`` (group commit).

        Leader–follower: if an earlier fsync already covered ``target``
        the call returns immediately (the racy unlocked read is safe —
        ``_synced_end`` only grows).  Otherwise the caller takes the sync
        lock; by the time it gets it, another leader may have covered the
        target (check again), else it becomes the leader: re-drain the
        buffer so commits that arrived while waiting ride along, then
        issue one fsync for everybody.
        """
        if self._synced_end >= target:
            return
        if self._syncer is not None:
            with self._sync_cond:
                if self._requested_end < target:
                    self._requested_end = target
                    self._sync_cond.notify_all()
                while self._synced_end < target and not self._syncer_stop:
                    self._sync_cond.wait()
            return
        with self._sync_lock:
            if self._synced_end >= target:
                return
            with self._mutex:
                covered = self._drain_locked()
            self._fsync_instrumented()
            self._synced_end = covered
            pipeline_stats.wal_syncs += 1

    def _fsync_instrumented(self) -> None:
        """One fsync, timed for the slow-fsync signal / slow-op log."""
        if _signals.active or _slowlog.enabled:
            start = perf_counter()
            os.fsync(self._file.fileno())
            micros = (perf_counter() - start) * 1e6
            if _signals.active and micros >= _signals.fsync_slow_us:
                _signals.emit(
                    "wal_fsync_slow",
                    micros=round(micros, 1),
                    threshold_us=_signals.fsync_slow_us,
                )
            if _slowlog.enabled and micros >= _slowlog.slow_fsync_us:
                # The sysmon signal for slow fsyncs predates the
                # slow-op log and keeps its own threshold above.
                _slowlog.record(
                    "fsync",
                    micros,
                    _slowlog.slow_fsync_us,
                    path=self._path,
                )
        else:
            os.fsync(self._file.fileno())

    def _sync_loop(self) -> None:
        """The dedicated syncer: fsync back-to-back while work is pending.

        Each pass drains whatever committers buffered (including entries
        appended *during the previous fsync*) and makes it durable with
        one fsync, then publishes the new watermark and wakes every
        waiting committer whose target it covered.  Commits keep doing
        CPU work while the fsync is in flight — the disk and the
        interpreter stay busy simultaneously.
        """
        while True:
            with self._sync_cond:
                while (
                    self._requested_end <= self._synced_end
                    and not self._syncer_stop
                ):
                    self._sync_cond.wait()
                if self._syncer_stop:
                    return
                epoch = self._epoch
            with self._mutex:
                covered = self._drain_locked()
            self._fsync_instrumented()
            with self._sync_cond:
                if self._epoch == epoch:
                    self._synced_end = covered
                    pipeline_stats.wal_syncs += 1
                self._sync_cond.notify_all()

    def log_begin(self, txn_id: int) -> int:
        return self.append(LogRecord(LogRecordType.BEGIN, txn_id))

    def log_update(
        self,
        txn_id: int,
        oid: int,
        undo: dict[str, Any] | None,
        redo: dict[str, Any] | str | bytes | None,
    ) -> int:
        """Append one UPDATE.  ``redo`` may be a record dict, a pre-encoded
        record JSON string, or raw packed-record bytes (binary entry)."""
        framed = self._update_frame(txn_id, oid, undo, redo)
        with self._mutex:
            lsn = self._end
            self._pending.append(framed)
            self._end += len(framed)
        if self._fsync_policy == "always":
            self.flush(force_sync=True)
        return lsn

    def log_commit(self, txn_id: int) -> int:
        lsn = self.append(LogRecord(LogRecordType.COMMIT, txn_id))
        self.flush()
        if _tracer.enabled:
            _tracer.point("wal", f"commit:{txn_id}", txn=txn_id, lsn=lsn)
        return lsn

    def _update_frame(
        self,
        txn_id: int,
        oid: int,
        undo: dict[str, Any] | None,
        redo: dict[str, Any] | str | bytes | None,
    ) -> bytes:
        if isinstance(redo, bytes):
            # Packed record: the redo image is the exact heap payload, so
            # it is carried verbatim in a binary entry — no JSON wrapping,
            # no base64, and recovery writes the bytes straight back.
            undo_bytes = (
                _PAYLOAD_ENCODER.encode(undo).encode()
                if undo is not None
                else b""
            )
            payload = (
                _BINARY_HEAD.pack(_BINARY_UPDATE, txn_id, oid, len(undo_bytes))
                + undo_bytes
                + redo
            )
            return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if isinstance(redo, str):
            # ``redo`` is an already-encoded record: splice it into the
            # payload instead of re-encoding the dict.  Byte-identical to
            # the LogRecord path modulo key order, which json.loads (the
            # only reader) does not observe.
            head = _PAYLOAD_ENCODER.encode(
                {"type": "update", "txn": txn_id, "oid": oid, "undo": undo}
            )
            payload = (head[:-1] + ',"redo":' + redo + ',"extra":{}}').encode()
            return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        return self._frame(
            LogRecord(LogRecordType.UPDATE, txn_id, oid=oid, undo=undo, redo=redo)
        )

    def log_transaction(
        self,
        txn_id: int,
        updates: Iterable[
            tuple[int, dict[str, Any] | None, dict[str, Any] | str | bytes | None]
        ],
    ) -> int:
        """Group commit: BEGIN, all UPDATEs, and COMMIT in one write.

        ``updates`` yields ``(oid, undo, redo)`` triples; ``redo`` may be a
        record dict, a pre-encoded record JSON string, or raw packed-record
        bytes (see :meth:`_update_frame`).  The whole batch is framed in
        memory and lands in a single buffered write with one flush (and at most one
        fsync) at the commit boundary, instead of a write per record.
        Returns the COMMIT record's LSN.
        """
        if _tracer.enabled:
            span = _tracer.begin("wal", f"group-commit:{txn_id}", txn=txn_id)
            try:
                lsn, count, nbytes = self._log_transaction_inner(txn_id, updates)
            except BaseException as exc:
                _tracer.end(span, error=type(exc).__name__)
                raise
            _tracer.end(span, records=count, bytes=nbytes, lsn=lsn)
            return lsn
        return self._log_transaction_inner(txn_id, updates)[0]

    def _log_transaction_inner(
        self,
        txn_id: int,
        updates: Iterable[
            tuple[int, dict[str, Any] | None, dict[str, Any] | str | bytes | None]
        ],
    ) -> tuple[int, int, int]:
        frames = [self._frame(LogRecord(LogRecordType.BEGIN, txn_id))]
        count = 2
        for oid, undo, redo in updates:
            frames.append(self._update_frame(txn_id, oid, undo, redo))
            count += 1
        commit = self._frame(LogRecord(LogRecordType.COMMIT, txn_id))
        batch = b"".join(frames)
        with self._mutex:
            lsn = self._end + len(batch)
            self._pending.append(batch + commit)
            self._end = lsn + len(commit)
        self.flush()
        pipeline_stats.group_commits += 1
        pipeline_stats.group_commit_records += count
        return lsn, count, len(batch) + len(commit)

    def log_abort(self, txn_id: int) -> int:
        return self.append(LogRecord(LogRecordType.ABORT, txn_id))

    def log_checkpoint(self, catalog: dict[str, Any]) -> int:
        lsn = self.append(
            LogRecord(LogRecordType.CHECKPOINT, txn_id=0, extra=catalog)
        )
        self.flush(force_sync=True)
        return lsn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> Iterator[LogRecord]:
        """Yield every valid record from the start of the log.

        Stops cleanly at the first torn or corrupt entry (treating it as
        the logical end of the log, as a crashed append would leave).
        """
        self.flush(force_sync=False)
        yield from read_records(self._path)

    def tail_size(self) -> int:
        """Current end-of-log offset."""
        return self._end

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Discard all log entries (after a checkpoint made them redundant)."""
        # Lock order matches the leader path (_sync_lock then _mutex), and
        # holding both keeps a concurrent committer from appending between
        # the truncate and the watermark reset.
        with self._sync_lock:
            with self._mutex:
                self._pending.clear()
                self._file.truncate(0)
                self._file.seek(0)
                self._end = 0
                self._file.flush()
            os.fsync(self._file.fileno())
            with self._sync_cond:
                # Invalidate any syncer fsync that raced the truncate so
                # it cannot publish a stale pre-truncate watermark.
                self._epoch += 1
                self._synced_end = 0
                self._requested_end = 0
                self._sync_cond.notify_all()
            pipeline_stats.wal_syncs += 1

    def close(self) -> None:
        self.flush()
        if self._syncer is not None:
            with self._sync_cond:
                self._syncer_stop = True
                self._sync_cond.notify_all()
            self._syncer.join(timeout=5.0)
            self._syncer = None
        with self._sync_lock:
            with self._mutex:
                self._file.close()

    @property
    def path(self) -> str:
        return self._path


def read_records(path: str | os.PathLike[str]) -> Iterator[LogRecord]:
    """Yield every valid record from the log at ``path``, read-only.

    Unlike constructing a :class:`WriteAheadLog` (which opens the file in
    append mode and whose owning :class:`~repro.oodb.database.Database`
    runs recovery — truncating the very records being counted), this
    touches nothing: no write handle, no flush, no recovery.  It is the
    safe way for inspection tools to read a live or crashed log.  Stops
    at the first torn or corrupt entry, like :meth:`WriteAheadLog.records`.
    A missing file yields nothing.
    """
    try:
        reader = open(os.fspath(path), "rb")
    except FileNotFoundError:
        return
    with reader:
        offset = 0
        while True:
            frame = reader.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                return
            length, crc = _FRAME.unpack(frame)
            payload = reader.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            yield LogRecord.from_payload(payload, lsn=offset)
            offset += _FRAME.size + length
