"""Transactions: atomicity, rollback, savepoints, and rule hooks.

A :class:`Transaction` tracks the objects it created, modified, or deleted,
keeping a *before image* (serialized record) of each object at first touch.
Commit writes undo/redo pairs to the WAL, forces the log, then applies the
after images to the heap; abort restores the before images into the live
objects, so in-memory state rolls back together with the store.

Sentinel's coupling modes (§4.4 of the paper) attach here:

* **immediate** rules run inline, inside the triggering transaction;
* **deferred** rules are queued via :meth:`Transaction.add_pre_commit_hook`
  and run at the start of commit, still inside the transaction;
* **decoupled** rules are queued via :meth:`Transaction.add_post_commit_hook`
  and run *after* commit, each in its own new transaction.

The paper's ``abort`` rule action maps to :meth:`Transaction.abort`, which
raises :class:`~repro.oodb.errors.TransactionAborted` out of the triggering
operation.
"""

from __future__ import annotations

import enum
import itertools
import threading
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from ..obs.flight import flight_recorder as _flight
from ..obs.signals import engine_signals as _signals
from ..obs.slowlog import slow_op_log as _slowlog
from ..obs.tracer import tracer as _tracer
from .errors import (
    NoActiveTransaction,
    TransactionAborted,
    TransactionError,
    TransactionNotActive,
)
from .oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database
    from .schema import Persistent

__all__ = ["TransactionStatus", "Transaction", "TransactionManager"]

Hook = Callable[[], None]

#: Upper bound on pre-commit hook cascades (deferred rules triggering more
#: deferred rules); beyond this the commit aborts rather than loop forever.
MAX_PRE_COMMIT_ROUNDS = 64


class TransactionStatus(enum.Enum):
    """Life-cycle state of a transaction."""

    ACTIVE = "active"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work against a :class:`~repro.oodb.database.Database`."""

    _ids = itertools.count(1)

    def __init__(self, db: "Database", implicit: bool = False) -> None:
        self.id = next(Transaction._ids)
        self.db = db
        self.implicit = implicit
        self.status = TransactionStatus.ACTIVE
        # Before images: oid -> serialized record, or None if the object
        # was created inside this transaction.
        self._undo: dict[Oid, dict[str, Any] | None] = {}
        self._touched: dict[Oid, "Persistent"] = {}
        self._created: set[Oid] = set()
        self._deleted: dict[Oid, "Persistent"] = {}
        self._pre_commit: list[Hook] = []
        self._post_commit: list[Hook] = []
        self._on_abort: list[Hook] = []
        self._savepoints: dict[str, dict[str, Any]] = {}
        self._restoring = False
        # Begin timestamp for long-transaction detection; stamped by the
        # manager only while the slow-op log is open.
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.status in (
            TransactionStatus.ACTIVE,
            TransactionStatus.COMMITTING,
        )

    def touched_oids(self) -> set[Oid]:
        return set(self._touched)

    def change_count(self) -> int:
        """Objects this transaction will write (touched plus deleted)."""
        return len(self._touched) + len(self._deleted)

    def created_oids(self) -> set[Oid]:
        return set(self._created)

    def deleted_oids(self) -> set[Oid]:
        return set(self._deleted)

    def _require_active(self) -> None:
        if not self.is_active:
            raise TransactionNotActive(
                f"transaction {self.id} is {self.status.value}"
            )

    # ------------------------------------------------------------------
    # Change recording (called by the database)
    # ------------------------------------------------------------------
    def note_modified(self, obj: "Persistent") -> None:
        """Capture a before image on first touch of ``obj``."""
        self._require_active()
        if self._restoring:
            return
        oid = obj._p_oid
        assert oid is not None
        if oid in self._undo:
            self._touched[oid] = obj
            return
        self._undo[oid] = self.db._current_record(oid)
        self._touched[oid] = obj

    def note_created(self, obj: "Persistent") -> None:
        self._require_active()
        oid = obj._p_oid
        assert oid is not None
        self._undo[oid] = None
        self._created.add(oid)
        self._touched[oid] = obj

    def note_deleted(self, obj: "Persistent") -> None:
        self._require_active()
        oid = obj._p_oid
        assert oid is not None
        if oid not in self._undo:
            self._undo[oid] = self.db._current_record(oid)
        self._created.discard(oid)
        self._touched.pop(oid, None)
        self._deleted[oid] = obj

    # ------------------------------------------------------------------
    # Hooks (Sentinel coupling modes)
    # ------------------------------------------------------------------
    def add_pre_commit_hook(self, hook: Hook) -> None:
        """Run ``hook`` at commit, inside this transaction (deferred rules)."""
        self._require_active()
        self._pre_commit.append(hook)

    def add_post_commit_hook(self, hook: Hook) -> None:
        """Run ``hook`` after a successful commit (decoupled rules)."""
        self._require_active()
        self._post_commit.append(hook)

    def add_abort_hook(self, hook: Hook) -> None:
        self._require_active()
        self._on_abort.append(hook)

    def drain_pre_commit_hooks(self) -> list[Hook]:
        hooks, self._pre_commit = self._pre_commit, []
        return hooks

    def drain_post_commit_hooks(self) -> list[Hook]:
        hooks, self._post_commit = self._post_commit, []
        return hooks

    def drain_abort_hooks(self) -> list[Hook]:
        hooks, self._on_abort = self._on_abort, []
        return hooks

    def has_pre_commit_hooks(self) -> bool:
        return bool(self._pre_commit)

    # ------------------------------------------------------------------
    # Savepoints
    # ------------------------------------------------------------------
    def savepoint(self, name: str) -> None:
        """Capture the current state of every touched object under ``name``."""
        self._require_active()
        images: dict[Oid, dict[str, Any]] = {}
        for oid, obj in self._touched.items():
            images[oid] = self.db.serializer.encode_object(obj)
        self._savepoints[name] = {
            "images": images,
            "created": set(self._created),
            "deleted": dict(self._deleted),
        }

    def rollback_to(self, name: str) -> None:
        """Restore every object to its state at savepoint ``name``.

        Objects created after the savepoint are detached again; objects
        touched after it are restored from the savepoint images (or their
        original before images if first touched after the savepoint).
        """
        self._require_active()
        try:
            frame = self._savepoints[name]
        except KeyError:
            raise TransactionError(f"no savepoint named {name!r}") from None
        images: dict[Oid, dict[str, Any]] = frame["images"]
        created_then: set[Oid] = frame["created"]
        self._restoring = True
        try:
            for oid, obj in list(self._touched.items()):
                if oid in images:
                    self.db._restore_object(obj, images[oid])
                elif oid in self._created and oid not in created_then:
                    self.db._detach_created(obj)
                    del self._undo[oid]
                    del self._touched[oid]
                    self._created.discard(oid)
                else:
                    before = self._undo.get(oid)
                    if before is not None:
                        self.db._restore_object(obj, before)
                        del self._touched[oid]
                        del self._undo[oid]
            for oid, obj in list(self._deleted.items()):
                if oid not in frame["deleted"]:
                    self.db._undelete(obj)
                    del self._deleted[oid]
                    self._touched[oid] = obj
        finally:
            self._restoring = False

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def commit(self) -> None:
        self.db.txn_manager.commit(self)

    def abort(self, reason: str = "") -> None:
        """Abort this transaction and raise :class:`TransactionAborted`.

        This is the paper's ``abort`` rule action: callable from anywhere
        inside the transaction (including a rule condition or action); the
        exception unwinds the triggering operation.
        """
        self.db.txn_manager.rollback(self)
        raise TransactionAborted(reason or f"transaction {self.id} aborted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transaction {self.id} {self.status.value}>"


class TransactionManager:
    """Per-database transaction coordinator with thread-local currency."""

    def __init__(self, db: "Database") -> None:
        self._db = db
        self._local = threading.local()
        # Guards the plain-int statistics below; commits and rollbacks on
        # worker threads bump them concurrently.
        self._stats_lock = threading.Lock()
        #: statistics for benchmarks
        self.committed = 0
        self.aborted = 0
        #: objects written across all committed transactions / by the last
        #: one — group-commit batch sizes for the benchmark reports.
        self.objects_committed = 0
        self.last_commit_size = 0
        #: observers called as fn(kind, txn) with kind in
        #: {"begin", "commit", "abort"}; used by Sentinel's transaction
        #: events (rules on transactions).
        self._observers: list[Callable[[str, Transaction], None]] = []

    def add_observer(self, observer: Callable[[str, "Transaction"], None]) -> None:
        """Register a transaction life-cycle observer (idempotent).

        Equality (not identity) comparison, because bound methods are
        recreated on every attribute access.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Callable[[str, "Transaction"], None]) -> None:
        self._observers = [o for o in self._observers if o != observer]

    def _notify_observers(self, kind: str, txn: "Transaction") -> None:
        for observer in list(self._observers):
            observer(kind, txn)

    # ------------------------------------------------------------------
    # Currency
    # ------------------------------------------------------------------
    @property
    def current(self) -> Transaction | None:
        return getattr(self._local, "txn", None)

    def require_current(self) -> Transaction:
        txn = self.current
        if txn is None:
            raise NoActiveTransaction("no transaction is active on this thread")
        return txn

    def ensure_current(self) -> Transaction:
        """Return the active transaction, starting an implicit one if none."""
        txn = self.current
        if txn is None:
            txn = self.begin(implicit=True)
        return txn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self, implicit: bool = False) -> Transaction:
        if self.current is not None:
            raise TransactionError(
                "a transaction is already active on this thread; "
                "use savepoints for nested scopes"
            )
        txn = Transaction(self._db, implicit=implicit)
        self._local.txn = txn
        if _slowlog.enabled:
            txn._started_at = perf_counter()
        if _tracer.enabled:
            _tracer.point("txn", f"begin:{txn.id}", txn=txn.id, op="begin",
                          implicit=implicit)
        self._notify_observers("begin", txn)
        return txn

    def commit(self, txn: Transaction) -> None:
        """Run deferred hooks, write WAL, apply changes, run decoupled hooks."""
        if txn.status is not TransactionStatus.ACTIVE:
            raise TransactionNotActive(
                f"cannot commit transaction {txn.id} ({txn.status.value})"
            )
        if _tracer.enabled:
            # The commit span covers pre-commit hooks (deferred rules nest
            # under it), the WAL/heap apply, and the commit observers.
            # Post-commit hooks (decoupled rules) run after the span is
            # closed: their transactions are causally linked, not nested.
            span = _tracer.begin(
                "txn",
                f"commit:{txn.id}",
                txn=txn.id,
                op="commit",
                changes=txn.change_count(),
            )
            try:
                self._commit_core(txn)
            except BaseException as exc:
                _tracer.end(
                    span, error=type(exc).__name__, status=txn.status.value
                )
                raise
            _tracer.end(
                span, status=txn.status.value, objects=self.last_commit_size
            )
        else:
            self._commit_core(txn)
        for hook in txn.drain_post_commit_hooks():
            hook()

    def _commit_core(self, txn: Transaction) -> None:
        try:
            self._run_pre_commit(txn)
        except TransactionAborted:
            raise
        except Exception:
            self.rollback(txn)
            raise
        txn.status = TransactionStatus.COMMITTING
        try:
            self._db._apply_commit(txn)
        except Exception:
            txn.status = TransactionStatus.ACTIVE
            self.rollback(txn)
            raise
        txn.status = TransactionStatus.COMMITTED
        self._finish(txn)
        changes = txn.change_count()
        with self._stats_lock:
            self.committed += 1
            self.last_commit_size = changes
            self.objects_committed += changes
        if _flight.enabled:
            _flight.record(
                "txn", "commit", txn.id, f"changes={changes}"
            )
        if _slowlog.enabled:
            self._note_duration(txn, "committed")
        self._notify_observers("commit", txn)

    def _run_pre_commit(self, txn: Transaction) -> None:
        rounds = 0
        while txn.has_pre_commit_hooks():
            rounds += 1
            if rounds > MAX_PRE_COMMIT_ROUNDS:
                raise TransactionError(
                    "deferred rule cascade exceeded "
                    f"{MAX_PRE_COMMIT_ROUNDS} rounds; aborting commit"
                )
            for hook in txn.drain_pre_commit_hooks():
                hook()

    def rollback(self, txn: Transaction) -> None:
        """Undo the transaction's effects without raising."""
        if txn.status in (TransactionStatus.COMMITTED, TransactionStatus.ABORTED):
            return
        if _tracer.enabled:
            _tracer.point(
                "txn", f"abort:{txn.id}", txn=txn.id, op="abort",
                changes=txn.change_count(),
            )
        if _signals.active:
            # Emit before the undo runs: change_count reflects what the
            # transaction was about to write, which is what an operator
            # alerting on aborts wants to see.
            _signals.emit(
                "txn_aborted", txn_id=txn.id, changes=txn.change_count()
            )
        if _flight.enabled:
            _flight.record(
                "txn", "abort", txn.id, f"changes={txn.change_count()}"
            )
            _flight.auto_dump("txn_aborted", f"txn {txn.id} rolled back")
        txn._restoring = True
        try:
            self._db._apply_rollback(txn)
        finally:
            txn._restoring = False
        txn.status = TransactionStatus.ABORTED
        self._finish(txn)
        with self._stats_lock:
            self.aborted += 1
        if _slowlog.enabled:
            self._note_duration(txn, "aborted")
        self._notify_observers("abort", txn)
        for hook in txn.drain_abort_hooks():
            hook()

    def _note_duration(self, txn: Transaction, status: str) -> None:
        """Record a long-transaction breach (slow-op log open, by contract)."""
        started = txn._started_at
        if started is None:
            return
        micros = (perf_counter() - started) * 1e6
        threshold = _slowlog.long_txn_us
        if micros >= threshold:
            _slowlog.record(
                "txn",
                micros,
                threshold,
                signal="txn_long",
                signal_payload={
                    "txn_id": txn.id,
                    "changes": txn.change_count(),
                    "micros": round(micros, 1),
                    "threshold_us": threshold,
                },
                txn_id=txn.id,
                changes=txn.change_count(),
                status=status,
            )

    def _finish(self, txn: Transaction) -> None:
        if self.current is txn:
            self._local.txn = None
        self._db.locks.release_all(txn.id)
