"""In-memory version store for MVCC snapshot reads.

Snapshot isolation here is deliberately small: a **commit-timestamp
watermark** on the database plus this store of **pre-images** for objects
overwritten (or deleted, or created) since the oldest live snapshot
began.  A snapshot reader remembers the watermark ``ts`` it started at;
resolving an OID asks: *which committed state was current at ``ts``?*

The chain for an OID holds ``(commit_ts, pre_image)`` entries in commit
order, where ``pre_image`` is the record that the commit at ``commit_ts``
**replaced** (``None`` when that commit *created* the object).  So the
state at ``ts`` is the pre-image of the earliest commit after ``ts``:

* the **first entry with** ``commit_ts > ts`` is a hit — its pre-image
  (possibly ``None`` → the object did not exist at ``ts``);
* no such entry → the current stored record is unchanged since ``ts``
  and the reader falls through to the heap.

The commit protocol in :meth:`Database._apply_commit` makes this safe
without readers taking any lock on writers' data:

1. the writer publishes pre-images for *every* OID it is about to touch,
2. then applies its heap/extent/index mutations,
3. then bumps the watermark — all under the database state lock.

A lock-free reader double-checks: resolve → miss → read heap → resolve
again.  If the heap read raced a commit's apply step, the second resolve
is guaranteed to hit (publish preceded the apply), and the pre-image wins.

The store is empty and **inactive** whenever no snapshot is registered —
the commit path then pays one attribute check.  Entries older than the
oldest live snapshot are pruned on unregister; everything is dropped when
the last snapshot closes.
"""

from __future__ import annotations

import threading
from typing import Any

from .oid import Oid

__all__ = ["VersionStore"]

#: A version-chain entry: the commit that overwrote the object, and the
#: record it replaced (``None`` = the commit created the object).
_Entry = "tuple[int, dict[str, Any] | None]"


class VersionStore:
    """Pre-image chains for objects overwritten since a snapshot began."""

    __slots__ = ("_lock", "_versions", "_readers", "active")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: dict[Oid, list[tuple[int, dict[str, Any] | None]]] = {}
        #: Live snapshot timestamps → how many snapshots read at that ts.
        self._readers: dict[int, int] = {}
        #: Fast commit-path guard: True while any snapshot is registered.
        #: Plain attribute read (no lock) — a writer that misses a
        #: just-registered snapshot is impossible because registration and
        #: publish both happen under the database state lock.
        self.active = False

    # ------------------------------------------------------------------
    # Snapshot lifecycle
    # ------------------------------------------------------------------
    def register(self, ts: int) -> None:
        """A snapshot begins reading at watermark ``ts``."""
        with self._lock:
            self._readers[ts] = self._readers.get(ts, 0) + 1
            self.active = True

    def unregister(self, ts: int) -> None:
        """A snapshot at ``ts`` closed; prune entries nobody can need."""
        with self._lock:
            count = self._readers.get(ts, 0)
            if count <= 1:
                self._readers.pop(ts, None)
            else:
                self._readers[ts] = count - 1
            if not self._readers:
                self._versions.clear()
                self.active = False
            else:
                self._prune_locked()

    def _prune_locked(self) -> None:
        # An entry with commit_ts <= the oldest live snapshot ts can never
        # satisfy ``commit_ts > ts`` for any live reader — drop it.
        min_ts = min(self._readers)
        dead: list[Oid] = []
        for oid, chain in self._versions.items():
            keep = [entry for entry in chain if entry[0] > min_ts]
            if keep:
                if len(keep) != len(chain):
                    self._versions[oid] = keep
            else:
                dead.append(oid)
        for oid in dead:
            del self._versions[oid]

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def publish(
        self, commit_ts: int, pre_images: dict[Oid, dict[str, Any] | None]
    ) -> None:
        """Record the states that the commit at ``commit_ts`` replaces.

        Called under the database state lock *before* the commit touches
        the heap, so a concurrent reader either resolves to the pre-image
        or reads a heap the commit has not reached yet — never torn state.
        """
        with self._lock:
            if not self._readers:
                return
            for oid, pre in pre_images.items():
                self._versions.setdefault(oid, []).append((commit_ts, pre))

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def resolve(
        self, oid: Oid, ts: int
    ) -> tuple[bool, dict[str, Any] | None]:
        """The committed state of ``oid`` as of watermark ``ts``.

        Returns ``(True, record_or_None)`` when a commit after ``ts``
        versioned the object (``None`` = it did not exist at ``ts``), or
        ``(False, None)`` when the current stored record is the answer.
        """
        with self._lock:
            chain = self._versions.get(oid)
            if chain:
                for commit_ts, pre in chain:
                    if commit_ts > ts:
                        return True, pre
            return False, None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "versioned_oids": len(self._versions),
                "entries": sum(len(c) for c in self._versions.values()),
                "readers": sum(self._readers.values()),
            }
