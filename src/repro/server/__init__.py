"""The rule-server front end: Sentinel as a network service.

:class:`~repro.server.server.RuleServer` puts an HTTP/JSON surface in
front of a :class:`~repro.core.system.Sentinel` — thread-per-connection
reads on MVCC snapshots, writes as retried 2PL transactions, rules
firing server-side.  :class:`~repro.server.client.RuleClient` is the
matching stdlib client; ``python -m repro.tools.serve`` is the CLI.
"""

from __future__ import annotations

from .client import RuleClient, ServerError
from .server import RuleServer

__all__ = ["RuleServer", "RuleClient", "ServerError"]
