"""A stdlib client for the rule server (:mod:`repro.server.server`).

Thin and synchronous: one :class:`RuleClient` per server URL, one HTTP
request per call, ``urllib`` underneath.  Error envelopes come back as
:class:`ServerError` carrying the server's ``error`` kind and HTTP
status, so callers can branch on ``conflict`` (write lost its deadlock
retries — rerun it) versus ``not_found`` versus ``bad_request``::

    client = RuleClient(server.url)
    oid = client.create("Employee", name="fred", salary=50_000.0)
    client.update(oid, salary=55_000.0)          # rules fire server-side
    rows = client.query("Employee", where=[["salary", ">", 50_000]])

Every payload-returning call gives the decoded JSON body (the ``ok``
discriminator stripped of ceremony — helpers return the interesting
field directly where there is one).
"""

from __future__ import annotations

import json
from typing import Any
from urllib.error import HTTPError
from urllib.request import Request, urlopen

__all__ = ["RuleClient", "ServerError"]


class ServerError(Exception):
    """The server answered with ``ok: false``."""

    def __init__(self, status: int, error: str, detail: str) -> None:
        super().__init__(f"{error} ({status}): {detail}")
        self.status = status
        self.error = error
        self.detail = detail

    @property
    def conflict(self) -> bool:
        """True when a write exhausted its deadlock-retry budget."""
        return self.status == 409


class RuleClient:
    """HTTP/JSON client for one :class:`~repro.server.server.RuleServer`."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except ValueError:
                raise ServerError(exc.code, "server_error", raw.strip())
            raise ServerError(
                exc.code,
                str(payload.get("error", "server_error")),
                str(payload.get("detail", raw.strip())),
            )
        if not isinstance(payload, dict):
            raise ServerError(200, "server_error", f"bad payload: {payload!r}")
        return payload

    # ------------------------------------------------------------------
    # Reads (server-side MVCC snapshots)
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self._request("GET", "/ping")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def get(self, oid: int) -> dict[str, Any]:
        """The committed record of ``oid``: ``{"oid", "class", "attrs"}``."""
        payload = self._request("GET", f"/object?oid={int(oid)}")
        record = payload["object"]
        assert isinstance(record, dict)
        return record

    def query(
        self,
        class_name: str,
        where: list[list[Any]] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        body: dict[str, Any] = {"class": class_name}
        if where is not None:
            body["where"] = where
        if limit is not None:
            body["limit"] = limit
        payload = self._request("POST", "/query", body)
        objects = payload["objects"]
        assert isinstance(objects, list)
        return objects

    def count(
        self, class_name: str, where: list[list[Any]] | None = None
    ) -> int:
        body: dict[str, Any] = {"class": class_name}
        if where is not None:
            body["where"] = where
        payload = self._request("POST", "/count", body)
        return int(payload["count"])

    # ------------------------------------------------------------------
    # Writes (server-side transactions; rules fire over there)
    # ------------------------------------------------------------------
    def create(self, class_name: str, **args: Any) -> int:
        payload = self._request(
            "POST", "/create", {"class": class_name, "args": args}
        )
        return int(payload["oid"])

    def update(self, oid: int, **changes: Any) -> None:
        self._request("POST", "/update", {"oid": int(oid), "set": changes})

    def invoke(
        self, oid: int, method: str, *args: Any, **kwargs: Any
    ) -> Any:
        payload = self._request(
            "POST",
            "/invoke",
            {
                "oid": int(oid),
                "method": method,
                "args": list(args),
                "kwargs": kwargs,
            },
        )
        return payload.get("result")

    def delete(self, oid: int) -> None:
        self._request("POST", "/delete", {"oid": int(oid)})
