"""The rule-server wire protocol: JSON over HTTP, stdlib only.

Every response body is a JSON object with an ``ok`` discriminator::

    {"ok": true,  ...payload...}
    {"ok": false, "error": "<kind>", "detail": "<human message>"}

``error`` kinds map onto HTTP status codes:

==================  ====  ==============================================
``bad_request``     400   malformed body, unknown class, bad operator
``not_found``       404   no object with that OID (at the read snapshot)
``conflict``        409   write aborted after exhausting deadlock retries
``server_error``    500   anything else (the repr is the detail)
==================  ====  ==============================================

Requests with bodies are JSON objects too; :func:`read_json_body` and the
``parse_*`` helpers validate them into typed values, raising
:class:`ProtocolError` (which the handler renders) instead of letting a
``KeyError`` surface as a 500.  Where-clause triples reuse the query
layer's operator vocabulary (:data:`repro.oodb.query._OPS`).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "ProtocolError",
    "ok_payload",
    "error_payload",
    "read_json_body",
    "parse_where",
    "parse_oid",
    "json_safe",
    "WHERE_OPS",
]

#: Operators a ``where`` triple may use (the query layer's vocabulary).
WHERE_OPS = frozenset(
    ("==", "!=", "<", "<=", ">", ">=", "in", "contains")
)


class ProtocolError(Exception):
    """A request the server understood enough to refuse politely."""

    def __init__(self, status: int, error: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.error = error
        self.detail = detail


def ok_payload(**fields: Any) -> dict[str, Any]:
    payload: dict[str, Any] = {"ok": True}
    payload.update(fields)
    return payload


def error_payload(error: str, detail: str) -> dict[str, Any]:
    return {"ok": False, "error": error, "detail": detail}


def read_json_body(raw: bytes) -> dict[str, Any]:
    """Decode a request body into a JSON object (400 on anything else)."""
    if not raw:
        return {}
    try:
        value = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(400, "bad_request", f"body is not JSON: {exc}")
    if not isinstance(value, dict):
        raise ProtocolError(
            400, "bad_request", "body must be a JSON object"
        )
    return value


def parse_where(raw: Any) -> list[tuple[str, str, Any]]:
    """Validate a ``where`` list of ``[attribute, op, value]`` triples."""
    if raw is None:
        return []
    if not isinstance(raw, list):
        raise ProtocolError(400, "bad_request", "'where' must be a list")
    clauses: list[tuple[str, str, Any]] = []
    for item in raw:
        if not (isinstance(item, (list, tuple)) and len(item) == 3):
            raise ProtocolError(
                400,
                "bad_request",
                "each 'where' clause must be [attribute, op, value]",
            )
        attribute, op, value = item
        if not isinstance(attribute, str) or not isinstance(op, str):
            raise ProtocolError(
                400, "bad_request", "'where' attribute and op must be strings"
            )
        if op not in WHERE_OPS:
            raise ProtocolError(
                400,
                "bad_request",
                f"unknown operator {op!r}; one of {sorted(WHERE_OPS)}",
            )
        clauses.append((attribute, op, value))
    return clauses


def parse_oid(body: dict[str, Any], key: str = "oid") -> int:
    """Extract a positive integer OID from a request body."""
    raw = body.get(key)
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 1:
        raise ProtocolError(
            400, "bad_request", f"{key!r} must be a positive integer"
        )
    return raw


def json_safe(value: Any) -> Any:
    """Best-effort JSON value: non-encodable results become ``repr``."""
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return repr(value)
    return value
