"""The rule-server front end: an active database behind an HTTP port.

The paper frames Sentinel as a *system* applications connect to, not a
library they link — rules live with the data and fire no matter which
client caused the triggering event.  :class:`RuleServer` realizes that
shape with nothing but the stdlib: a ``ThreadingHTTPServer`` (one thread
per connection) in front of a :class:`~repro.core.system.Sentinel`, so
many clients read and write the same store concurrently and every write
runs the full event→rule machinery server-side.

The concurrency story is the engine's, not the server's:

* **Reads never block writers.**  ``GET /object`` and ``POST /query`` /
  ``/count`` run inside ``db.snapshot()`` — MVCC reads at a commit
  timestamp, zero lock acquisitions (see ``DESIGN.md`` §Concurrency).
* **Writes are transactions with retry.**  ``POST /create`` / ``/update``
  / ``/delete`` / ``/invoke`` run under ``db.run_transaction`` — 2PL
  object locks, deadlock detection, bounded retry.  A write that still
  aborts after its retry budget returns **409** rather than blocking.
* **Rules fire on the serving thread** (immediate/deferred coupling) or
  on the decoupled worker pool when the Sentinel has one enabled —
  exactly as they would for an embedded caller.  The server pushes its
  system's scheduler process-wide on :meth:`start`, so connection
  threads resolve it ambiently.

Endpoints (see :mod:`repro.server.protocol` for the envelope):

=========================  ===========================================
``GET  /ping``             liveness + engine identity
``GET  /stats``            scheduler / worker-pool / server counters
``GET  /object?oid=N``     one committed record, snapshot-read
``POST /query``            ``{"class", "where": [[a,op,v]...], "limit"}``
``POST /count``            same body, count only
``POST /create``           ``{"class", "args": {...}}`` → new OID
``POST /update``           ``{"oid", "set": {attr: value, ...}}``
``POST /invoke``           ``{"oid", "method", "args", "kwargs"}``
``POST /delete``           ``{"oid"}``
=========================  ===========================================

``python -m repro.tools.serve`` wraps this in a CLI;
:class:`repro.server.client.RuleClient` is the matching stdlib client.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..core.runtime import pop_scheduler, push_scheduler
from ..obs.metrics import metrics
from ..oodb.errors import ObjectNotFound, OODBError, TransactionAborted
from ..oodb.oid import Oid
from .protocol import (
    ProtocolError,
    error_payload,
    json_safe,
    ok_payload,
    parse_oid,
    parse_where,
    read_json_body,
)

__all__ = ["RuleServer"]

#: Cap on request bodies; a rule server is a control surface, not a blob
#: store.
MAX_BODY_BYTES = 1 << 20


class RuleServer:
    """Serve a Sentinel system to concurrent clients over HTTP/JSON.

    Binds on construction (``port=0`` picks an ephemeral port — read
    :attr:`port`/:attr:`url` after), serves from daemon threads after
    :meth:`start`.  Usable as a context manager::

        with Sentinel(db=Database(path, locking=True)) as sentinel:
            sentinel.enable_worker_pool()
            with RuleServer(sentinel) as server:
                print(server.url)
                ...
    """

    def __init__(
        self,
        sentinel: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        db = getattr(sentinel, "db", None)
        if db is None:
            raise ValueError("RuleServer needs a Sentinel with a database")
        self.sentinel = sentinel
        self.db = db
        server = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 keep-alive: one connection (and one server
            # thread) per client for its whole session, not per request.
            protocol_version = "HTTP/1.1"
            # Small request/response pairs over one connection stall for
            # ~40ms apiece under Nagle + delayed ACK; turn Nagle off.
            disable_nagle_algorithm = True

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                server._dispatch(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                server._dispatch(self, "POST")

            def log_message(self, *args: Any) -> None:
                pass  # keep the engine's stdout clean

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._pushed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = str(self._httpd.server_address[0])
        return f"http://{host}:{self.port}"

    def start(self) -> "RuleServer":
        if self._thread is None:
            # Connection threads have no scheduler stack of their own;
            # publishing this system's scheduler process-wide makes the
            # ambient fallback (runtime.current_scheduler) resolve to it,
            # so monitored-method events raised by client requests fire
            # this system's rules.
            push_scheduler(self.sentinel.scheduler)
            self._pushed = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-rule-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._pushed:
            pop_scheduler(self.sentinel.scheduler)
            self._pushed = False

    def __enter__(self) -> "RuleServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        started = perf_counter()
        parts = urlsplit(handler.path)
        route = f"{method} {parts.path}"
        try:
            status, payload = self._route(handler, method, parts.path, parts.query)
        except ProtocolError as exc:
            status = exc.status
            payload = error_payload(exc.error, exc.detail)
        except ObjectNotFound as exc:
            status, payload = 404, error_payload("not_found", str(exc))
        except TransactionAborted as exc:
            status, payload = 409, error_payload("conflict", str(exc))
        except OODBError as exc:
            if exc.retryable:
                # A write that exhausted its deadlock-retry budget: the
                # client owns the next attempt.
                status, payload = 409, error_payload("conflict", repr(exc))
            else:
                status, payload = 400, error_payload("bad_request", repr(exc))
        except Exception as exc:  # noqa: BLE001 - the wire needs an answer
            status, payload = 500, error_payload("server_error", repr(exc))
        body = (json.dumps(payload) + "\n").encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
        metrics.counter("server_requests").inc()
        if status >= 400:
            metrics.counter("server_errors").inc()
        metrics.histogram("server_request_us").record(
            (perf_counter() - started) * 1e6
        )
        del route  # kept for symmetry with future per-route metrics

    def _route(
        self,
        handler: BaseHTTPRequestHandler,
        method: str,
        path: str,
        query: str,
    ) -> tuple[int, dict[str, Any]]:
        if method == "GET":
            if path == "/ping":
                return 200, self._ping()
            if path == "/stats":
                return 200, self._stats()
            if path == "/object":
                return 200, self._get_object(query)
            raise ProtocolError(404, "not_found", f"no route {path!r}")
        body = read_json_body(self._read_body(handler))
        if path == "/query":
            return 200, self._query(body, count_only=False)
        if path == "/count":
            return 200, self._query(body, count_only=True)
        if path == "/create":
            return 200, self._create(body)
        if path == "/update":
            return 200, self._update(body)
        if path == "/invoke":
            return 200, self._invoke(body)
        if path == "/delete":
            return 200, self._delete(body)
        raise ProtocolError(404, "not_found", f"no route {path!r}")

    def _read_body(self, handler: BaseHTTPRequestHandler) -> bytes:
        raw_length = handler.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise ProtocolError(400, "bad_request", "bad Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(
                400, "bad_request", f"body too large ({length} bytes)"
            )
        return handler.rfile.read(length) if length else b""

    # ------------------------------------------------------------------
    # Reads (MVCC snapshots; never take locks)
    # ------------------------------------------------------------------
    def _ping(self) -> dict[str, Any]:
        return ok_payload(
            server="sentinel-rule-server",
            classes=sorted(self.db.registry.names()),
        )

    def _stats(self) -> dict[str, Any]:
        scheduler = self.sentinel.scheduler
        stats = asdict(scheduler.stats)
        stats["errors"] = len(scheduler.stats.errors)
        pool = scheduler.worker_pool
        return ok_payload(
            scheduler=stats,
            worker_pool=pool.stats() if pool is not None else None,
            requests=metrics.counter("server_requests").value,
            request_errors=metrics.counter("server_errors").value,
        )

    def _get_object(self, query: str) -> dict[str, Any]:
        params = parse_qs(query)
        values = params.get("oid")
        if not values:
            raise ProtocolError(400, "bad_request", "missing ?oid=N")
        try:
            number = int(values[-1])
        except ValueError:
            raise ProtocolError(400, "bad_request", "oid must be an integer")
        if number < 1:
            raise ProtocolError(400, "bad_request", "oid must be positive")
        with self.db.snapshot() as snap:
            record = snap.record(Oid(number))
        if record is None:
            raise ProtocolError(404, "not_found", f"no object @{number}")
        return ok_payload(object=record)

    def _query(
        self, body: dict[str, Any], count_only: bool
    ) -> dict[str, Any]:
        class_name = body.get("class")
        if not isinstance(class_name, str) or not class_name:
            raise ProtocolError(400, "bad_request", "'class' must be a name")
        clauses = parse_where(body.get("where"))
        limit = body.get("limit")
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int) or limit < 0
        ):
            raise ProtocolError(
                400, "bad_request", "'limit' must be a non-negative integer"
            )
        with self.db.snapshot() as snap:
            q = self.db.query(class_name)
            for attribute, op, value in clauses:
                q = q.where_op(attribute, op, value)
            if count_only:
                return ok_payload(count=q.count())
            if limit is not None:
                q = q.limit(limit)
            objects = q.all()
            records = [snap.record(obj._p_oid) for obj in objects]
        found = [record for record in records if record is not None]
        return ok_payload(count=len(found), objects=found)

    # ------------------------------------------------------------------
    # Writes (2PL transactions with deadlock retry; rules fire)
    # ------------------------------------------------------------------
    def _create(self, body: dict[str, Any]) -> dict[str, Any]:
        class_name = body.get("class")
        if not isinstance(class_name, str) or not class_name:
            raise ProtocolError(400, "bad_request", "'class' must be a name")
        args = body.get("args") or {}
        if not isinstance(args, dict):
            raise ProtocolError(
                400, "bad_request", "'args' must be an object of kwargs"
            )
        cls = self.db.class_for_name(class_name)

        def txn() -> int:
            obj = cls(**args)
            return int(self.db.add(obj).value)

        try:
            oid = self.db.run_transaction(txn)
        except TypeError as exc:
            # cls(**args) mismatch — the client's fault, not a 500.
            raise ProtocolError(400, "bad_request", f"constructor: {exc}")
        return ok_payload(oid=oid)

    def _update(self, body: dict[str, Any]) -> dict[str, Any]:
        number = parse_oid(body)
        changes = body.get("set")
        if not isinstance(changes, dict) or not changes:
            raise ProtocolError(
                400, "bad_request", "'set' must be a non-empty object"
            )
        for key in changes:
            if not isinstance(key, str) or key.startswith("_"):
                raise ProtocolError(
                    400, "bad_request", f"bad attribute name {key!r}"
                )

        def txn() -> None:
            obj = self.db.fetch(Oid(number))
            for key, value in changes.items():
                setattr(obj, key, value)

        self.db.run_transaction(txn)
        return ok_payload(oid=number)

    def _invoke(self, body: dict[str, Any]) -> dict[str, Any]:
        number = parse_oid(body)
        method = body.get("method")
        if not isinstance(method, str) or not method or method.startswith("_"):
            raise ProtocolError(
                400, "bad_request", "'method' must be a public method name"
            )
        args = body.get("args") or []
        kwargs = body.get("kwargs") or {}
        if not isinstance(args, list) or not isinstance(kwargs, dict):
            raise ProtocolError(
                400,
                "bad_request",
                "'args' must be a list and 'kwargs' an object",
            )

        def txn() -> Any:
            obj = self.db.fetch(Oid(number))
            bound = getattr(obj, method, None)
            if not callable(bound):
                raise ProtocolError(
                    400, "bad_request", f"no method {method!r} on @{number}"
                )
            return bound(*args, **kwargs)

        result = self.db.run_transaction(txn)
        return ok_payload(oid=number, result=json_safe(result))

    def _delete(self, body: dict[str, Any]) -> dict[str, Any]:
        number = parse_oid(body)

        def txn() -> None:
            self.db.delete(self.db.fetch(Oid(number)))

        self.db.run_transaction(txn)
        return ok_payload(oid=number)
